//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the handful of primitives the runtime actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`] with parking_lot's ergonomics
//! (guards returned directly, no poisoning, `Condvar` waits take the guard
//! by `&mut`). Internally everything is `std::sync`; poisoned locks are
//! recovered transparently because PX-thread panics are already isolated
//! by the scheduler.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` items).
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] can
/// temporarily take the std guard during a wait and put it back after.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock (usable in `static` items).
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable taking [`MutexGuard`]s by mutable reference.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard reused during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard reused during wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wake one waiting thread.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
