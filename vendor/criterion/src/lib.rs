//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro/entry-point shape (`criterion_group!`,
//! `criterion_main!`, groups, `Bencher::iter`/`iter_batched`) and prints
//! one line per benchmark with the median time per iteration. Iteration
//! counts auto-calibrate toward `TARGET_SAMPLE`; statistical machinery
//! (outlier analysis, plots) is intentionally absent. Set
//! `CRITERION_SAMPLE_MS` to trade precision for runtime.

use std::time::{Duration, Instant};

/// Re-export so bench code can use `criterion::black_box`.
pub use std::hint::black_box;

/// Target wall-clock per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn sample_budget() -> Duration {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(TARGET_SAMPLE)
}

/// How batched setup/routine pairs are grouped. Only the variants the
/// workspace uses carry meaning; all calibrate identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter*`.
    result_ns: f64,
}

impl Bencher {
    /// Measure `f` repeatedly and record the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the iteration count until a sample is long
        // enough to dominate timer overhead.
        let budget = sample_budget();
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= budget / 4 || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).max(4);
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }

    /// Measure `routine` on inputs produced by `setup`, excluding setup
    /// time per batch (setup runs once per routine call here).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = sample_budget();
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            if dt >= budget / 4 || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).max(4);
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            times.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// No-op for CLI-argument compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench("", id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&self.name, id, self.sample_size, f);
        self
    }

    /// End the group (drop is equivalent).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: samples.clamp(2, 100),
        result_ns: f64::NAN,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {label:<40} {:>12}/iter", format_ns(b.result_ns));
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
