//! Deserialization half of the data model.

use std::fmt::Display;

/// Error constraint for deserializers.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source for the positional wire data model; the mirror of
/// [`crate::ser::Serializer`]. The `'de` lifetime allows zero-copy reads
/// of borrowed byte slices.
pub trait Deserializer<'de> {
    /// Error type produced by the source.
    type Error: Error;

    /// Read a `bool`.
    fn take_bool(&mut self) -> Result<bool, Self::Error>;
    /// Read a `u8`.
    fn take_u8(&mut self) -> Result<u8, Self::Error>;
    /// Read a `u16`.
    fn take_u16(&mut self) -> Result<u16, Self::Error>;
    /// Read a `u32`.
    fn take_u32(&mut self) -> Result<u32, Self::Error>;
    /// Read a `u64`.
    fn take_u64(&mut self) -> Result<u64, Self::Error>;
    /// Read a `u128`.
    fn take_u128(&mut self) -> Result<u128, Self::Error>;
    /// Read an `i8`.
    fn take_i8(&mut self) -> Result<i8, Self::Error>;
    /// Read an `i16`.
    fn take_i16(&mut self) -> Result<i16, Self::Error>;
    /// Read an `i32`.
    fn take_i32(&mut self) -> Result<i32, Self::Error>;
    /// Read an `i64`.
    fn take_i64(&mut self) -> Result<i64, Self::Error>;
    /// Read an `i128`.
    fn take_i128(&mut self) -> Result<i128, Self::Error>;
    /// Read an `f32`.
    fn take_f32(&mut self) -> Result<f32, Self::Error>;
    /// Read an `f64`.
    fn take_f64(&mut self) -> Result<f64, Self::Error>;
    /// Read a `char`, validating the scalar value.
    fn take_char(&mut self) -> Result<char, Self::Error>;
    /// Read a length-prefixed UTF-8 string.
    fn take_string(&mut self) -> Result<String, Self::Error>;
    /// Read `n` raw bytes, borrowed from the input.
    fn take_bytes(&mut self, n: usize) -> Result<&'de [u8], Self::Error>;
    /// Read a sequence or map length prefix. Implementations must reject
    /// lengths that exceed the remaining input.
    fn take_seq_len(&mut self) -> Result<usize, Self::Error>;
    /// Read an `Option` presence tag.
    fn take_opt_tag(&mut self) -> Result<bool, Self::Error>;
    /// Read an enum variant discriminant.
    fn take_variant(&mut self) -> Result<u32, Self::Error>;
}

/// A value that can be read from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Read a value from `d`.
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
