//! Offline stand-in for the `serde` crate.
//!
//! The real serde models data through a visitor architecture so that many
//! formats can share one derive. This workspace has exactly one format —
//! the positional px-wire encoding — so the vendored replacement collapses
//! the data model to the operations that format needs: fixed-width
//! scalars, LEB128 lengths and enum discriminants, option tags, and
//! back-to-back fields. The byte output is identical to what real serde +
//! px-wire produced.
//!
//! The public surface mirrors serde where the workspace touches it:
//! `Serialize`/`Deserialize` traits (and derive macros of the same name),
//! `ser::Error`/`de::Error`, and `de::DeserializeOwned`.

pub mod de;
mod impls;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
