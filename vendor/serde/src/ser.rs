//! Serialization half of the data model.

use std::fmt::Display;

/// Error constraint for serializers: formats must be able to wrap a
/// free-form message.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for the positional wire data model.
///
/// One method per primitive plus the three structural markers the format
/// needs: sequence/map lengths, `Option` tags, and enum discriminants.
/// Compound values (structs, tuples) have no markers — fields are written
/// back to back.
pub trait Serializer {
    /// Error type produced by the sink.
    type Error: Error;

    /// Write a `bool`.
    fn put_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Write a `u8`.
    fn put_u8(&mut self, v: u8) -> Result<(), Self::Error>;
    /// Write a `u16`.
    fn put_u16(&mut self, v: u16) -> Result<(), Self::Error>;
    /// Write a `u32`.
    fn put_u32(&mut self, v: u32) -> Result<(), Self::Error>;
    /// Write a `u64`.
    fn put_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Write a `u128`.
    fn put_u128(&mut self, v: u128) -> Result<(), Self::Error>;
    /// Write an `i8`.
    fn put_i8(&mut self, v: i8) -> Result<(), Self::Error>;
    /// Write an `i16`.
    fn put_i16(&mut self, v: i16) -> Result<(), Self::Error>;
    /// Write an `i32`.
    fn put_i32(&mut self, v: i32) -> Result<(), Self::Error>;
    /// Write an `i64`.
    fn put_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Write an `i128`.
    fn put_i128(&mut self, v: i128) -> Result<(), Self::Error>;
    /// Write an `f32`.
    fn put_f32(&mut self, v: f32) -> Result<(), Self::Error>;
    /// Write an `f64`.
    fn put_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Write a `char` scalar value.
    fn put_char(&mut self, v: char) -> Result<(), Self::Error>;
    /// Write a length-prefixed UTF-8 string.
    fn put_str(&mut self, v: &str) -> Result<(), Self::Error>;
    /// Write a sequence or map length prefix.
    fn put_seq_len(&mut self, len: usize) -> Result<(), Self::Error>;
    /// Write an `Option` presence tag.
    fn put_opt_tag(&mut self, is_some: bool) -> Result<(), Self::Error>;
    /// Write an enum variant discriminant.
    fn put_variant(&mut self, index: u32) -> Result<(), Self::Error>;

    // ---- structural markers (named-field formats) --------------------------
    //
    // The positional wire format carries no names, so these default to
    // no-ops and the wire serializer ignores them — its byte output is
    // unchanged by their existence. Self-describing emitters (the
    // px-bench JSON writer) override them to recover struct and field
    // names from the same derived `Serialize` impls.

    /// Mark the start of a struct (or struct-like enum variant body) with
    /// `fields` named fields.
    fn begin_struct(&mut self, _name: &'static str, _fields: usize) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Mark the next value as the field `name` of the innermost struct.
    fn field(&mut self, _name: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Mark the end of the innermost struct.
    fn end_struct(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Mark the start of a tuple struct (or tuple enum variant body) with
    /// `len` positional fields.
    fn begin_tuple(&mut self, _len: usize) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Mark the end of the innermost tuple struct.
    fn end_tuple(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Announce the *name* of the enum variant about to be written with
    /// [`Serializer::put_variant`].
    fn variant(&mut self, _name: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// A value that can be written to any [`Serializer`].
pub trait Serialize {
    /// Write `self` into `s`.
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error>;
}
