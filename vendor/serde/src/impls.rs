//! `Serialize`/`Deserialize` implementations for std types, matching the
//! encodings real serde + px-wire produced (see the table in `px-wire`'s
//! crate docs): sequences and maps are LEB128 length + elements, tuples
//! and arrays are elements back to back, `Option` is a tag byte,
//! `usize`/`isize` travel as 64-bit.

use crate::de::{Deserialize, Deserializer};
use crate::ser::{Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};

macro_rules! primitive {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Serialize for $ty {
            #[inline]
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                s.$put(*self)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            #[inline]
            fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                d.$take()
            }
        }
    };
}

primitive!(bool, put_bool, take_bool);
primitive!(u8, put_u8, take_u8);
primitive!(u16, put_u16, take_u16);
primitive!(u32, put_u32, take_u32);
primitive!(u64, put_u64, take_u64);
primitive!(u128, put_u128, take_u128);
primitive!(i8, put_i8, take_i8);
primitive!(i16, put_i16, take_i16);
primitive!(i32, put_i32, take_i32);
primitive!(i64, put_i64, take_i64);
primitive!(i128, put_i128, take_i128);
primitive!(f32, put_f32, take_f32);
primitive!(f64, put_f64, take_f64);
primitive!(char, put_char, take_char);

impl Serialize for usize {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let v = d.take_u64()?;
        usize::try_from(v)
            .map_err(|_| <D::Error as crate::de::Error>::custom(format!("usize out of range: {v}")))
    }
}

impl Serialize for isize {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let v = d.take_i64()?;
        isize::try_from(v)
            .map_err(|_| <D::Error as crate::de::Error>::custom(format!("isize out of range: {v}")))
    }
}

impl Serialize for () {
    #[inline]
    fn serialize<S: Serializer>(&self, _s: &mut S) -> Result<(), S::Error> {
        Ok(())
    }
}

impl<'de> Deserialize<'de> for () {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(_d: &mut D) -> Result<Self, D::Error> {
        Ok(())
    }
}

impl Serialize for str {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_str(self)
    }
}

impl Serialize for String {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.take_string()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            None => s.put_opt_tag(false),
            Some(v) => {
                s.put_opt_tag(true)?;
                v.serialize(s)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        if d.take_opt_tag()? {
            Ok(Some(T::deserialize(d)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_seq_len(self.len())?;
        for item in self {
            item.serialize(s)?;
        }
        Ok(())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.take_seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(d)?);
        }
        Ok(out)
    }
}

// Arrays encode like tuples: elements back to back, no length prefix.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        for item in self {
            item.serialize(s)?;
        }
        Ok(())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(d)?);
        }
        match out.try_into() {
            Ok(arr) => Ok(arr),
            Err(_) => unreachable!("array length invariant"),
        }
    }
}

macro_rules! tuple_impl {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<__S: Serializer>(&self, s: &mut __S) -> Result<(), __S::Error> {
                $( self.$idx.serialize(s)?; )+
                Ok(())
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: &mut __D) -> Result<Self, __D::Error> {
                Ok(($( $name::deserialize(d)?, )+))
            }
        }
    };
}

tuple_impl!(A: 0);
tuple_impl!(A: 0, B: 1);
tuple_impl!(A: 0, B: 1, C: 2);
tuple_impl!(A: 0, B: 1, C: 2, D: 3);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
tuple_impl!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_seq_len(self.len())?;
        for (k, v) in self {
            k.serialize(s)?;
            v.serialize(s)?;
        }
        Ok(())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.take_seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(d)?;
            let v = V::deserialize(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_seq_len(self.len())?;
        for (k, v) in self {
            k.serialize(s)?;
            v.serialize(s)?;
        }
        Ok(())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.take_seq_len()?;
        let mut out = HashMap::with_capacity_and_hasher(len, H::default());
        for _ in 0..len {
            let k = K::deserialize(d)?;
            let v = V::deserialize(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_seq_len(self.len())?;
        for item in self {
            item.serialize(s)?;
        }
        Ok(())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.take_seq_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(d)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, H: BuildHasher> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_seq_len(self.len())?;
        for item in self {
            item.serialize(s)?;
        }
        Ok(())
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.take_seq_len()?;
        let mut out = HashSet::with_capacity_and_hasher(len, H::default());
        for _ in 0..len {
            out.insert(T::deserialize(d)?);
        }
        Ok(out)
    }
}
