//! `#[derive(Serialize, Deserialize)]` for the vendored serde data model.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote` in
//! the offline crate set). Supports the shapes this workspace derives:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit (with optional explicit discriminants), tuple, or struct-like.
//! Field *types* never appear in the generated code — encoding is purely
//! positional — so the parser only extracts names, counts, and shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derive `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let keyword = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Input {
                name,
                kind: Kind::Struct(shape),
            }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            let variants = split_top_level(body)
                .into_iter()
                .map(|chunk| parse_variant(&chunk))
                .collect();
            Input {
                name,
                kind: Kind::Enum(variants),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Split a token stream at top-level commas, tracking `<...>` nesting so
/// type arguments (e.g. `BTreeMap<String, u64>`) stay in one chunk. The
/// `>` of `->` is recognized by the preceding joint `-`.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i64;
    let mut prev_dash = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' && !prev_dash {
                angle -= 1;
            } else if c == ',' && angle == 0 {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                prev_dash = false;
                continue;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn named_fields(body: TokenStream) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_fields(body: TokenStream) -> usize {
    split_top_level(body).len()
}

fn parse_variant(chunk: &[TokenTree]) -> (String, Shape) {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected variant name, found {other:?}"),
    };
    i += 1;
    let shape = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(named_fields(g.stream()))
        }
        // `Name = 3` explicit discriminants and bare unit variants.
        _ => Shape::Unit,
    };
    (name, shape)
}

// ---- code generation -------------------------------------------------------

const SER: &str = "::serde::ser::Serialize::serialize";
const SZR: &str = "::serde::ser::Serializer";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(Shape::Unit) => {}
        Kind::Struct(Shape::Tuple(n)) => {
            body.push_str(&format!("{SZR}::begin_tuple(&mut *__s, {n}usize)?;\n"));
            for idx in 0..*n {
                body.push_str(&format!("{SER}(&self.{idx}, &mut *__s)?;\n"));
            }
            body.push_str(&format!("{SZR}::end_tuple(&mut *__s)?;\n"));
        }
        Kind::Struct(Shape::Named(fields)) => {
            body.push_str(&format!(
                "{SZR}::begin_struct(&mut *__s, \"{name}\", {}usize)?;\n",
                fields.len()
            ));
            for f in fields {
                body.push_str(&format!("{SZR}::field(&mut *__s, \"{f}\")?;\n"));
                body.push_str(&format!("{SER}(&self.{f}, &mut *__s)?;\n"));
            }
            body.push_str(&format!("{SZR}::end_struct(&mut *__s)?;\n"));
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for (idx, (vname, shape)) in variants.iter().enumerate() {
                match shape {
                    Shape::Unit => body.push_str(&format!(
                        "{name}::{vname} => {{ \
                         {SZR}::variant(&mut *__s, \"{vname}\")?; \
                         {SZR}::put_variant(&mut *__s, {idx}u32)?; }}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ \
                             {SZR}::variant(&mut *__s, \"{vname}\")?; \
                             {SZR}::put_variant(&mut *__s, {idx}u32)?;\n\
                             {SZR}::begin_tuple(&mut *__s, {n}usize)?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!("{SER}({b}, &mut *__s)?;\n"));
                        }
                        arm.push_str(&format!("{SZR}::end_tuple(&mut *__s)?;\n"));
                        arm.push_str("}\n");
                        body.push_str(&arm);
                    }
                    Shape::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ \
                             {SZR}::variant(&mut *__s, \"{vname}\")?; \
                             {SZR}::put_variant(&mut *__s, {idx}u32)?;\n\
                             {SZR}::begin_struct(&mut *__s, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!("{SZR}::field(&mut *__s, \"{f}\")?;\n"));
                            arm.push_str(&format!("{SER}({f}, &mut *__s)?;\n"));
                        }
                        arm.push_str(&format!("{SZR}::end_struct(&mut *__s)?;\n"));
                        arm.push_str("}\n");
                        body.push_str(&arm);
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __s: &mut __S) \
         -> ::core::result::Result<(), __S::Error> {{\n\
         {body}\
         ::core::result::Result::Ok(())\n\
         }}\n\
         }}"
    )
}

const DE: &str = "::serde::de::Deserialize::deserialize(&mut *__d)?";

fn construct(path: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => path.to_string(),
        Shape::Tuple(n) => {
            let fields: Vec<&str> = (0..*n).map(|_| DE).collect();
            format!("{path}({})", fields.join(", "))
        }
        Shape::Named(fields) => {
            let fields: Vec<String> = fields.iter().map(|f| format!("{f}: {DE}")).collect();
            format!("{path} {{ {} }}", fields.join(", "))
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let value = match &input.kind {
        Kind::Struct(shape) => construct(name, shape),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (vname, shape)) in variants.iter().enumerate() {
                arms.push_str(&format!(
                    "{idx}u32 => {},\n",
                    construct(&format!("{name}::{vname}"), shape)
                ));
            }
            format!(
                "match ::serde::de::Deserializer::take_variant(&mut *__d)? {{\n\
                 {arms}\
                 __other => return ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"invalid variant index {{}} for {name}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__d: &mut __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         ::core::result::Result::Ok({value})\n\
         }}\n\
         }}"
    )
}
