//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API this workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range(Range)` over integers and floats. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the experiments require.

use std::ops::Range;

/// Types constructible from entropy or a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a half-open range, per output type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open `range`. Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_uniform(self, range.start, range.end)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! sample_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                ((lo as i128).wrapping_add(r)) as $ty
            }
        }
    )*};
}

sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn float_range_is_spread() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
