//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: `proptest!`, `prop_oneof!`, `prop_assert*`,
//! `prop_assume!`, `any::<T>()`, `Just`, ranges, tuples, `prop_map`,
//! `collection::vec`, `option::of`, and simple `[class]{m,n}` string
//! patterns. Failing cases panic with the iteration's seed; there is no
//! shrinking — cases are deterministic per test name, so a failure
//! reproduces by rerunning the test.

use std::ops::{Range, RangeFrom};

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test RNG (xoshiro256++ seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name, deterministically.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Seed from a `u64`.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy erasure.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A strategy yielding clones of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from erased alternatives.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len());
        self.choices[i].generate(rng)
    }
}

// ---- integer ranges --------------------------------------------------------

/// Integers samplable by range strategies and [`Arbitrary`].
pub trait IntValue: Copy {
    /// Sample uniformly from `[lo, hi)` as i128 bounds.
    fn from_i128(v: i128) -> Self;
    /// Widen for range arithmetic.
    fn to_i128(self) -> i128;
    /// Type maximum, widened.
    fn max_i128() -> i128;
}

macro_rules! int_value {
    ($($ty:ty),*) => {$(
        impl IntValue for $ty {
            fn from_i128(v: i128) -> Self { v as $ty }
            fn to_i128(self) -> i128 { self as i128 }
            fn max_i128() -> i128 { <$ty>::MAX as i128 }
        }
    )*};
}

int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: IntValue + PartialOrd> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "empty range strategy");
        let span = (hi - lo) as u128;
        let r = (rng.next_u64() as u128) % span;
        T::from_i128(lo + r as i128)
    }
}

impl<T: IntValue> Strategy for RangeFrom<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_i128();
        let span = (T::max_i128() - lo + 1) as u128;
        let r = (rng.next_u64() as u128) % span;
        T::from_i128(lo + r as i128)
    }
}

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

// Finite floats only: equality-based roundtrip properties would
// spuriously fail on NaN (NaN != NaN). Bit-exact float coverage is
// exercised separately via any::<u64>() + from_bits.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE,
            _ => {
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                (unit - 0.5) * 2e9
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('?')
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(8);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Box<T> {
    fn arbitrary(rng: &mut TestRng) -> Box<T> {
        Box::new(T::arbitrary(rng))
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

// ---- string patterns -------------------------------------------------------

/// `&str` strategies interpret `[class]{m,n}` patterns (the subset the
/// workspace uses); any other pattern generates the literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((chars, min, max)) => {
                let len = min + rng.below(max - min + 1);
                (0..len).map(|_| chars[rng.below(chars.len())]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let min = reps.0.trim().parse().ok()?;
    let max = reps.1.trim().parse().ok()?;
    if chars.is_empty() || max < min {
        return None;
    }
    Some((chars, min, max))
}

// ---- collection / option modules -------------------------------------------

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.sizes.end.saturating_sub(self.sizes.start).max(1);
            let len = self.sizes.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---- macros ----------------------------------------------------------------

/// Define property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strats = ($($strat,)*);
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::cases() {
                    let ($($pat,)*) = $crate::Strategy::generate(&__strats, &mut __rng);
                    #[allow(unused_mut)]
                    let mut __run = move || $body;
                    __run();
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns() {
        let mut rng = TestRng::from_name("t");
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn macro_works(x in 0u64..100, flip in any::<bool>(), v in crate::collection::vec(0u8..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assume!(flip || v.len() < 4);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&b| b >= 5).count(), 0);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)]) {
            prop_assert!((1..5).contains(&x));
        }
    }
}
