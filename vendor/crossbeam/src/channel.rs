//! Bounded MPMC channels with crossbeam's API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Timeout elapsed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// Create a bounded channel of capacity `cap` (0 is treated as 1).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Create an effectively unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX)
}

/// Sending half of a channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Send a message, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.chan.disconnected_rx() {
                return Err(SendError(msg));
            }
            if q.len() < self.chan.cap {
                q.push_back(msg);
                drop(q);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            q = self
                .chan
                .not_full
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake receivers so they observe the disconnect.
            let _g = self.chan.queue.lock();
            self.chan.not_empty.notify_all();
        }
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.disconnected_tx() {
                return Err(RecvError);
            }
            q = self
                .chan
                .not_empty
                .wait(q)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = q.pop_front() {
            drop(q);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if self.chan.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .chan
                .not_empty
                .wait_timeout(q, left)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
            if res.timed_out() && q.is_empty() {
                return if self.chan.disconnected_tx() {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.chan.queue.lock();
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn blocking_send_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_stream() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
