//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two submodules the workspace uses — [`channel`] (bounded
//! MPMC channels with timeouts and disconnect semantics) and [`deque`]
//! (work-stealing `Worker`/`Stealer`/`Injector`) — implemented over
//! `std::sync` primitives. Lock-based rather than lock-free: correctness
//! and API fidelity over peak contention performance, which is adequate
//! for the worker counts this runtime drives.

pub mod channel;
pub mod deque;
