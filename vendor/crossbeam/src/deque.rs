//! Work-stealing deques with crossbeam's API shape.
//!
//! `Worker` pushes/pops at one end; `Stealer`s and the shared `Injector`
//! take from the other. Backed by `Mutex<VecDeque>` — the locality worker
//! counts this runtime uses keep contention low, and the scheduler already
//! amortizes injector access with batch steals.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// Queue was empty.
    Empty,
    /// One task stolen.
    Success(T),
    /// Lost a race; try again.
    Retry,
}

impl<T> Steal<T> {
    /// True when a task was obtained.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Convert to `Option`, dropping the `Empty`/`Retry` distinction.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The owner's end of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// New LIFO deque (pops return the most recently pushed task).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    /// New FIFO deque.
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Pop a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.inner);
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    /// True when the deque has no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Create a stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

/// A thief's handle onto another worker's deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the victim's cold end.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// How many injector tasks a single batch steal moves at most.
const BATCH_LIMIT: usize = 32;

/// A shared FIFO injection queue.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the shared queue.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch into `dest`, returning one task directly. Amortizes
    /// queue contention across up to `BATCH_LIMIT` tasks.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.inner);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        let extra = (q.len() / 2).min(BATCH_LIMIT);
        if extra > 0 {
            let mut d = lock(&dest.inner);
            for _ in 0..extra {
                match q.pop_front() {
                    Some(t) => d.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// True when the queue has no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_lifo_order() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_cold_end() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_steal() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half of the remaining nine tasks moved over with the pop.
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn concurrent_stealing_loses_nothing() {
        let inj = Arc::new(Injector::new());
        for i in 0..1000 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                let w = Worker::new_lifo();
                let mut got = Vec::new();
                loop {
                    match inj.steal_batch_and_pop(&w) {
                        Steal::Success(t) => got.push(t),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                    while let Some(t) = w.pop() {
                        got.push(t);
                    }
                }
                got
            }));
        }
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
