//! Batched parcel transport: the coalescing wire under a throughput load.
//!
//! ```sh
//! cargo run --release --example batched_transport
//! ```
//!
//! Pushes the same parcel stream through an injected-latency wire with
//! batching off (`max_batch_parcels = 1`, the classic one-message-per-
//! parcel path) and on (`BatchPolicy::batched`), and prints the frame /
//! coalescing counters so the mechanism is visible, not just faster.

use parallex::core::prelude::*;
use std::time::{Duration, Instant};

const PARCELS: u64 = 4096;
const WIRE_LATENCY: Duration = Duration::from_micros(50);

fn run(label: &str, batch: BatchPolicy) -> f64 {
    let cfg = Config::small(2, 1)
        .with_latency(WIRE_LATENCY)
        .with_batching(batch);
    let rt = RuntimeBuilder::new(cfg).build().expect("boot");
    // Every trigger crosses the wire as one parcel into an and-gate LCO
    // born on locality 1; the gate fires when all have arrived.
    let gate = rt.new_and_gate(LocalityId(1), PARCELS);
    let t0 = Instant::now();
    for _ in 0..PARCELS {
        rt.trigger(gate, &()).expect("trigger");
    }
    rt.wait_value(gate).expect("gate");
    let elapsed = t0.elapsed();
    let total = rt.stats().total();
    let pps = PARCELS as f64 / elapsed.as_secs_f64();
    println!(
        "{label:>9}: {PARCELS} parcels in {elapsed:>8.2?}  ({pps:>9.0} parcels/s)  \
         frames {:>4}  parcels/frame {:>5.1}  flush full/timer {}/{}",
        total.frames_recv,
        total.parcels_per_frame(),
        total.batch_flush_full,
        total.batch_flush_timer,
    );
    rt.shutdown();
    pps
}

fn main() {
    println!("wire latency {WIRE_LATENCY:?}, 2 localities, 1 worker each\n");
    let single = run("unbatched", BatchPolicy::single());
    let batched = run("batched", BatchPolicy::batched());
    println!("\nspeedup: {:.2}x", batched / single);
}
