//! Adaptive mesh refinement driven by LCO dataflow (the paper's
//! "directed graphs" case).
//!
//! A moving feature refines the mesh differently every timestep. Patch
//! updates are spawned as PX-threads at Morton-partitioned owner
//! localities; neighbor exchanges are expressed with per-patch futures
//! instead of a global barrier, so a slow patch only delays its own
//! neighborhood.
//!
//! ```sh
//! cargo run --release --example amr_refinement
//! ```

use parallex::core::prelude::*;
use parallex::workloads::amr::{moving_front_error, Mesh};
use parallex::workloads::synth::spin_for_ns;
use std::time::Instant;

const LOCALITIES: usize = 4;
const TIMESTEPS: usize = 6;
const MAX_LEVEL: u8 = 5;
const WORK_PER_PATCH_NS: u64 = 5_000;

fn main() {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1))
        .build()
        .expect("boot");

    for ts in 0..TIMESTEPS {
        let t = ts as f64 * 0.7;
        let mut mesh = Mesh::new(MAX_LEVEL);
        mesh.refine_to_convergence(moving_front_error(t), 0.2, 12);
        let parts = mesh.partition(LOCALITIES);
        let edges = mesh.neighbor_edges();

        let t0 = Instant::now();
        // One and-gate per step counts patch updates; per-patch neighbor
        // dependencies flow through futures created at the owner.
        let total_patches = mesh.active_count() as u64;
        let gate = rt.new_and_gate(LocalityId(0), total_patches);
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);

        for (l, patches) in parts.iter().enumerate() {
            let n = patches.len();
            rt.spawn_at(LocalityId(l as u16), move |ctx| {
                for _ in 0..n {
                    ctx.spawn(move |ctx| {
                        // Patch update: smooth + flux computation stand-in.
                        spin_for_ns(WORK_PER_PATCH_NS);
                        ctx.trigger_value(gate, parallex::core::action::Value::unit());
                    });
                }
            });
        }
        rt.wait_future(gate_fut).unwrap();
        let elapsed = t0.elapsed();

        println!(
            "t={t:.1}: {} active patches (deepest level {}), {} neighbor edges, step {:.2} ms",
            mesh.active_count(),
            mesh.patches.iter().map(|p| p.level).max().unwrap(),
            edges.len(),
            elapsed.as_secs_f64() * 1e3,
        );
    }

    rt.shutdown();
    println!("done: refinement pattern tracked the moving front without barriers.");
}
