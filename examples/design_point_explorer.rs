//! Explore the Gilgamesh II design point (§3.2) interactively-ish:
//! prints the paper configuration, then what-if variations.
//!
//! ```sh
//! cargo run --release --example design_point_explorer
//! ```

use parallex::gilgamesh::design_point::{check_paper_claims, DesignPoint};
use parallex::gilgamesh::modality::modality_sweep;

fn show(label: &str, dp: &DesignPoint) {
    let s = dp.summary();
    println!(
        "{label:<28} {:>7.2} TF/chip  {:>6.3} EF  {:>6.1} MW  {:>5.1} GF/W  {:>8.4} B/FLOP",
        s.flops_per_chip / 1e12,
        s.system_exaflops,
        s.system_megawatts,
        s.gflops_per_watt,
        s.bytes_per_flop,
    );
}

fn main() {
    println!("Gilgamesh II design-point explorer\n");
    println!(
        "{:<28} {:>12} {:>9} {:>9} {:>10} {:>14}",
        "configuration", "chip", "system", "power", "efficiency", "balance"
    );

    let paper = DesignPoint::paper_2020();
    show("paper 2020 (100K chips)", &paper);
    assert!(check_paper_claims(&paper).is_empty());

    let mut half = paper;
    half.compute_chips = 50_000;
    half.store_chips = 50_000;
    show("half system", &half);

    let mut dense = paper;
    dense.flops_per_mind_node *= 2.0;
    show("2× MIND node rate", &dense);

    let mut no_accel = paper;
    no_accel.accelerator_flops_per_chip = 0.0;
    show("PIM fabric only", &no_accel);

    let mut fat_store = paper;
    fat_store.store_per_chip *= 4;
    show("4× penultimate store", &fat_store);

    println!("\nTwo-modality check (ops/cycle at three temporal localities):");
    for row in modality_sweep(&[0.05, 0.5, 0.99], 20_000, 16, 1) {
        println!(
            "  θ={:.2} (hit {:.2}): cached {:>6.3}  MIND {:>6.3}  accel {:>6.3}",
            row.theta, row.hit_rate, row.cached, row.mind, row.accel
        );
    }
    println!("\nThe heterogeneous chip covers both ends; neither structure alone does.");
}
