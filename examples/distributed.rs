//! Distributed deployment: two OS processes forming one ParalleX system
//! over loopback TCP.
//!
//! The example spawns *itself* as the second rank (`PX_DIST_RANK=1`), so
//! one `cargo run --example distributed` demonstrates the whole story:
//! bootstrap barrier, action parcels spawning threads at the remote
//! rank, continuation parcels carrying results back, batched checksummed
//! frames, and per-peer transport counters.
//!
//! ```text
//! rank 0 (parent)                      rank 1 (child, spawned)
//!   locality 0  ── Square parcels ──►    locality 1
//!              ◄── LCO_SET replies ──
//! ```
//!
//! Shutdown protocol: the child serves until the parent closes its
//! stdin — no in-band "stop" message needed, and a crashed parent tears
//! the child down the same way.

use parallex::core::prelude::*;
use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::time::Instant;

struct Square;
impl Action for Square {
    const NAME: &'static str = "dist/square";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, n: u64) -> u64 {
        n * n
    }
}

fn build(rank: u16, addrs: Vec<String>) -> Runtime {
    let cfg = Config::small(addrs.len(), 1)
        .with_tcp(rank, addrs)
        .with_max_batch_parcels(16);
    RuntimeBuilder::new(cfg)
        .register::<Square>()
        .build()
        .expect("bootstrap the mesh")
}

fn main() {
    if let Ok(rank) = std::env::var("PX_DIST_RANK") {
        child(rank.parse().expect("numeric rank"));
        return;
    }
    parent();
}

/// Rank 1: serve parcels until the parent closes our stdin.
fn child(rank: u16) {
    let addrs: Vec<String> = std::env::var("PX_DIST_ADDRS")
        .expect("PX_DIST_ADDRS")
        .split(',')
        .map(String::from)
        .collect();
    let rt = build(rank, addrs);
    eprintln!("[rank {rank}] mesh up, serving");
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    eprintln!("[rank {rank}] parent closed stdin, shutting down");
    rt.shutdown();
}

/// Rank 0: spawn the child, run the spawn/await workload, print stats.
fn parent() {
    // Reserve two loopback ports (bind-then-drop).
    let addrs: Vec<String> = (0..2)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        })
        .collect();
    println!("[rank 0] system of 2 processes: {addrs:?}");
    let mut peer = Command::new(std::env::current_exe().unwrap())
        .env("PX_DIST_RANK", "1")
        .env("PX_DIST_ADDRS", addrs.join(","))
        .stdin(Stdio::piped())
        .spawn()
        .expect("spawn rank 1");

    let rt = build(0, addrs);
    println!("[rank 0] bootstrap barrier passed; mesh up");

    // Spawn/await workload: parcels spawn Square threads at rank 1, the
    // continuations fill local futures over the wire.
    const N: u64 = 1000;
    let t0 = Instant::now();
    let futs: Vec<(u64, FutureRef<u64>)> = (0..N)
        .map(|i| {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Square>(
                Gid::locality_root(LocalityId(1)),
                i,
                Continuation::set(fut.gid()),
            )
            .unwrap();
            (i, fut)
        })
        .collect();
    for (i, fut) in futs {
        assert_eq!(rt.wait_future(fut).unwrap(), i * i);
    }
    let pipelined = t0.elapsed();

    // Serial round-trips for a latency figure.
    const R: u64 = 200;
    let t0 = Instant::now();
    for i in 0..R {
        let fut = rt.new_future::<u64>(LocalityId(0));
        rt.send_action::<Square>(
            Gid::locality_root(LocalityId(1)),
            i,
            Continuation::set(fut.gid()),
        )
        .unwrap();
        assert_eq!(rt.wait_future(fut).unwrap(), i * i);
    }
    let serial = t0.elapsed();

    println!(
        "[rank 0] {N} pipelined spawn/awaits in {pipelined:?} ({:.0}/s)",
        N as f64 / pipelined.as_secs_f64()
    );
    println!(
        "[rank 0] {R} serial round-trips in {serial:?} (mean RTT {:.1} µs)",
        serial.as_secs_f64() * 1e6 / R as f64
    );
    let stats = rt.stats();
    for p in &stats.transport.peers {
        println!(
            "[rank 0] peer {}: {} msgs / {} B out ({} frames), {} msgs / {} B in, {} reconnects",
            p.peer,
            p.msgs_sent,
            p.bytes_sent,
            p.frames_sent,
            p.msgs_recv,
            p.bytes_recv,
            p.reconnects
        );
    }
    assert_eq!(stats.total().dead_parcels, 0, "healthy run, no deaths");

    // Closing stdin is the shutdown signal.
    drop(peer.stdin.take());
    let status = peer.wait().expect("join rank 1");
    assert!(status.success());
    println!("[rank 0] rank 1 exited cleanly; done");
    rt.shutdown();
}
