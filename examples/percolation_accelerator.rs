//! Percolation demo: keeping a precious resource busy (§2.2).
//!
//! Locality 2 plays the dataflow accelerator of Figure 1: one worker,
//! staging-buffer priority, behind a 25 µs wire. The same kernel stream
//! is delivered twice — percolated (data travels with the task) and
//! demand-fetched one-at-a-time — and the accelerator's busy fraction is
//! printed for both.
//!
//! ```sh
//! cargo run --release --example percolation_accelerator
//! ```

use parallex::core::prelude::*;
use parallex::litlx::percolate::Directive;
use parallex::workloads::synth::spin_for_ns;
use std::time::{Duration, Instant};

const TASKS: usize = 60;
const GRAIN_NS: u64 = 50_000;
const BLOCK: usize = 2048;
const ACCEL: LocalityId = LocalityId(2);

struct Kernel;
impl Action for Kernel {
    const NAME: &'static str = "demo/kernel";
    type Args = Vec<u8>;
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, data: Vec<u8>) {
        assert_eq!(data.len(), BLOCK);
        spin_for_ns(GRAIN_NS);
    }
}

struct FetchKernel;
impl Action for FetchKernel {
    const NAME: &'static str = "demo/fetch_kernel";
    type Args = (Gid, Gid);
    type Out = ();
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, (block, gate): (Gid, Gid)) {
        let fut = ctx.fetch_data(block);
        ctx.when_future(fut, move |ctx, _data: Vec<u8>| {
            spin_for_ns(GRAIN_NS);
            ctx.trigger_value(gate, parallex::core::action::Value::unit());
        });
    }
}

fn accel_busy_delta(rt: &Runtime, before: &parallex::core::stats::LocalityStats) -> f64 {
    let after = rt.stats().localities[ACCEL.0 as usize];
    let d = after.delta_from(before);
    d.busy_ns as f64 / (d.busy_ns + d.idle_ns).max(1) as f64
}

fn main() {
    let rt = RuntimeBuilder::new(
        Config::small(3, 1)
            .with_latency(Duration::from_micros(25))
            .with_accelerator(ACCEL),
    )
    .register::<Kernel>()
    .register::<FetchKernel>()
    .build()
    .expect("boot");

    println!(
        "{TASKS} kernels × {} µs, block {BLOCK} B, wire 25 µs; compute bound {:.1} ms",
        GRAIN_NS / 1000,
        TASKS as f64 * GRAIN_NS as f64 / 1e6
    );

    // Percolated delivery.
    let gate = rt.new_and_gate(LocalityId(0), TASKS as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let before = rt.stats().localities[ACCEL.0 as usize];
    let t0 = Instant::now();
    for _ in 0..TASKS {
        Directive::<Kernel>::block(ACCEL, vec![9u8; BLOCK])
            .with_continuation(Continuation::set(gate))
            .issue_from_driver(&rt)
            .unwrap();
    }
    rt.wait_future(gate_fut).unwrap();
    println!(
        "percolation : {:.2} ms, accelerator busy {:.0}%",
        t0.elapsed().as_secs_f64() * 1e3,
        accel_busy_delta(&rt, &before) * 100.0
    );

    // Demand-fetched, serialized delivery.
    let blocks: Vec<Gid> = (0..TASKS)
        .map(|_| rt.new_data_at(LocalityId(0), vec![9u8; BLOCK]))
        .collect();
    let before = rt.stats().localities[ACCEL.0 as usize];
    let t0 = Instant::now();
    for &b in &blocks {
        let gate1 = rt.new_and_gate(LocalityId(0), 1);
        rt.send_action::<FetchKernel>(Gid::locality_root(ACCEL), (b, gate1), Continuation::none())
            .unwrap();
        let f: FutureRef<()> = FutureRef::from_gid(gate1);
        rt.wait_future(f).unwrap();
    }
    println!(
        "demand fetch: {:.2} ms, accelerator busy {:.0}%",
        t0.elapsed().as_secs_f64() * 1e3,
        accel_busy_delta(&rt, &before) * 100.0
    );

    rt.shutdown();
}
