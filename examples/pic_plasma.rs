//! Particle-in-cell two-stream instability (the paper's "particle in
//! cell" case), with the field reduction expressed as a reduction LCO.
//!
//! Slabs of particles live on different localities; each step deposits
//! locally, contributes the slab's charge density to a reduction LCO
//! (replacing the MPI allreduce), solves the field, and pushes particles.
//!
//! ```sh
//! cargo run --release --example pic_plasma
//! ```

use parallex::core::prelude::*;
use parallex::workloads::pic::PicState;
use parking_lot::RwLock;
use std::sync::Arc;

const PARTICLES: usize = 8_192;
const CELLS: usize = 64;
const LOCALITIES: usize = 4;
const STEPS: usize = 60;
const DT: f64 = 0.1;

fn main() {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1))
        .build()
        .expect("boot");

    let mut state = PicState::two_stream(PARTICLES, CELLS, 1.0, 11);
    let e_start = state.field_energy();
    println!(
        "{PARTICLES} particles, {CELLS} cells, {LOCALITIES} slabs; initial field energy {e_start:.3e}"
    );

    for step in 0..STEPS {
        // Partition particles into slabs (they migrate as they stream).
        let parts = state.partition(LOCALITIES);
        let shared = Arc::new(RwLock::new(state.clone()));

        // Each slab deposits its particles' charge into a local density
        // array and contributes it to a reduction LCO at L0.
        let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
            let mut x: Vec<f64> = a.decode().unwrap();
            let y: Vec<f64> = b.decode().unwrap();
            for (xi, yi) in x.iter_mut().zip(y.iter()) {
                *xi += yi;
            }
            parallex::core::action::Value::encode(&x).unwrap()
        });
        let rho_total = rt
            .new_reduce(LocalityId(0), LOCALITIES as u64, &vec![0.0f64; CELLS], fold)
            .unwrap();

        for (l, slab) in parts.iter().enumerate() {
            let slab = slab.clone();
            let shared = shared.clone();
            let rho_gid = rho_total.gid();
            rt.spawn_at(LocalityId(l as u16), move |ctx| {
                let st = shared.read();
                let dx = st.dx();
                let w = 1.0 / st.particles.len() as f64 * st.cells as f64;
                let mut rho = vec![0.0f64; st.cells];
                for &pi in &slab {
                    let p = st.particles[pi as usize];
                    let xc = p.x / dx;
                    let i0 = xc.floor() as usize % st.cells;
                    let frac = xc - xc.floor();
                    let i1 = (i0 + 1) % st.cells;
                    rho[i0] += w * (1.0 - frac);
                    rho[i1] += w * frac;
                }
                ctx.contribute(rho_gid, &rho).unwrap();
            });
        }

        // Driver: wait for the reduced density, then solve + push.
        let mut rho = rt.wait_future(rho_total).unwrap();
        let mean = rho.iter().sum::<f64>() / CELLS as f64;
        for r in rho.iter_mut() {
            *r -= mean;
        }
        state.rho = rho;
        state.solve_field();
        let fields: Vec<f64> = state
            .particles
            .iter()
            .map(|p| state.field_at(p.x))
            .collect();
        let length = state.length;
        for (p, &e) in state.particles.iter_mut().zip(fields.iter()) {
            p.v -= e * DT;
            p.x = (p.x + p.v * DT).rem_euclid(length);
        }

        if step % 15 == 14 {
            println!(
                "step {:>3}: field energy {:.3e}, kinetic {:.3}",
                step + 1,
                state.field_energy(),
                state.kinetic_energy()
            );
        }
    }

    let e_end = state.field_energy();
    println!(
        "field energy grew {:.1}× — two-stream instability captured",
        e_end / e_start.max(1e-12)
    );
    rt.shutdown();
}
