//! Failure semantics: dead parcels fail loudly instead of hanging waiters.
//!
//! Every way a parcel can die — panicking action, unknown action,
//! exhausted chase after a freed object, undecodable payload — produces a
//! first-class *fault* delivered along the parcel's continuation chain:
//! futures poison, waiters resolve with `PxError::Fault`, and a
//! dead-letter hook sees every death with its cause.
//!
//! ```sh
//! cargo run --release --example fault_handling
//! ```

use parallex::core::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// An action that always fails: stands in for the crashed handler, bad
/// input, or poisoned state a production system inevitably meets.
struct Flaky;
impl Action for Flaky {
    const NAME: &'static str = "demo/flaky";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, n: u64) -> u64 {
        panic!("flaky handler rejected input {n}");
    }
}

fn main() {
    // Collect every fault the runtime raises (production code would log,
    // alert, or push these to a metrics pipeline).
    let dead_letters: Arc<Mutex<Vec<Fault>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = dead_letters.clone();
    let rt = RuntimeBuilder::new(Config::small(2, 1))
        .register::<Flaky>()
        .on_dead_letter(move |f| sink.lock().push(f.clone()))
        .build()
        .expect("boot");

    // 1. A panicking action: the panic message rides the fault to the
    //    driver instead of stranding it on `wait()` forever.
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Flaky>(
        Gid::locality_root(LocalityId(1)),
        7,
        Continuation::set(fut.gid()),
    )
    .unwrap();
    match fut.wait(&rt) {
        Err(PxError::Fault(f)) => {
            assert_eq!(f.cause, FaultCause::Panic);
            println!("panicked action surfaced: {f}");
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    // 2. An unknown action: same contract, different cause.
    let fut2 = rt.new_future::<u64>(LocalityId(0));
    let gid2 = fut2.gid();
    rt.run_blocking(LocalityId(0), move |ctx| {
        ctx.send_parcel(Parcel::new(
            Gid::locality_root(LocalityId(1)),
            ActionId::of("demo/never_registered"),
            Value::unit(),
            Continuation::set(gid2),
        ));
    });
    match rt.wait_future_timeout(fut2, Duration::from_secs(5)) {
        Err(PxError::Fault(f)) => {
            assert_eq!(f.cause, FaultCause::UnknownAction);
            println!("unknown action surfaced: {f}");
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    // 3. A freed/never-created object: the bounded chase exhausts its hop
    //    budget and the fault names the cause.
    let bogus = Gid::new(LocalityId(0), GidKind::Data, 0xDEAD);
    let fetch = rt.run_blocking(LocalityId(1), move |ctx| ctx.fetch_data(bogus));
    match rt.wait_future_timeout(fetch, Duration::from_secs(5)) {
        Err(PxError::Fault(f)) => {
            assert_eq!(f.cause, FaultCause::HopCap);
            println!("exhausted chase surfaced: {f}");
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    // The by-cause breakdown mirrors what the hook saw.
    let total = rt.stats().total();
    println!(
        "dead parcels: {} (panic {}, unknown-action {}, hop-cap {}, handler-error {}, decode {})",
        total.dead_parcels,
        total.dead_panic,
        total.dead_unknown_action,
        total.dead_hop_cap,
        total.dead_handler_error,
        total.dead_decode,
    );
    assert_eq!(total.deaths_by_cause_total(), total.dead_parcels);
    let letters = dead_letters.lock();
    println!("dead-letter hook observed {} faults:", letters.len());
    for f in letters.iter() {
        println!("  - {f}");
    }
    assert_eq!(letters.len(), 3);
    rt.shutdown();
    println!("done: every failure was loud, nothing hung");
}
