//! Barnes–Hut N-body on the ParalleX runtime (the paper's "trees" case).
//!
//! Bodies are partitioned over localities; each locality owns an octree
//! over its bodies. Force evaluation moves *work to data*: a parcel per
//! (body, locality) computes the partial force where the tree lives, and
//! per-body reduction LCOs assemble totals. Integration then advances the
//! bodies and the trees are rebuilt — irregular AND time-varying, as
//! §2.1 demands.
//!
//! ```sh
//! cargo run --release --example nbody_barnes_hut
//! ```

use parallex::core::prelude::*;
use parallex::workloads::barnes_hut::{make_cluster, total_energy, Body, Octree};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

const BODIES: usize = 256;
const LOCALITIES: usize = 4;
const STEPS: usize = 5;
const THETA: f64 = 0.6;
const DT: f64 = 1e-3;

// Locality-resident trees (index i is only written/read at locality i).
static TREES: RwLock<Vec<Option<Octree>>> = RwLock::new(Vec::new());

struct ForceReq;
impl Action for ForceReq {
    const NAME: &'static str = "nbody/force_req";
    type Args = [f64; 3];
    type Out = [f64; 3];
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, pos: [f64; 3]) -> [f64; 3] {
        let trees = TREES.read();
        match &trees[ctx.here().0 as usize] {
            Some(tree) => tree.force_on(pos, THETA),
            None => [0.0; 3],
        }
    }
}

fn main() {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1))
        .register::<ForceReq>()
        .build()
        .expect("boot");

    let mut bodies = make_cluster(BODIES, 42);
    let e0 = total_energy(&bodies);
    println!("{BODIES} bodies across {LOCALITIES} localities; initial energy {e0:.6}");

    for step in 0..STEPS {
        // Rebuild per-locality trees (time-varying structure).
        {
            let mut trees = TREES.write();
            trees.clear();
            for l in 0..LOCALITIES {
                let part: Vec<Body> = bodies
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % LOCALITIES == l)
                    .map(|(_, b)| *b)
                    .collect();
                trees.push(Some(Octree::build(&part)));
            }
        }

        let t0 = Instant::now();
        let forces = Arc::new(RwLock::new(vec![[0.0f64; 3]; bodies.len()]));
        let gate = rt.new_and_gate(LocalityId(0), bodies.len() as u64);
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
        for (i, b) in bodies.iter().enumerate() {
            let owner = LocalityId((i % LOCALITIES) as u16);
            let pos = b.pos;
            let forces = forces.clone();
            rt.spawn_at(owner, move |ctx| {
                let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
                    let x: [f64; 3] = a.decode().unwrap();
                    let y: [f64; 3] = b.decode().unwrap();
                    parallex::core::action::Value::encode(&[x[0] + y[0], x[1] + y[1], x[2] + y[2]])
                        .unwrap()
                });
                let red = ctx
                    .new_reduce(LOCALITIES as u64, &[0.0f64; 3], fold)
                    .unwrap();
                for j in 0..LOCALITIES {
                    ctx.send::<ForceReq>(
                        Gid::locality_root(LocalityId(j as u16)),
                        pos,
                        Continuation::contribute(red.gid()),
                    )
                    .unwrap();
                }
                let forces = forces.clone();
                ctx.when_future(red, move |ctx, total: [f64; 3]| {
                    forces.write()[i] = total;
                    ctx.trigger_value(gate, parallex::core::action::Value::unit());
                });
            });
        }
        rt.wait_future(gate_fut).unwrap();
        let elapsed = t0.elapsed();

        // Leapfrog step.
        let acc = forces.read().clone();
        parallex::workloads::barnes_hut::step(&mut bodies, &acc, DT);
        println!(
            "step {step}: force phase {:.2} ms ({} parcels)",
            elapsed.as_secs_f64() * 1e3,
            BODIES * LOCALITIES
        );
    }

    let e1 = total_energy(&bodies);
    println!(
        "final energy {e1:.6} (drift {:.3e} over {STEPS} steps)",
        (e1 - e0).abs()
    );
    rt.shutdown();
}
