//! Multi-tenancy with hierarchical processes: one subprocess per request,
//! a deadline that cancels the subtree, and `FaultCause::Cancelled`
//! observed by every waiter.
//!
//! ```text
//! cargo run --example multi_tenant --release
//! ```
//!
//! The server pattern: each incoming request gets its own process under a
//! per-tenant parent, so a runaway request can be killed mid-flight —
//! parcels, queued threads, and LCO waiters included — without touching
//! the rest of the tenant's (or anyone else's) work.

use parallex::core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unit of request work: block for the given grain (I/O stand-in).
struct Step;
impl Action for Step {
    const NAME: &'static str = "tenant/step";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, grain_ns: u64) -> u64 {
        std::thread::sleep(Duration::from_nanos(grain_ns));
        1
    }
}

fn main() {
    let rt = Arc::new(
        RuntimeBuilder::new(Config::small(4, 1))
            .register::<Step>()
            .on_dead_letter(|fault| {
                if fault.cause == FaultCause::Cancelled {
                    // Every killed parcel / dropped thread of a cancelled
                    // request lands here, loudly.
                    println!("  dead-letter: {fault}");
                }
            })
            .build()
            .unwrap(),
    );

    // One parent process per tenant: its namespace holds the tenant's
    // objects, and cancelling it would kill every in-flight request of
    // that tenant at once.
    let tenant = rt.create_process(LocalityId(0));
    let scratch = rt.new_data_at(LocalityId(0), vec![0u8; 64]);
    let path = tenant.register_name(&rt, "scratch", scratch).unwrap();
    println!("tenant namespace entry: {path}");

    // Request A: well-behaved — 8 quick steps fanned over localities.
    let fast = tenant.create_subprocess(&rt, LocalityId(0)).unwrap();
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..8u16 {
        let d = done.clone();
        fast.spawn_at(&rt, LocalityId(i % 4), move |ctx| {
            let fut = ctx
                .call::<Step>(Gid::locality_root(ctx.here()), 200_000)
                .unwrap();
            let d = d.clone();
            ctx.when_future(fut, move |_ctx, n| {
                d.fetch_add(n, Ordering::SeqCst);
            });
        });
    }
    fast.finish_root(&rt);

    // Request B: a runaway — hundreds of slow steps it will never finish
    // in time.
    let runaway = tenant.create_subprocess(&rt, LocalityId(1)).unwrap();
    for i in 0..400u16 {
        runaway.spawn_at(&rt, LocalityId(i % 4), |ctx| {
            let _ = ctx.call::<Step>(Gid::locality_root(ctx.here()), 2_000_000);
        });
    }
    runaway.finish_root(&rt);

    // The request deadline: cancel the runaway's whole subtree.
    let watchdog = {
        let rt = rt.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            if runaway.active(&rt) > 0 {
                println!("deadline hit — cancelling request B's subtree");
                runaway.cancel(&rt);
            }
        })
    };

    match fast.wait(&rt) {
        Ok(()) => println!(
            "request A completed all {} steps",
            done.load(Ordering::SeqCst)
        ),
        Err(e) => println!("request A unexpectedly failed: {e}"),
    }
    match runaway.wait(&rt) {
        Err(PxError::Fault(f)) => {
            assert_eq!(f.cause, FaultCause::Cancelled);
            println!("request B resolved with: {f}");
        }
        other => println!("request B: {other:?} (deadline never fired?)"),
    }
    watchdog.join().unwrap();

    let total = rt.stats().total();
    println!(
        "killed at dispatch: {} parcels, {} queued threads; {} process(es) cancelled",
        total.dead_cancelled,
        total.tasks_cancelled,
        rt.stats().processes_cancelled
    );
    // The tenant itself is untouched: its namespace still resolves.
    assert_eq!(tenant.lookup_name(&rt, "scratch").unwrap(), scratch);
    println!("tenant namespace intact after the cancel");
    rt.shutdown();
}
