//! Quickstart: the eight ParalleX mechanisms in one small program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallex::core::prelude::*;
use parallex::core::{echo, percolation};

// An action: a named unit of work a parcel applies to a target object.
struct SquareSum;
impl Action for SquareSum {
    const NAME: &'static str = "quickstart/square_sum";
    type Args = Vec<u64>;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _target: Gid, xs: Vec<u64>) -> u64 {
        xs.iter().map(|x| x * x).sum()
    }
}

fn main() {
    // 1. Localities: four synchronous domains, one worker each, with a
    //    20 µs wire between them.
    let rt =
        RuntimeBuilder::new(Config::small(4, 1).with_latency(std::time::Duration::from_micros(20)))
            .register::<SquareSum>()
            .build()
            .expect("boot");

    println!("booted {} localities", rt.num_localities());

    // 2. Global name space: objects have GIDs; symbolic names resolve to
    //    them.
    let data = rt.new_data_at(LocalityId(2), vec![1, 2, 3]);
    rt.register_name("/quickstart/block", data).unwrap();
    assert_eq!(rt.lookup_name("/quickstart/block").unwrap(), data);
    println!("named object {data} as /quickstart/block");

    // 3. Parcels + continuations: send work to locality 1, route the
    //    result into a future LCO.
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<SquareSum>(
        Gid::locality_root(LocalityId(1)),
        vec![1, 2, 3, 4],
        Continuation::set(fut.gid()),
    )
    .unwrap();
    // 4. LCOs: the driver blocks on the future (PX-threads would suspend).
    println!("square sum via parcel = {}", fut.wait(&rt).unwrap());

    // 5. Multithreading: ephemeral threads, suspension via depleted
    //    threads, work moving to data.
    let done = rt.new_future::<u64>(LocalityId(0));
    let done_gid = done.gid();
    rt.spawn_at(LocalityId(0), move |ctx| {
        // fetch_data moves the data to the work …
        let bytes = ctx.fetch_data(data);
        ctx.when_future(bytes, move |ctx, b: Vec<u8>| {
            // … and this continuation is a depleted thread, resumed when
            // the value arrives.
            ctx.trigger(done_gid, &(b.len() as u64)).unwrap();
        });
    });
    println!(
        "fetched {} bytes through a depleted thread",
        done.wait(&rt).unwrap()
    );

    // 6. Parallel processes: spawn a tree of threads across localities;
    //    quiescence fires when every descendant finished.
    let proc = rt.create_process(LocalityId(0));
    for l in 0..4u16 {
        proc.spawn_at(&rt, LocalityId(l), move |ctx| {
            // Each process thread forks two children on its locality.
            for _ in 0..2 {
                ctx.spawn(|_ctx| { /* leaf work */ });
            }
        });
    }
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    println!("process quiesced after {} threads", 4 + 8);

    // 7. Percolation: prestage a task + its data at locality 3.
    let staged = rt.new_future::<u64>(LocalityId(0));
    percolation::percolate_from_driver::<SquareSum>(
        &rt,
        LocalityId(3),
        Gid::locality_root(LocalityId(3)),
        &vec![5, 6],
        Continuation::set(staged.gid()),
    )
    .unwrap();
    println!("percolated kernel = {}", staged.wait(&rt).unwrap());

    // 8. Echo: replica tree with split-phase commit.
    let tree = echo::create_tree(&rt, LocalityId(0), 2, &7u64).unwrap();
    let (v, version) = rt.run_blocking(LocalityId(2), move |ctx| {
        echo::read_local::<u64>(ctx.locality(), tree.local_node(LocalityId(2))).unwrap()
    });
    println!("echo replica at L2 reads {v} (version {version})");

    rt.shutdown();
    println!("done.");
}
