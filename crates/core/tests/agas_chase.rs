//! Property tests for the AGAS under migration churn: cache repair
//! converges, forwarding chases are bounded, and migration accounting
//! stays exact even when `record_migration` runs concurrently with
//! resolution — the regime the balancer's heat-driven pulls create.

use proptest::prelude::*;
use px_core::agas::{Agas, MigrationCause};
use px_core::gid::{Gid, GidKind, LocalityId};
use std::sync::Arc;

const LOCALITIES: usize = 4;

fn gid(seq: u64) -> Gid {
    Gid::new(LocalityId(0), GidKind::Data, seq)
}

/// Simulate the scheduler's forwarding chase for a parcel sent from
/// `from`: start at the (possibly stale) resolved owner, then repeatedly
/// ask the directory and repair the sender's cache, counting hops until
/// the answer is stable. Returns the hop count.
///
/// This mirrors `run_parcel`: a mis-delivered parcel is forwarded to
/// `authoritative_owner` with a `repair_cache` hint, so a chase ends as
/// soon as the directory stops moving under it.
fn chase(agas: &Agas, from: LocalityId, g: Gid, max_hops: usize) -> usize {
    let mut at = agas.resolve(from, g).owner;
    let mut hops = 0;
    loop {
        let owner = agas.authoritative_owner(g);
        if owner == at {
            return hops;
        }
        hops += 1;
        assert!(
            hops <= max_hops,
            "chase exceeded {max_hops} hops (directory cannot outrun a bounded migration list)"
        );
        agas.repair_cache(from, g, owner);
        at = owner;
    }
}

proptest! {
    /// After any interleaving of migrations with concurrent resolutions
    /// and chases, (1) every chase is bounded by the number of migrations
    /// still outstanding when it started, (2) once migrations stop, one
    /// repair makes every locality's cache agree with the directory, and
    /// (3) the by-cause accounting is exact.
    #[test]
    fn chase_bounded_and_cache_repair_converges(
        // Per-object migration scripts: (object seq, destination locality).
        moves in proptest::collection::vec((0u64..8, 0u16..LOCALITIES as u16), 1..64),
        askers in proptest::collection::vec(0u16..LOCALITIES as u16, 1..8),
    ) {
        let agas = Arc::new(Agas::new(LOCALITIES));
        let objects: Vec<Gid> = (0..8).map(gid).collect();

        // Warm every asker's cache with whatever the pre-migration state
        // is, so stale entries exist to be repaired.
        for &a in &askers {
            for &g in &objects {
                let _ = agas.resolve(LocalityId(a), g);
            }
        }

        let migrator = {
            let agas = agas.clone();
            let moves = moves.clone();
            std::thread::spawn(move || {
                for (i, &(seq, to)) in moves.iter().enumerate() {
                    let cause = if i % 2 == 0 {
                        MigrationCause::Manual
                    } else {
                        MigrationCause::Balancer
                    };
                    agas.record_migration_caused(gid(seq), LocalityId(to), cause);
                }
            })
        };

        // Concurrent chasers: every hop a chaser takes must be justified
        // by a migration that happened, so the total is bounded by the
        // script length (plus the initial stale answer).
        let max_hops = moves.len() + 1;
        let chasers: Vec<_> = askers
            .iter()
            .map(|&a| {
                let agas = agas.clone();
                let objects = objects.clone();
                std::thread::spawn(move || {
                    for &g in &objects {
                        chase(&agas, LocalityId(a), g, max_hops);
                    }
                })
            })
            .collect();

        migrator.join().unwrap();
        for c in chasers {
            c.join().unwrap();
        }

        // Quiescent convergence: a single repair per (locality, object)
        // makes every cache authoritative, and it stays authoritative.
        for &a in &askers {
            for &g in &objects {
                let owner = agas.authoritative_owner(g);
                prop_assert_eq!(chase(&agas, LocalityId(a), g, 1) <= 1, true);
                agas.repair_cache(LocalityId(a), g, owner);
                let r = agas.resolve(LocalityId(a), g);
                prop_assert_eq!(r.owner, owner);
            }
        }

        // The directory agrees with the last migration per object.
        let mut last: std::collections::HashMap<u64, LocalityId> = Default::default();
        for &(seq, to) in &moves {
            last.insert(seq, LocalityId(to));
        }
        for (seq, to) in last {
            prop_assert_eq!(agas.authoritative_owner(gid(seq)), to);
        }

        // Exact by-cause accounting.
        let (manual, balancer) = agas.migrations_by_cause();
        prop_assert_eq!(manual + balancer, moves.len() as u64);
        prop_assert_eq!(manual, moves.len().div_ceil(2) as u64);
        prop_assert_eq!(agas.migrations(), moves.len() as u64);
    }

    /// A repaired cache answers from the cache (no directory traffic) and
    /// with the hinted owner — the property the parcel layer's repair
    /// hints rely on for the "next one routes right" claim.
    #[test]
    fn repair_hint_is_sticky(
        owners in proptest::collection::vec(0u16..LOCALITIES as u16, 1..16),
    ) {
        let agas = Agas::new(LOCALITIES);
        let g = gid(0);
        for &to in &owners {
            agas.record_migration(g, LocalityId(to));
            agas.repair_cache(LocalityId(3), g, LocalityId(to));
            let r = agas.resolve(LocalityId(3), g);
            prop_assert_eq!(r.owner, LocalityId(to));
            prop_assert_eq!(r.source, px_core::agas::ResolutionSource::Cache);
        }
    }
}
