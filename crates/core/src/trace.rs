//! Causal tracing: replay a request end to end across localities and ranks.
//!
//! ParalleX computations are split-phase — a request is a *chain* of
//! parcels, LCO triggers, and continuations, not a call stack — so when a
//! parcel dies or a tail-latency outlier appears, no stack trace exists to
//! explain it. This module supplies the missing causality:
//!
//! * a **64-bit trace id** rides in the parcel header (gated on
//!   [`px_wire::parcel_flags::HAS_TRACE`], zero bytes when absent) and is
//!   inherited by everything a traced parcel causes: spawned threads,
//!   LCO triggers and poisons, fault deliveries, migration chases,
//!   balancer sheds, and follow-on parcels — across ranks, because the id
//!   is part of the wire encoding;
//! * each locality records compact [`TraceEvent`]s into a fixed-size,
//!   lock-free [`TraceRing`] (one atomic ticket cursor, per-slot
//!   seqlocks; a writer that collides with another a full ring ahead
//!   drops its event rather than blocking);
//! * [`crate::runtime::Runtime::trace_dump`] merges the rings into a
//!   [`TraceDump`], which can be filtered by trace id, serialized, shipped
//!   between ranks, merged with another rank's dump, and ordered causally
//!   (in-rank by recording order; cross-rank by matching each network
//!   receive with its submit).
//!
//! Tracing is **off by default** and costs one `Option` branch per hook
//! when off; [`TraceConfig::sample_every`] enables it for one in N root
//! parcels so production runs can keep it always-on.

use crate::gid::LocalityId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tracing knobs ([`crate::runtime::Config::trace`]; off by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Assign a fresh trace id to one in this many untraced root parcels
    /// (`0` = tracing off, `1` = trace everything). Parcels that already
    /// carry a trace id — inherited or explicit — are always recorded.
    pub sample_every: u64,
    /// Events per locality ring; the oldest events are overwritten when
    /// full (counted in `trace_events_dropped`).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 0,
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// True when tracing is on (ids are sampled and events recorded).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }
}

/// What happened (the discriminant of a [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A parcel entered the runtime's send path (`aux` = dest locality).
    ParcelSend,
    /// A parcel began executing at its destination.
    ParcelDispatch,
    /// A parcel was forwarded after a stale AGAS resolution
    /// (`aux` = hops so far).
    ParcelForward,
    /// A parcel was killed (`aux` = [`crate::error::FaultCause`] wire
    /// code).
    ParcelKill,
    /// An LCO was triggered with a value (`gid` = the LCO).
    LcoTrigger,
    /// An LCO was poisoned with a fault (`aux` = cause wire code).
    LcoPoison,
    /// An LCO released a waiter (resumed thread or fired continuation).
    LcoRelease,
    /// A parallel process was cancelled (`gid` = the process).
    ProcessCancel,
    /// An object migrated between localities (`aux` = new home).
    Migrate,
    /// An AGAS chase hop: a resolution was stale and repaired
    /// (`aux` = the corrected locality).
    Chase,
    /// The balancer shed queued work to a less-loaded peer
    /// (`aux` = the receiving locality).
    BalanceShed,
    /// The transport accepted a traced message for a peer
    /// (`aux` = destination rank).
    NetSubmit,
    /// The transport received a traced message from a peer
    /// (`aux` = source rank).
    NetRecv,
    /// The transport reconnected to a peer; queued traced messages will
    /// be resent (`aux` = peer rank).
    NetReconnect,
    /// The transport declared a traced message undeliverable
    /// (`aux` = peer rank).
    NetFault,
}

impl TraceEventKind {
    /// Compact code for in-ring packing (see [`TraceRing`]); inverse of
    /// [`TraceEventKind::from_code`].
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decode a packed kind; `None` for codes no variant carries.
    pub fn from_code(code: u16) -> Option<TraceEventKind> {
        Some(match code {
            0 => TraceEventKind::ParcelSend,
            1 => TraceEventKind::ParcelDispatch,
            2 => TraceEventKind::ParcelForward,
            3 => TraceEventKind::ParcelKill,
            4 => TraceEventKind::LcoTrigger,
            5 => TraceEventKind::LcoPoison,
            6 => TraceEventKind::LcoRelease,
            7 => TraceEventKind::ProcessCancel,
            8 => TraceEventKind::Migrate,
            9 => TraceEventKind::Chase,
            10 => TraceEventKind::BalanceShed,
            11 => TraceEventKind::NetSubmit,
            12 => TraceEventKind::NetRecv,
            13 => TraceEventKind::NetReconnect,
            14 => TraceEventKind::NetFault,
            _ => return None,
        })
    }

    /// Short lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::ParcelSend => "parcel-send",
            TraceEventKind::ParcelDispatch => "parcel-dispatch",
            TraceEventKind::ParcelForward => "parcel-forward",
            TraceEventKind::ParcelKill => "parcel-kill",
            TraceEventKind::LcoTrigger => "lco-trigger",
            TraceEventKind::LcoPoison => "lco-poison",
            TraceEventKind::LcoRelease => "lco-release",
            TraceEventKind::ProcessCancel => "process-cancel",
            TraceEventKind::Migrate => "migrate",
            TraceEventKind::Chase => "chase",
            TraceEventKind::BalanceShed => "balance-shed",
            TraceEventKind::NetSubmit => "net-submit",
            TraceEventKind::NetRecv => "net-recv",
            TraceEventKind::NetReconnect => "net-reconnect",
            TraceEventKind::NetFault => "net-fault",
        }
    }
}

/// One recorded event. Compact and `Copy`: six words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Subject gid (parcel dest, LCO, or process; `0` if not applicable).
    pub gid: u64,
    /// Kind-specific detail: fault-cause wire code, peer rank, hop count.
    pub aux: u64,
    /// Monotonic nanoseconds since the recording runtime's trace epoch.
    /// Comparable within one OS process only — cross-rank ordering uses
    /// causal matching, not clocks.
    pub at_ns: u64,
    /// Recording-order sequence number within the ring (ties on `at_ns`).
    pub seq: u64,
    /// Recording locality.
    pub locality: u16,
    /// Recording rank (one causality domain per OS process): events with
    /// equal `domain` are totally ordered by `seq`; events across domains
    /// only by send/recv matching.
    pub domain: u16,
}

/// One seqlock-protected slot: `seq` is `0` when never written, odd while
/// a writer owns the slot, and even `>= 2` once an event is published in
/// `words`. Six data words hold one packed [`TraceEvent`]:
/// `[trace, gid, aux, at_ns, ticket, kind | locality << 16 | domain << 32]`.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 6],
}

/// Fixed-size, lock-free per-locality event ring.
///
/// Writers take a ticket with one `fetch_add` on the cursor, claim the
/// slot by CASing its seqlock even→odd, store the six data words, and
/// publish with a Release store of the next even value. A writer that
/// loses the claim CAS collided with another writer a full ring ahead —
/// it drops its own event (the caller counts it in
/// `trace_events_dropped`) instead of blocking or tearing the slot.
/// Readers enter with an Acquire load of the seqlock, copy the words,
/// and revalidate the sequence behind an Acquire fence; a torn slot is
/// skipped, never surfaced.
pub struct TraceRing {
    locality: u16,
    domain: u16,
    epoch: Instant,
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl TraceRing {
    /// Build a ring of `capacity` slots for `locality` on rank `domain`,
    /// stamping timestamps relative to `epoch` (shared by every ring of
    /// one runtime so in-process timestamps are comparable).
    pub fn new(capacity: usize, locality: LocalityId, domain: u16, epoch: Instant) -> TraceRing {
        TraceRing {
            locality: locality.0,
            domain,
            epoch,
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Record one event under `trace`. Returns `true` when an event was
    /// lost — either an older one overwritten (the ring wrapped) or this
    /// one dropped after losing the slot-claim race.
    pub fn record(&self, trace: u64, kind: TraceEventKind, gid: u64, aux: u64) -> bool {
        // Relaxed ticket: it only picks a slot; the claim CAS below is
        // what orders the write.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = &slot.seq;
        let seq0 = seq.load(Ordering::Acquire);
        if seq0 & 1 == 1 {
            // A writer a full ring ahead owns the slot: drop this event.
            return true;
        }
        // Relaxed failure ordering: losing the claim race means this
        // event is dropped, nothing is read or written.
        let claim = seq.compare_exchange(seq0, seq0 + 1, Ordering::Acquire, Ordering::Relaxed);
        if claim.is_err() {
            return true;
        }
        let packed = [
            trace,
            gid,
            aux,
            self.epoch.elapsed().as_nanos() as u64,
            ticket,
            kind.code() as u64 | (self.locality as u64) << 16 | (self.domain as u64) << 32,
        ];
        for (cell, word) in slot.words.iter().zip(packed) {
            // Relaxed data stores: the Release publication below orders
            // them for any reader that sees the new sequence.
            cell.store(word, Ordering::Relaxed);
        }
        seq.store(seq0 + 2, Ordering::Release);
        seq0 != 0
    }

    /// Total events ever recorded (including overwritten and dropped
    /// ones).
    pub fn recorded(&self) -> u64 {
        // Relaxed: a monotonic counter read for reporting.
        self.cursor.load(Ordering::Relaxed)
    }

    /// Copy out the surviving events, in recording order. Slots a writer
    /// is mid-way through are skipped (the wrap already counts the old
    /// event as overwritten), so the snapshot never contains a torn
    /// event.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or a writer owns it right now
            }
            // Relaxed data reads: the Acquire fence below orders them
            // before the revalidation load.
            let words: [u64; 6] = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            // Relaxed revalidation load: the fence provides the edge.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // a writer claimed the slot mid-read: skip it
            }
            let Some(kind) = TraceEventKind::from_code((words[5] & 0xffff) as u16) else {
                continue;
            };
            out.push(TraceEvent {
                trace: words[0],
                gid: words[1],
                aux: words[2],
                at_ns: words[3],
                seq: words[4],
                kind,
                locality: (words[5] >> 16) as u16,
                domain: (words[5] >> 32) as u16,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// A merged, orderable set of trace events — what
/// [`crate::runtime::Runtime::trace_dump`] returns. Serializable so one
/// rank's slice can be shipped to another (e.g. over a parcel) and merged
/// into a cross-rank replay.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceDump {
    /// The events, causally ordered (see [`TraceDump::order_causally`]).
    pub events: Vec<TraceEvent>,
}

impl TraceDump {
    /// Build from raw events (orders them causally).
    pub fn new(events: Vec<TraceEvent>) -> TraceDump {
        let mut d = TraceDump { events };
        d.order_causally();
        d
    }

    /// The distinct trace ids present, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Only the events of `trace`, causally ordered.
    pub fn filter(&self, trace: u64) -> TraceDump {
        TraceDump {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.trace == trace)
                .collect(),
        }
    }

    /// Merge with another rank's dump and re-order causally.
    pub fn merge(mut self, other: TraceDump) -> TraceDump {
        self.events.extend(other.events);
        self.order_causally();
        self
    }

    /// Order events causally: within a domain (one OS process) by
    /// recording order; across domains, a [`TraceEventKind::NetRecv`] of
    /// trace `t` from rank `r` is placed after a matching
    /// [`TraceEventKind::NetSubmit`] of `t` sent from `r` — clocks are
    /// never compared across domains. If ring overwrites leave a receive
    /// unmatched, the ordering degrades gracefully to timestamp order for
    /// the stuck fronts rather than stalling.
    pub fn order_causally(&mut self) {
        // Per-domain queues in recording order.
        let mut domains: HashMap<u16, Vec<TraceEvent>> = HashMap::new();
        for e in self.events.drain(..) {
            domains.entry(e.domain).or_default().push(e);
        }
        let mut queues: Vec<(Vec<TraceEvent>, usize)> = domains
            .into_values()
            .map(|mut v| {
                v.sort_by_key(|e| e.seq);
                (v, 0usize)
            })
            .collect();
        queues.sort_by_key(|(v, _)| v.first().map(|e| e.domain).unwrap_or(0));
        // Emitted-submit minus emitted-recv counts, keyed by
        // (trace, from-rank, to-rank).
        let mut in_flight: HashMap<(u64, u64, u64), i64> = HashMap::new();
        let mut out = Vec::with_capacity(queues.iter().map(|(v, _)| v.len()).sum());
        loop {
            let mut best: Option<usize> = None;
            let mut fallback: Option<usize> = None;
            for (qi, (q, at)) in queues.iter().enumerate() {
                let Some(e) = q.get(*at) else { continue };
                let enabled = match e.kind {
                    TraceEventKind::NetRecv => in_flight
                        .get(&(e.trace, e.aux, e.domain as u64))
                        .is_some_and(|n| *n > 0),
                    _ => true,
                };
                let better = |cur: Option<usize>| {
                    cur.is_none_or(|c| {
                        let (cq, cat) = &queues[c];
                        let ce = cq[*cat];
                        (e.at_ns, e.domain, e.seq) < (ce.at_ns, ce.domain, ce.seq)
                    })
                };
                if enabled && better(best) {
                    best = Some(qi);
                }
                if better(fallback) {
                    fallback = Some(qi);
                }
            }
            // No enabled front means an unmatched receive (its submit was
            // overwritten): make progress on the earliest front anyway.
            let Some(pick) = best.or(fallback) else { break };
            let (q, at) = &mut queues[pick];
            let e = q[*at];
            *at += 1;
            match e.kind {
                TraceEventKind::NetSubmit => {
                    *in_flight
                        .entry((e.trace, e.domain as u64, e.aux))
                        .or_insert(0) += 1;
                }
                TraceEventKind::NetRecv => {
                    *in_flight
                        .entry((e.trace, e.aux, e.domain as u64))
                        .or_insert(0) -= 1;
                }
                _ => {}
            }
            out.push(e);
        }
        self.events = out;
    }

    /// Render a human-readable timeline, one event per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(
                s,
                "  [rank{} L{} +{:>9.1}us] {:<15} trace={:#018x} gid={:#x} aux={}",
                e.domain,
                e.locality,
                e.at_ns as f64 / 1e3,
                e.kind.label(),
                e.trace,
                e.gid,
                e.aux,
            );
        }
        s
    }
}

/// Runtime-wide trace state: the sampler and the id allocator.
pub(crate) struct TraceState {
    /// `Config::trace.sample_every` (non-zero: tracing on).
    sample_every: u64,
    /// Untraced root parcels seen by the sampler.
    seen: AtomicU64,
    /// Ids handed out (the low bits of the next id).
    next: AtomicU64,
    /// This rank, baked into the id's high bits so ids never collide
    /// across ranks without coordination.
    domain: u16,
}

impl TraceState {
    pub(crate) fn new(sample_every: u64, domain: u16) -> TraceState {
        TraceState {
            sample_every,
            seen: AtomicU64::new(0),
            next: AtomicU64::new(0),
            domain,
        }
    }

    /// Sample one untraced root parcel: `Some(fresh id)` for one in
    /// `sample_every`, `None` otherwise.
    pub(crate) fn maybe_sample(&self) -> Option<u64> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.sample_every) {
            Some(self.fresh_id())
        } else {
            None
        }
    }

    /// Allocate a fresh, never-zero trace id unique to this rank:
    /// `(rank + 1) << 48 | counter`.
    pub(crate) fn fresh_id(&self) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        ((self.domain as u64 + 1) << 48) | (seq & 0xffff_ffff_ffff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, kind: TraceEventKind, domain: u16, seq: u64, at_ns: u64) -> TraceEvent {
        TraceEvent {
            trace,
            kind,
            gid: 0,
            aux: 0,
            at_ns,
            seq,
            locality: domain,
            domain,
        }
    }

    #[test]
    fn ring_records_and_wraps() {
        let r = TraceRing::new(4, LocalityId(2), 0, Instant::now());
        for i in 0..6u64 {
            let wrapped = r.record(7, TraceEventKind::ParcelSend, i, 0);
            assert_eq!(wrapped, i >= 4, "wrap starts at capacity");
        }
        assert_eq!(r.recorded(), 6);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "ring keeps the newest `capacity` events");
        // The survivors are the newest four, in recording order.
        assert_eq!(snap.iter().map(|e| e.gid).collect::<Vec<_>>(), [2, 3, 4, 5]);
        assert!(snap.iter().all(|e| e.locality == 2 && e.trace == 7));
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=14u16 {
            let k = TraceEventKind::from_code(code).expect("code in range");
            assert_eq!(k.code(), code);
        }
        assert!(TraceEventKind::from_code(15).is_none());
    }

    /// Seqlock integrity: under concurrent writers a snapshot may miss
    /// in-flight slots but must never surface a torn event (mixed-up
    /// words would show as a wrong locality/domain/kind here).
    #[test]
    fn concurrent_writers_never_tear_the_ring() {
        use std::sync::Arc;
        let r = Arc::new(TraceRing::new(8, LocalityId(1), 2, Instant::now()));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.record(t, TraceEventKind::LcoTrigger, i, t);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for e in r.snapshot() {
                assert_eq!(e.kind, TraceEventKind::LcoTrigger);
                assert_eq!(e.locality, 1);
                assert_eq!(e.domain, 2);
                assert!(e.trace < 4 && e.gid < 500 && e.aux == e.trace);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(r.recorded(), 2000);
        assert_eq!(
            r.snapshot().len(),
            8,
            "quiescent ring: every slot published"
        );
    }

    #[test]
    fn zero_capacity_ring_degrades_to_one_slot() {
        let r = TraceRing::new(0, LocalityId(0), 0, Instant::now());
        r.record(1, TraceEventKind::ParcelSend, 0, 0);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn sampler_rate_and_id_uniqueness() {
        let s = TraceState::new(4, 3);
        let hits: Vec<Option<u64>> = (0..8).map(|_| s.maybe_sample()).collect();
        assert!(hits[0].is_some() && hits[4].is_some());
        assert_eq!(hits.iter().flatten().count(), 2);
        let a = hits[0].unwrap();
        let b = hits[4].unwrap();
        assert_ne!(a, b);
        assert_eq!(a >> 48, 4, "rank baked into the high bits");
        assert_ne!(a, 0, "ids are never zero");
        let off = TraceState::new(0, 0);
        assert!(off.maybe_sample().is_none());
    }

    #[test]
    fn dump_filter_and_ids() {
        let d = TraceDump::new(vec![
            ev(1, TraceEventKind::ParcelSend, 0, 0, 0),
            ev(2, TraceEventKind::ParcelSend, 0, 1, 1),
            ev(1, TraceEventKind::ParcelDispatch, 0, 2, 2),
        ]);
        assert_eq!(d.trace_ids(), [1, 2]);
        assert_eq!(d.filter(1).events.len(), 2);
        assert!(d.filter(9).events.is_empty());
        assert!(d.render().contains("parcel-dispatch"));
    }

    /// The acceptance shape: cross-rank order comes from send/recv
    /// matching, not from comparing clocks of different processes — here
    /// rank 1's clock reads *earlier* than rank 0's throughout, and the
    /// merged order is still send → recv → dispatch → fault → poison.
    #[test]
    fn cross_rank_merge_orders_causally_despite_skewed_clocks() {
        let t = 42;
        let rank0 = TraceDump {
            events: vec![
                ev(t, TraceEventKind::ParcelSend, 0, 0, 1000),
                {
                    let mut e = ev(t, TraceEventKind::NetSubmit, 0, 1, 1001);
                    e.aux = 1; // to rank 1
                    e
                },
                {
                    let mut e = ev(t, TraceEventKind::NetFault, 0, 2, 1002);
                    e.aux = 1;
                    e
                },
                ev(t, TraceEventKind::ParcelKill, 0, 3, 1003),
                ev(t, TraceEventKind::LcoPoison, 0, 4, 1004),
            ],
        };
        let rank1 = TraceDump {
            events: vec![
                {
                    // Skewed: rank 1's timestamps all predate rank 0's.
                    let mut e = ev(t, TraceEventKind::NetRecv, 1, 0, 10);
                    e.aux = 0; // from rank 0
                    e
                },
                ev(t, TraceEventKind::ParcelDispatch, 1, 1, 11),
            ],
        };
        let merged = rank0.merge(rank1);
        let kinds: Vec<TraceEventKind> = merged.events.iter().map(|e| e.kind).collect();
        let pos = |k: TraceEventKind| kinds.iter().position(|&x| x == k).unwrap();
        assert!(pos(TraceEventKind::NetSubmit) < pos(TraceEventKind::NetRecv));
        assert!(pos(TraceEventKind::NetRecv) < pos(TraceEventKind::ParcelDispatch));
        assert!(pos(TraceEventKind::ParcelKill) < pos(TraceEventKind::LcoPoison));
        assert_eq!(merged.events.len(), 7);
    }

    /// An unmatched receive (its submit overwritten by ring wrap) cannot
    /// stall the merge.
    #[test]
    fn unmatched_recv_still_makes_progress() {
        let mut recv = ev(5, TraceEventKind::NetRecv, 1, 0, 10);
        recv.aux = 0;
        let d = TraceDump::new(vec![recv, ev(5, TraceEventKind::ParcelDispatch, 1, 1, 11)]);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].kind, TraceEventKind::NetRecv);
    }
}
