//! Causal tracing: replay a request end to end across localities and ranks.
//!
//! ParalleX computations are split-phase — a request is a *chain* of
//! parcels, LCO triggers, and continuations, not a call stack — so when a
//! parcel dies or a tail-latency outlier appears, no stack trace exists to
//! explain it. This module supplies the missing causality:
//!
//! * a **64-bit trace id** rides in the parcel header (gated on
//!   [`px_wire::parcel_flags::HAS_TRACE`], zero bytes when absent) and is
//!   inherited by everything a traced parcel causes: spawned threads,
//!   LCO triggers and poisons, fault deliveries, migration chases,
//!   balancer sheds, and follow-on parcels — across ranks, because the id
//!   is part of the wire encoding;
//! * each locality records compact [`TraceEvent`]s into a fixed-size,
//!   lock-light [`TraceRing`] (one atomic cursor, per-slot mutexes that
//!   are only ever contended on wrap collisions);
//! * [`crate::runtime::Runtime::trace_dump`] merges the rings into a
//!   [`TraceDump`], which can be filtered by trace id, serialized, shipped
//!   between ranks, merged with another rank's dump, and ordered causally
//!   (in-rank by recording order; cross-rank by matching each network
//!   receive with its submit).
//!
//! Tracing is **off by default** and costs one `Option` branch per hook
//! when off; [`TraceConfig::sample_every`] enables it for one in N root
//! parcels so production runs can keep it always-on.

use crate::gid::LocalityId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tracing knobs ([`crate::runtime::Config::trace`]; off by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Assign a fresh trace id to one in this many untraced root parcels
    /// (`0` = tracing off, `1` = trace everything). Parcels that already
    /// carry a trace id — inherited or explicit — are always recorded.
    pub sample_every: u64,
    /// Events per locality ring; the oldest events are overwritten when
    /// full (counted in `trace_events_dropped`).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 0,
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// True when tracing is on (ids are sampled and events recorded).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }
}

/// What happened (the discriminant of a [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A parcel entered the runtime's send path (`aux` = dest locality).
    ParcelSend,
    /// A parcel began executing at its destination.
    ParcelDispatch,
    /// A parcel was forwarded after a stale AGAS resolution
    /// (`aux` = hops so far).
    ParcelForward,
    /// A parcel was killed (`aux` = [`crate::error::FaultCause`] wire
    /// code).
    ParcelKill,
    /// An LCO was triggered with a value (`gid` = the LCO).
    LcoTrigger,
    /// An LCO was poisoned with a fault (`aux` = cause wire code).
    LcoPoison,
    /// An LCO released a waiter (resumed thread or fired continuation).
    LcoRelease,
    /// A parallel process was cancelled (`gid` = the process).
    ProcessCancel,
    /// An object migrated between localities (`aux` = new home).
    Migrate,
    /// An AGAS chase hop: a resolution was stale and repaired
    /// (`aux` = the corrected locality).
    Chase,
    /// The balancer shed queued work to a less-loaded peer
    /// (`aux` = the receiving locality).
    BalanceShed,
    /// The transport accepted a traced message for a peer
    /// (`aux` = destination rank).
    NetSubmit,
    /// The transport received a traced message from a peer
    /// (`aux` = source rank).
    NetRecv,
    /// The transport reconnected to a peer; queued traced messages will
    /// be resent (`aux` = peer rank).
    NetReconnect,
    /// The transport declared a traced message undeliverable
    /// (`aux` = peer rank).
    NetFault,
}

impl TraceEventKind {
    /// Short lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::ParcelSend => "parcel-send",
            TraceEventKind::ParcelDispatch => "parcel-dispatch",
            TraceEventKind::ParcelForward => "parcel-forward",
            TraceEventKind::ParcelKill => "parcel-kill",
            TraceEventKind::LcoTrigger => "lco-trigger",
            TraceEventKind::LcoPoison => "lco-poison",
            TraceEventKind::LcoRelease => "lco-release",
            TraceEventKind::ProcessCancel => "process-cancel",
            TraceEventKind::Migrate => "migrate",
            TraceEventKind::Chase => "chase",
            TraceEventKind::BalanceShed => "balance-shed",
            TraceEventKind::NetSubmit => "net-submit",
            TraceEventKind::NetRecv => "net-recv",
            TraceEventKind::NetReconnect => "net-reconnect",
            TraceEventKind::NetFault => "net-fault",
        }
    }
}

/// One recorded event. Compact and `Copy`: six words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Subject gid (parcel dest, LCO, or process; `0` if not applicable).
    pub gid: u64,
    /// Kind-specific detail: fault-cause wire code, peer rank, hop count.
    pub aux: u64,
    /// Monotonic nanoseconds since the recording runtime's trace epoch.
    /// Comparable within one OS process only — cross-rank ordering uses
    /// causal matching, not clocks.
    pub at_ns: u64,
    /// Recording-order sequence number within the ring (ties on `at_ns`).
    pub seq: u64,
    /// Recording locality.
    pub locality: u16,
    /// Recording rank (one causality domain per OS process): events with
    /// equal `domain` are totally ordered by `seq`; events across domains
    /// only by send/recv matching.
    pub domain: u16,
}

/// Fixed-size, lock-light per-locality event ring.
///
/// Writers claim a slot with one `fetch_add` on the cursor and write it
/// under a per-slot mutex — uncontended unless two writers collide on the
/// same slot a full ring apart. Readers snapshot by locking slots one at
/// a time; a torn read is impossible and a concurrent writer at worst
/// replaces an old event with a newer one.
pub struct TraceRing {
    locality: u16,
    domain: u16,
    epoch: Instant,
    cursor: AtomicU64,
    slots: Vec<parking_lot::Mutex<Option<TraceEvent>>>,
}

impl TraceRing {
    /// Build a ring of `capacity` slots for `locality` on rank `domain`,
    /// stamping timestamps relative to `epoch` (shared by every ring of
    /// one runtime so in-process timestamps are comparable).
    pub fn new(capacity: usize, locality: LocalityId, domain: u16, epoch: Instant) -> TraceRing {
        TraceRing {
            locality: locality.0,
            domain,
            epoch,
            cursor: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| parking_lot::Mutex::new(None))
                .collect(),
        }
    }

    /// Record one event under `trace`. Returns `true` when an older event
    /// was overwritten (the ring wrapped).
    pub fn record(&self, trace: u64, kind: TraceEventKind, gid: u64, aux: u64) -> bool {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            trace,
            kind,
            gid,
            aux,
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            seq,
            locality: self.locality,
            domain: self.domain,
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        self.slots[slot].lock().replace(ev).is_some()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Copy out the surviving events, in recording order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.slots.iter().filter_map(|s| *s.lock()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// A merged, orderable set of trace events — what
/// [`crate::runtime::Runtime::trace_dump`] returns. Serializable so one
/// rank's slice can be shipped to another (e.g. over a parcel) and merged
/// into a cross-rank replay.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceDump {
    /// The events, causally ordered (see [`TraceDump::order_causally`]).
    pub events: Vec<TraceEvent>,
}

impl TraceDump {
    /// Build from raw events (orders them causally).
    pub fn new(events: Vec<TraceEvent>) -> TraceDump {
        let mut d = TraceDump { events };
        d.order_causally();
        d
    }

    /// The distinct trace ids present, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Only the events of `trace`, causally ordered.
    pub fn filter(&self, trace: u64) -> TraceDump {
        TraceDump {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.trace == trace)
                .collect(),
        }
    }

    /// Merge with another rank's dump and re-order causally.
    pub fn merge(mut self, other: TraceDump) -> TraceDump {
        self.events.extend(other.events);
        self.order_causally();
        self
    }

    /// Order events causally: within a domain (one OS process) by
    /// recording order; across domains, a [`TraceEventKind::NetRecv`] of
    /// trace `t` from rank `r` is placed after a matching
    /// [`TraceEventKind::NetSubmit`] of `t` sent from `r` — clocks are
    /// never compared across domains. If ring overwrites leave a receive
    /// unmatched, the ordering degrades gracefully to timestamp order for
    /// the stuck fronts rather than stalling.
    pub fn order_causally(&mut self) {
        // Per-domain queues in recording order.
        let mut domains: HashMap<u16, Vec<TraceEvent>> = HashMap::new();
        for e in self.events.drain(..) {
            domains.entry(e.domain).or_default().push(e);
        }
        let mut queues: Vec<(Vec<TraceEvent>, usize)> = domains
            .into_values()
            .map(|mut v| {
                v.sort_by_key(|e| e.seq);
                (v, 0usize)
            })
            .collect();
        queues.sort_by_key(|(v, _)| v.first().map(|e| e.domain).unwrap_or(0));
        // Emitted-submit minus emitted-recv counts, keyed by
        // (trace, from-rank, to-rank).
        let mut in_flight: HashMap<(u64, u64, u64), i64> = HashMap::new();
        let mut out = Vec::with_capacity(queues.iter().map(|(v, _)| v.len()).sum());
        loop {
            let mut best: Option<usize> = None;
            let mut fallback: Option<usize> = None;
            for (qi, (q, at)) in queues.iter().enumerate() {
                let Some(e) = q.get(*at) else { continue };
                let enabled = match e.kind {
                    TraceEventKind::NetRecv => in_flight
                        .get(&(e.trace, e.aux, e.domain as u64))
                        .is_some_and(|n| *n > 0),
                    _ => true,
                };
                let better = |cur: Option<usize>| {
                    cur.is_none_or(|c| {
                        let (cq, cat) = &queues[c];
                        let ce = cq[*cat];
                        (e.at_ns, e.domain, e.seq) < (ce.at_ns, ce.domain, ce.seq)
                    })
                };
                if enabled && better(best) {
                    best = Some(qi);
                }
                if better(fallback) {
                    fallback = Some(qi);
                }
            }
            // No enabled front means an unmatched receive (its submit was
            // overwritten): make progress on the earliest front anyway.
            let Some(pick) = best.or(fallback) else { break };
            let (q, at) = &mut queues[pick];
            let e = q[*at];
            *at += 1;
            match e.kind {
                TraceEventKind::NetSubmit => {
                    *in_flight
                        .entry((e.trace, e.domain as u64, e.aux))
                        .or_insert(0) += 1;
                }
                TraceEventKind::NetRecv => {
                    *in_flight
                        .entry((e.trace, e.aux, e.domain as u64))
                        .or_insert(0) -= 1;
                }
                _ => {}
            }
            out.push(e);
        }
        self.events = out;
    }

    /// Render a human-readable timeline, one event per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(
                s,
                "  [rank{} L{} +{:>9.1}us] {:<15} trace={:#018x} gid={:#x} aux={}",
                e.domain,
                e.locality,
                e.at_ns as f64 / 1e3,
                e.kind.label(),
                e.trace,
                e.gid,
                e.aux,
            );
        }
        s
    }
}

/// Runtime-wide trace state: the sampler and the id allocator.
pub(crate) struct TraceState {
    /// `Config::trace.sample_every` (non-zero: tracing on).
    sample_every: u64,
    /// Untraced root parcels seen by the sampler.
    seen: AtomicU64,
    /// Ids handed out (the low bits of the next id).
    next: AtomicU64,
    /// This rank, baked into the id's high bits so ids never collide
    /// across ranks without coordination.
    domain: u16,
}

impl TraceState {
    pub(crate) fn new(sample_every: u64, domain: u16) -> TraceState {
        TraceState {
            sample_every,
            seen: AtomicU64::new(0),
            next: AtomicU64::new(0),
            domain,
        }
    }

    /// Sample one untraced root parcel: `Some(fresh id)` for one in
    /// `sample_every`, `None` otherwise.
    pub(crate) fn maybe_sample(&self) -> Option<u64> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.sample_every) {
            Some(self.fresh_id())
        } else {
            None
        }
    }

    /// Allocate a fresh, never-zero trace id unique to this rank:
    /// `(rank + 1) << 48 | counter`.
    pub(crate) fn fresh_id(&self) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        ((self.domain as u64 + 1) << 48) | (seq & 0xffff_ffff_ffff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, kind: TraceEventKind, domain: u16, seq: u64, at_ns: u64) -> TraceEvent {
        TraceEvent {
            trace,
            kind,
            gid: 0,
            aux: 0,
            at_ns,
            seq,
            locality: domain,
            domain,
        }
    }

    #[test]
    fn ring_records_and_wraps() {
        let r = TraceRing::new(4, LocalityId(2), 0, Instant::now());
        for i in 0..6u64 {
            let wrapped = r.record(7, TraceEventKind::ParcelSend, i, 0);
            assert_eq!(wrapped, i >= 4, "wrap starts at capacity");
        }
        assert_eq!(r.recorded(), 6);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "ring keeps the newest `capacity` events");
        // The survivors are the newest four, in recording order.
        assert_eq!(snap.iter().map(|e| e.gid).collect::<Vec<_>>(), [2, 3, 4, 5]);
        assert!(snap.iter().all(|e| e.locality == 2 && e.trace == 7));
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn zero_capacity_ring_degrades_to_one_slot() {
        let r = TraceRing::new(0, LocalityId(0), 0, Instant::now());
        r.record(1, TraceEventKind::ParcelSend, 0, 0);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn sampler_rate_and_id_uniqueness() {
        let s = TraceState::new(4, 3);
        let hits: Vec<Option<u64>> = (0..8).map(|_| s.maybe_sample()).collect();
        assert!(hits[0].is_some() && hits[4].is_some());
        assert_eq!(hits.iter().flatten().count(), 2);
        let a = hits[0].unwrap();
        let b = hits[4].unwrap();
        assert_ne!(a, b);
        assert_eq!(a >> 48, 4, "rank baked into the high bits");
        assert_ne!(a, 0, "ids are never zero");
        let off = TraceState::new(0, 0);
        assert!(off.maybe_sample().is_none());
    }

    #[test]
    fn dump_filter_and_ids() {
        let d = TraceDump::new(vec![
            ev(1, TraceEventKind::ParcelSend, 0, 0, 0),
            ev(2, TraceEventKind::ParcelSend, 0, 1, 1),
            ev(1, TraceEventKind::ParcelDispatch, 0, 2, 2),
        ]);
        assert_eq!(d.trace_ids(), [1, 2]);
        assert_eq!(d.filter(1).events.len(), 2);
        assert!(d.filter(9).events.is_empty());
        assert!(d.render().contains("parcel-dispatch"));
    }

    /// The acceptance shape: cross-rank order comes from send/recv
    /// matching, not from comparing clocks of different processes — here
    /// rank 1's clock reads *earlier* than rank 0's throughout, and the
    /// merged order is still send → recv → dispatch → fault → poison.
    #[test]
    fn cross_rank_merge_orders_causally_despite_skewed_clocks() {
        let t = 42;
        let rank0 = TraceDump {
            events: vec![
                ev(t, TraceEventKind::ParcelSend, 0, 0, 1000),
                {
                    let mut e = ev(t, TraceEventKind::NetSubmit, 0, 1, 1001);
                    e.aux = 1; // to rank 1
                    e
                },
                {
                    let mut e = ev(t, TraceEventKind::NetFault, 0, 2, 1002);
                    e.aux = 1;
                    e
                },
                ev(t, TraceEventKind::ParcelKill, 0, 3, 1003),
                ev(t, TraceEventKind::LcoPoison, 0, 4, 1004),
            ],
        };
        let rank1 = TraceDump {
            events: vec![
                {
                    // Skewed: rank 1's timestamps all predate rank 0's.
                    let mut e = ev(t, TraceEventKind::NetRecv, 1, 0, 10);
                    e.aux = 0; // from rank 0
                    e
                },
                ev(t, TraceEventKind::ParcelDispatch, 1, 1, 11),
            ],
        };
        let merged = rank0.merge(rank1);
        let kinds: Vec<TraceEventKind> = merged.events.iter().map(|e| e.kind).collect();
        let pos = |k: TraceEventKind| kinds.iter().position(|&x| x == k).unwrap();
        assert!(pos(TraceEventKind::NetSubmit) < pos(TraceEventKind::NetRecv));
        assert!(pos(TraceEventKind::NetRecv) < pos(TraceEventKind::ParcelDispatch));
        assert!(pos(TraceEventKind::ParcelKill) < pos(TraceEventKind::LcoPoison));
        assert_eq!(merged.events.len(), 7);
    }

    /// An unmatched receive (its submit overwritten by ring wrap) cannot
    /// stall the merge.
    #[test]
    fn unmatched_recv_still_makes_progress() {
        let mut recv = ev(5, TraceEventKind::NetRecv, 1, 0, 10);
        recv.aux = 0;
        let d = TraceDump::new(vec![recv, ev(5, TraceEventKind::ParcelDispatch, 1, 1, 11)]);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].kind, TraceEventKind::NetRecv);
    }
}
