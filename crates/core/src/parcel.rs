//! Parcels: message-driven computation with continuation specifiers.
//!
//! §2.2: "A parcel includes a destination virtual address of a remote
//! target object and an action specifier defining a task to be applied to
//! that object. Additional argument values can be carried by the parcel …
//! Parcels differ from other such constructs such as active messages in
//! that it also carries a **continuation specifier** that defines what
//! happens after the specified action is completed. This allows the locus
//! of control to migrate across the distributed system."
//!
//! A parcel therefore has four parts: destination, action, arguments, and
//! continuation. The continuation is a small program: a list of steps each
//! consuming the action's result value.

use crate::action::{ActionId, Value};
use crate::gid::{Gid, LocalityId};
use px_wire::{WireReader, WireWriter};
use serde::{Deserialize, Serialize};

/// One step of a continuation specifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContStep {
    /// Trigger an LCO with the result value (e.g. fill a future).
    SetLco(Gid),
    /// Send a further parcel: apply `action` to `target` with the result
    /// value as its (already encoded) argument. This is how the locus of
    /// control migrates: the computation keeps moving without returning.
    Call {
        /// Action applied next.
        action: ActionId,
        /// Target object of the follow-on parcel.
        target: Gid,
    },
    /// Contribute the result to a reduction LCO (adds rather than assigns).
    Contribute(Gid),
}

/// A continuation specifier: zero or more steps, each fed the result of
/// the parcel's action.
///
/// The empty continuation discards the result (fire-and-forget).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Continuation {
    /// Steps executed in order when the action completes.
    pub steps: Vec<ContStep>,
}

impl Continuation {
    /// The empty (fire-and-forget) continuation.
    #[inline]
    pub fn none() -> Continuation {
        Continuation { steps: Vec::new() }
    }

    /// Continuation that triggers a single LCO.
    #[inline]
    pub fn set(lco: Gid) -> Continuation {
        Continuation {
            steps: vec![ContStep::SetLco(lco)],
        }
    }

    /// Continuation that chains into another action (control migrates).
    #[inline]
    pub fn call(action: ActionId, target: Gid) -> Continuation {
        Continuation {
            steps: vec![ContStep::Call { action, target }],
        }
    }

    /// Continuation that contributes to a reduction LCO.
    #[inline]
    pub fn contribute(lco: Gid) -> Continuation {
        Continuation {
            steps: vec![ContStep::Contribute(lco)],
        }
    }

    /// Append a step, builder-style.
    pub fn then(mut self, step: ContStep) -> Continuation {
        self.steps.push(step);
        self
    }

    /// True when the continuation does nothing.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A parcel: the unit of inter-locality communication and of work-to-data
/// migration.
#[derive(Debug, Clone)]
pub struct Parcel {
    /// Destination object (resolved to a locality by the AGAS).
    pub dest: Gid,
    /// Action applied to the destination.
    pub action: ActionId,
    /// Encoded arguments.
    pub payload: Value,
    /// What happens with the action's result.
    pub cont: Continuation,
    /// Originating locality (provenance, used for AGAS cache-repair hints).
    pub src: LocalityId,
    /// Owning parallel process, if any: the spawned thread is accounted to
    /// this process for termination detection.
    pub process: Option<Gid>,
    /// Causal trace id, if this parcel is traced: every event it causes
    /// (dispatch, LCO trigger, fault, follow-on parcels) is recorded
    /// under this id so the request can be replayed end to end.
    pub trace: Option<u64>,
    /// Number of times this parcel has been forwarded after a stale AGAS
    /// resolution (each hop increments; bounded by the migration rate).
    pub hops: u8,
    /// Deliver into the destination's percolation staging buffer instead of
    /// the general run queue (the prestaging variant of parcels, §2.2:
    /// percolation "is a variation of parcels but used with hardware as the
    /// target").
    pub staged: bool,
}

impl Parcel {
    /// Construct a plain parcel.
    pub fn new(dest: Gid, action: ActionId, payload: Value, cont: Continuation) -> Parcel {
        Parcel {
            dest,
            action,
            payload,
            cont,
            src: LocalityId(0),
            process: None,
            trace: None,
            hops: 0,
            staged: false,
        }
    }

    /// Encode to wire bytes (header + continuation + payload).
    ///
    /// Hand-rolled framing rather than serde: this is the per-message hot
    /// path, and the continuation list is almost always 0 or 1 steps.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(40 + self.payload.len());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encode into a caller-provided buffer — the batched transport path,
    /// where parcels append directly to a per-destination
    /// [`px_wire::FrameBuf`] and no per-parcel `Vec` is allocated.
    pub fn encode_into(&self, w: &mut WireWriter) {
        use px_wire::parcel_flags as pf;
        w.put_u64(self.dest.0);
        w.put_u64(self.action.0);
        w.put_u16(self.src.0);
        w.put_u8(self.hops);
        // Flags byte (layout fixed in `px_wire::parcel_flags`). Optional
        // header fields are gated on flag bits — a pid-less parcel writes
        // no pid bytes at all, so parcels outside any process encode
        // bit-identically whether or not the process subsystem is in use.
        let mut flags = 0u8;
        if self.staged {
            flags |= pf::STAGED;
        }
        if self.payload.is_fault() {
            flags |= pf::FAULT;
        }
        if self.process.is_some() {
            flags |= pf::HAS_PID;
        }
        if self.trace.is_some() {
            flags |= pf::HAS_TRACE;
        }
        w.put_u8(flags);
        if let Some(g) = self.process {
            w.put_u64(g.0);
        }
        if let Some(t) = self.trace {
            w.put_u64(t);
        }
        w.put_varint(self.cont.steps.len() as u64);
        for step in &self.cont.steps {
            match step {
                ContStep::SetLco(g) => {
                    w.put_u8(0);
                    w.put_u64(g.0);
                }
                ContStep::Call { action, target } => {
                    w.put_u8(1);
                    w.put_u64(action.0);
                    w.put_u64(target.0);
                }
                ContStep::Contribute(g) => {
                    w.put_u8(2);
                    w.put_u64(g.0);
                }
            }
        }
        w.put_len_bytes(self.payload.bytes());
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Parcel, px_wire::WireError> {
        use px_wire::parcel_flags as pf;
        let mut r = WireReader::new(bytes);
        let dest = Gid(r.get_u64()?);
        let action = ActionId(r.get_u64()?);
        let src = LocalityId(r.get_u16()?);
        let hops = r.get_u8()?;
        let flags = r.get_u8()?;
        if flags & !pf::KNOWN != 0 {
            // A newer sender gated extra header bytes on a bit we don't
            // know: parsing the rest as continuation/payload would be
            // silent corruption — reject loudly instead.
            return Err(px_wire::WireError::Message(format!(
                "unknown parcel flag bits {:#04x}",
                flags & !pf::KNOWN
            )));
        }
        let staged = flags & pf::STAGED != 0;
        let payload_fault = flags & pf::FAULT != 0;
        let process = if flags & pf::HAS_PID != 0 {
            Some(Gid(r.get_u64()?))
        } else {
            None
        };
        let trace = if flags & pf::HAS_TRACE != 0 {
            Some(r.get_u64()?)
        } else {
            None
        };
        let n = r.get_varint()? as usize;
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.get_u8()?;
            steps.push(match tag {
                0 => ContStep::SetLco(Gid(r.get_u64()?)),
                1 => ContStep::Call {
                    action: ActionId(r.get_u64()?),
                    target: Gid(r.get_u64()?),
                },
                _ => ContStep::Contribute(Gid(r.get_u64()?)),
            });
        }
        let payload = Value::from_bytes_flagged(r.get_len_bytes()?.to_vec(), payload_fault);
        Ok(Parcel {
            dest,
            action,
            payload,
            cont: Continuation { steps },
            src,
            process,
            trace,
            hops,
            staged,
        })
    }

    /// Read the trace id out of already-encoded parcel bytes without a
    /// full decode — the transport-side trace hooks peek at in-flight
    /// records and must not pay a decode per parcel. Returns `None` for
    /// untraced or malformed bytes.
    pub fn peek_trace(bytes: &[u8]) -> Option<u64> {
        use px_wire::parcel_flags as pf;
        let flags = *bytes.get(19)?;
        if flags & pf::HAS_TRACE == 0 {
            return None;
        }
        let at = if flags & pf::HAS_PID != 0 { 28 } else { 20 };
        Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
    }

    /// Wire size in bytes (without re-encoding).
    pub fn wire_size(&self) -> usize {
        let mut n = 8 + 8 + 2 + 1 + 1; // dest + action + src + hops + flags
        if self.process.is_some() {
            n += 8; // owning pid, present only when flagged
        }
        if self.trace.is_some() {
            n += 8; // trace id, present only when flagged
        }
        n += varint_len(self.steps_len() as u64);
        for step in &self.cont.steps {
            n += match step {
                ContStep::SetLco(_) | ContStep::Contribute(_) => 1 + 8,
                ContStep::Call { .. } => 1 + 16,
            };
        }
        n += varint_len(self.payload.len() as u64) + self.payload.len();
        n
    }

    #[inline]
    fn steps_len(&self) -> usize {
        self.cont.steps.len()
    }
}

#[inline]
fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gid::GidKind;

    fn sample_parcel() -> Parcel {
        let mut p = Parcel::new(
            Gid::new(LocalityId(3), GidKind::Data, 42),
            ActionId::of("test/action"),
            Value::encode(&vec![1u64, 2, 3]).unwrap(),
            Continuation::set(Gid::new(LocalityId(1), GidKind::Lco, 7))
                .then(ContStep::Call {
                    action: ActionId::of("test/next"),
                    target: Gid::new(LocalityId(2), GidKind::Data, 9),
                })
                .then(ContStep::Contribute(Gid::new(
                    LocalityId(0),
                    GidKind::Lco,
                    99,
                ))),
        );
        p.src = LocalityId(5);
        p.process = Some(Gid::new(LocalityId(0), GidKind::Process, 17));
        p.trace = Some(0xfeed_beef_cafe_f00d);
        p.hops = 2;
        p.staged = true;
        p
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample_parcel();
        let bytes = p.encode();
        let q = Parcel::decode(&bytes).unwrap();
        assert_eq!(q.dest, p.dest);
        assert_eq!(q.action, p.action);
        assert_eq!(q.src, p.src);
        assert_eq!(q.hops, p.hops);
        assert_eq!(q.staged, p.staged);
        assert_eq!(q.process, p.process);
        assert_eq!(q.trace, p.trace);
        assert_eq!(q.cont, p.cont);
        assert_eq!(q.payload.bytes(), p.payload.bytes());
    }

    #[test]
    fn encode_into_matches_encode() {
        let p = sample_parcel();
        let mut w = WireWriter::with_capacity(0);
        w.put_u8(0xaa); // pre-existing content must be preserved
        p.encode_into(&mut w);
        assert_eq!(&w.as_slice()[1..], p.encode().as_slice());
    }

    #[test]
    fn wire_size_matches_encoding() {
        let p = sample_parcel();
        assert_eq!(p.wire_size(), p.encode().len());
        let q = Parcel::new(
            Gid::locality_root(LocalityId(0)),
            ActionId::of("a"),
            Value::unit(),
            Continuation::none(),
        );
        assert_eq!(q.wire_size(), q.encode().len());
    }

    #[test]
    fn minimal_parcel_roundtrip() {
        let p = Parcel::new(
            Gid::locality_root(LocalityId(0)),
            ActionId::of("noop"),
            Value::unit(),
            Continuation::none(),
        );
        let q = Parcel::decode(&p.encode()).unwrap();
        assert!(q.cont.is_none());
        assert!(q.payload.is_empty());
        assert_eq!(q.process, None);
        assert_eq!(q.trace, None);
    }

    #[test]
    fn fault_payload_survives_the_wire() {
        use crate::error::{Fault, FaultCause};
        let f = Fault::new(
            FaultCause::HopCap,
            ActionId::of("test/action"),
            Gid::new(LocalityId(3), GidKind::Data, 42),
            "hop budget exhausted",
        );
        let p = Parcel::new(
            Gid::new(LocalityId(1), GidKind::Lco, 7),
            crate::sched::sys::LCO_SET,
            Value::error(&f),
            Continuation::none(),
        );
        let q = Parcel::decode(&p.encode()).unwrap();
        assert!(q.payload.is_fault());
        assert_eq!(q.payload.fault().unwrap(), f);
        assert!(!q.staged, "fault bit must not bleed into staged");
        assert_eq!(p.wire_size(), p.encode().len());
    }

    /// Acceptance pin: a pid-less parcel's bytes are exactly the
    /// documented header layout with *no* pid field — attaching a process
    /// to other parcels cannot perturb parcels outside any process.
    #[test]
    fn pidless_parcels_are_bit_identical_to_the_fixed_layout() {
        let mut p = Parcel::new(
            Gid::new(LocalityId(3), GidKind::Data, 42),
            ActionId::of("test/action"),
            Value::from_bytes(vec![0xde, 0xad]),
            Continuation::set(Gid::new(LocalityId(1), GidKind::Lco, 7)),
        );
        p.src = LocalityId(5);
        p.hops = 2;
        p.staged = true;
        let mut expected = Vec::new();
        expected.extend_from_slice(&p.dest.0.to_le_bytes());
        expected.extend_from_slice(&p.action.0.to_le_bytes());
        expected.extend_from_slice(&5u16.to_le_bytes());
        expected.push(2); // hops
        expected.push(px_wire::parcel_flags::STAGED); // flags: staged only
        expected.push(1); // one continuation step
        expected.push(0); // SetLco tag
        expected.extend_from_slice(&Gid::new(LocalityId(1), GidKind::Lco, 7).0.to_le_bytes());
        expected.push(2); // payload length varint
        expected.extend_from_slice(&[0xde, 0xad]);
        assert_eq!(p.encode(), expected, "pid-less layout drifted");

        // Attaching a pid changes exactly two things: the HAS_PID flag
        // bit and eight pid bytes after the flags byte.
        let pid = Gid::new(LocalityId(0), GidKind::Process, 17);
        let mut q = p.clone();
        q.process = Some(pid);
        let qb = q.encode();
        assert_eq!(qb.len(), expected.len() + 8);
        assert_eq!(qb[19], expected[19] | px_wire::parcel_flags::HAS_PID);
        assert_eq!(&qb[20..28], &pid.0.to_le_bytes());
        assert_eq!(&qb[..19], &expected[..19]);
        assert_eq!(&qb[28..], &expected[20..]);

        // Attaching a trace id changes exactly two things: the HAS_TRACE
        // flag bit and eight trace bytes after the flags byte — untraced
        // parcels stay bit-identical whether or not tracing is compiled
        // in, configured, or active elsewhere in the run.
        let trace = 0x0123_4567_89ab_cdefu64;
        let mut t = p.clone();
        t.trace = Some(trace);
        let tb = t.encode();
        assert_eq!(tb.len(), expected.len() + 8);
        assert_eq!(tb[19], expected[19] | px_wire::parcel_flags::HAS_TRACE);
        assert_eq!(&tb[20..28], &trace.to_le_bytes());
        assert_eq!(&tb[..19], &expected[..19]);
        assert_eq!(&tb[28..], &expected[20..]);

        // With both optional fields present the pid comes first, then the
        // trace id.
        let mut b = p.clone();
        b.process = Some(pid);
        b.trace = Some(trace);
        let bb = b.encode();
        assert_eq!(bb.len(), expected.len() + 16);
        assert_eq!(
            bb[19],
            expected[19] | px_wire::parcel_flags::HAS_PID | px_wire::parcel_flags::HAS_TRACE
        );
        assert_eq!(&bb[20..28], &pid.0.to_le_bytes());
        assert_eq!(&bb[28..36], &trace.to_le_bytes());
        assert_eq!(&bb[36..], &expected[20..]);
    }

    #[test]
    fn peek_trace_reads_without_decoding() {
        let p = sample_parcel(); // pid + trace both present
        assert_eq!(Parcel::peek_trace(&p.encode()), p.trace);
        let mut q = sample_parcel();
        q.process = None;
        assert_eq!(Parcel::peek_trace(&q.encode()), q.trace);
        q.trace = None;
        assert_eq!(Parcel::peek_trace(&q.encode()), None);
        assert_eq!(Parcel::peek_trace(&[]), None);
        assert_eq!(Parcel::peek_trace(&q.encode()[..10]), None);
    }

    #[test]
    fn truncated_parcel_rejected() {
        let bytes = sample_parcel().encode();
        assert!(Parcel::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn continuation_builders() {
        assert!(Continuation::none().is_none());
        let c = Continuation::set(Gid(1));
        assert_eq!(c.steps.len(), 1);
        let c = c.then(ContStep::Contribute(Gid(2)));
        assert_eq!(c.steps.len(), 2);
    }
}
