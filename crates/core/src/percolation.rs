//! Percolation: prestaging work and data at precious resources (§2.2).
//!
//! "ParalleX provides a mechanism for moving work (both state and task
//! descriptions) to unused parts of the system through a mechanism
//! referred to as 'Percolation' which was devised as a latency hiding
//! mechanism as well. For a precious resource, overhead and latency can
//! greatly degrade system efficiency. Percolation … employs ancillary
//! mechanisms to prestage data and tasks in high speed memory near the
//! high cost compute elements when a task is to be performed. This is a
//! variation of parcels but used with hardware as the target rather than
//! abstract data objects. Prefetching is also a form of prestaging but
//! performed by the compute element itself, thus imposing the overhead
//! burden, and possibly the impact of latency, on it as well."
//!
//! Mechanically, a percolated task is a parcel with the `staged` bit set:
//! it is addressed to the destination locality's **staging buffer** (a
//! hardware name) and carries everything the task needs — action, target,
//! and the data itself in the payload. The destination's workers drain the
//! staging buffer at top priority when the locality is configured as a
//! *precious resource* (`Config::accelerators`), so the expensive unit
//! never waits on a remote fetch — the ancillary resources (the sender)
//! paid the marshalling overhead instead. The three-way comparison against
//! *demand fetch* (the accelerator suspends on remote reads) and
//! *consumer prefetch* (the accelerator spends its own cycles issuing
//! prefetches) is experiment E4.

use crate::action::{Action, Value};
use crate::error::PxResult;
use crate::gid::{Gid, LocalityId};
use crate::parcel::{Continuation, Parcel};
use crate::runtime::{Ctx, Runtime, RuntimeInner};
use std::sync::Arc;

/// Send a percolated task: action `A` on `target` with `args`, prestaged
/// into `dest`'s staging buffer. The payload travels with the task, so
/// execution is purely local at the destination.
///
/// # Failure semantics
///
/// A percolated parcel dies like any other — unknown action, panicking
/// handler, handler error — and its death is loud: the fault is delivered
/// to `cont`, so a driver waiting on the continuation's future observes
/// [`crate::error::PxError::Fault`] instead of hanging while the
/// accelerator's staging buffer silently swallows the task.
pub fn percolate<A: Action>(
    rt: &Arc<RuntimeInner>,
    from: LocalityId,
    dest: LocalityId,
    target: Gid,
    args: &A::Args,
    cont: Continuation,
) -> PxResult<()> {
    let mut p = Parcel::new(target, A::id(), Value::encode(args)?, cont);
    p.staged = true;
    // Route explicitly to the staging destination: percolation targets
    // *hardware* (the locality), not the object's home.
    rt.route_parcel(from, dest, p);
    Ok(())
}

/// [`percolate`] from an external driver thread.
pub fn percolate_from_driver<A: Action>(
    rt: &Runtime,
    dest: LocalityId,
    target: Gid,
    args: &A::Args,
    cont: Continuation,
) -> PxResult<()> {
    percolate::<A>(rt.inner(), LocalityId(0), dest, target, args, cont)
}

/// [`percolate`] from inside a PX-thread.
pub fn percolate_from_ctx<A: Action>(
    ctx: &mut Ctx<'_>,
    dest: LocalityId,
    target: Gid,
    args: &A::Args,
    cont: Continuation,
) -> PxResult<()> {
    let here = ctx.here();
    percolate::<A>(ctx.rt_inner(), here, dest, target, args, cont)
}

/// Number of tasks currently waiting in a locality's staging buffer.
pub fn staged_pending(rt: &Runtime, loc: LocalityId) -> usize {
    rt.inner().locality(loc).staging.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Percolation is exercised end-to-end in the runtime integration
    // tests (`tests/percolation.rs`); here we only check parcel shaping.
    #[test]
    fn staged_bit_set() {
        let p = {
            let mut p = Parcel::new(
                Gid::locality_root(LocalityId(1)),
                crate::action::ActionId::of("x"),
                Value::unit(),
                Continuation::none(),
            );
            p.staged = true;
            p
        };
        let q = Parcel::decode(&p.encode()).unwrap();
        assert!(q.staged);
    }
}
