//! Global identifiers: the ParalleX global name space.
//!
//! §2.2: "it allows any first class object to be remotely identified
//! efficiently through a hierarchical naming structure. In ParalleX,
//! actions as well as data are first class entities … Also, hardware
//! resources have their own names (typed)."
//!
//! A [`Gid`] packs a hierarchical name into 64 bits:
//!
//! ```text
//!   63      48 47    44 43                                    0
//!  +----------+--------+---------------------------------------+
//!  | locality |  kind  |              sequence                 |
//!  +----------+--------+---------------------------------------+
//! ```
//!
//! * `locality` — the locality at which the object was *born*. Resolution
//!   defaults to the birthplace; the AGAS directory overrides it for
//!   objects that have migrated (see [`crate::agas`]).
//! * `kind` — the typed-name tag ([`GidKind`]): data, LCO, process,
//!   hardware resource, … Hardware resources being nameable "to a limited
//!   degree by the software" is what lets percolation target a locality's
//!   staging buffer by name.
//! * `sequence` — per-locality allocation counter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Index of a locality (the paper's "local physical domain").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalityId(pub u16);

impl fmt::Display for LocalityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Typed-name tag carried in every [`Gid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum GidKind {
    /// Plain data object in a locality's store.
    Data = 0,
    /// Local control object (future, dataflow, gate, …).
    Lco = 1,
    /// Parallel process (spans localities).
    Process = 2,
    /// Echo replica-tree node.
    Echo = 3,
    /// Hardware resource (locality root, staging buffer, …).
    Hardware = 4,
    /// Reserved for user extensions.
    User = 5,
}

impl GidKind {
    #[inline]
    fn from_bits(bits: u64) -> GidKind {
        match bits {
            0 => GidKind::Data,
            1 => GidKind::Lco,
            2 => GidKind::Process,
            3 => GidKind::Echo,
            4 => GidKind::Hardware,
            _ => GidKind::User,
        }
    }
}

const LOCALITY_SHIFT: u64 = 48;
const KIND_SHIFT: u64 = 44;
const KIND_MASK: u64 = 0xf;
const SEQ_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// A 64-bit global identifier in the ParalleX name space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gid(pub u64);

impl Gid {
    /// Compose a GID from its fields.
    #[inline]
    pub fn new(locality: LocalityId, kind: GidKind, seq: u64) -> Gid {
        debug_assert!(seq <= SEQ_MASK, "sequence overflow");
        Gid((u64::from(locality.0) << LOCALITY_SHIFT)
            | ((kind as u64 & KIND_MASK) << KIND_SHIFT)
            | (seq & SEQ_MASK))
    }

    /// The locality where the object was created (its default home).
    #[inline]
    pub fn birthplace(self) -> LocalityId {
        LocalityId((self.0 >> LOCALITY_SHIFT) as u16)
    }

    /// The typed-name tag.
    #[inline]
    pub fn kind(self) -> GidKind {
        GidKind::from_bits((self.0 >> KIND_SHIFT) & KIND_MASK)
    }

    /// The per-locality sequence number.
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 & SEQ_MASK
    }

    /// The distinguished hardware name for a locality itself. Parcels whose
    /// target is only "somewhere on locality L" (e.g. spawning fresh work)
    /// address the locality root.
    #[inline]
    pub fn locality_root(locality: LocalityId) -> Gid {
        Gid::new(locality, GidKind::Hardware, 0)
    }

    /// The hardware name of a locality's percolation staging buffer.
    #[inline]
    pub fn staging_buffer(locality: LocalityId) -> Gid {
        Gid::new(locality, GidKind::Hardware, 1)
    }

    /// True for hardware-kind names (not stored in the object store).
    #[inline]
    pub fn is_hardware(self) -> bool {
        self.kind() == GidKind::Hardware
    }
}

impl fmt::Debug for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:?}.{}", self.birthplace(), self.kind(), self.seq())
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Per-locality GID allocator. Sequence numbers are dense per kind-agnostic
/// counter; kinds share one sequence space for simplicity.
#[derive(Debug)]
pub struct GidAllocator {
    locality: LocalityId,
    // Starts at 16: sequences 0–15 are reserved hardware names.
    next: AtomicU64,
}

impl GidAllocator {
    /// Allocator for `locality`.
    pub fn new(locality: LocalityId) -> Self {
        Self {
            locality,
            next: AtomicU64::new(16),
        }
    }

    /// Allocate a fresh GID of `kind`.
    #[inline]
    pub fn alloc(&self, kind: GidKind) -> Gid {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(seq <= SEQ_MASK, "GID sequence space exhausted");
        Gid::new(self.locality, kind, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let g = Gid::new(LocalityId(513), GidKind::Lco, 0xabc_def0_1234);
        assert_eq!(g.birthplace(), LocalityId(513));
        assert_eq!(g.kind(), GidKind::Lco);
        assert_eq!(g.seq(), 0xabc_def0_1234);
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [
            GidKind::Data,
            GidKind::Lco,
            GidKind::Process,
            GidKind::Echo,
            GidKind::Hardware,
            GidKind::User,
        ] {
            let g = Gid::new(LocalityId(7), kind, 99);
            assert_eq!(g.kind(), kind, "{kind:?}");
        }
    }

    #[test]
    fn max_fields() {
        let g = Gid::new(LocalityId(u16::MAX), GidKind::User, SEQ_MASK);
        assert_eq!(g.birthplace(), LocalityId(u16::MAX));
        assert_eq!(g.seq(), SEQ_MASK);
    }

    #[test]
    fn allocator_is_unique_and_reserves_hardware_space() {
        let a = GidAllocator::new(LocalityId(3));
        let g1 = a.alloc(GidKind::Data);
        let g2 = a.alloc(GidKind::Lco);
        assert_ne!(g1.seq(), g2.seq());
        assert!(g1.seq() >= 16, "0..16 reserved for hardware names");
        assert_eq!(g1.birthplace(), LocalityId(3));
    }

    #[test]
    fn hardware_names_distinct() {
        let root = Gid::locality_root(LocalityId(2));
        let stage = Gid::staging_buffer(LocalityId(2));
        assert_ne!(root, stage);
        assert!(root.is_hardware());
        assert!(stage.is_hardware());
    }

    #[test]
    fn allocator_concurrent_uniqueness() {
        use std::sync::Arc;
        let a = Arc::new(GidAllocator::new(LocalityId(0)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|_| a.alloc(GidKind::Data).0)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "duplicate GIDs allocated");
    }

    #[test]
    fn display_is_structured() {
        let g = Gid::new(LocalityId(1), GidKind::Process, 20);
        assert_eq!(format!("{g}"), "L1.Process.20");
    }
}
