//! Actions: the first-class units of work carried by parcels.
//!
//! §2.2: a parcel carries "an action specifier defining a task to be
//! applied to that object". Actions are *named* (they live in the global
//! name space alongside data), and the name is hashed into a stable
//! [`ActionId`] so both sides of a wire agree on dispatch without
//! exchanging strings.

use crate::error::{PxError, PxResult};
use crate::fxmap::{fnv1a, FxHashMap};
use crate::gid::Gid;
use crate::runtime::Ctx;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::sync::Arc;

/// Stable identifier of an action: FNV-1a of its registered name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ActionId(pub u64);

impl ActionId {
    /// Derive the id for an action name.
    #[inline]
    pub const fn of(name: &str) -> ActionId {
        ActionId(fnv1a(name.as_bytes()))
    }
}

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ActionId({:#018x})", self.0)
    }
}

/// An immutable, cheaply-cloneable serialized value (parcel payloads, LCO
/// results). Cloning is an `Arc` bump, so one trigger can feed many
/// waiting continuations without copying bytes.
///
/// A value is either an ordinary payload or a **fault** — the encoded
/// cause of death of a parcel, delivered along its continuation chain
/// (see [`crate::error::Fault`]). Fault-ness is a flag beside the bytes,
/// not inside them, so an ordinary payload can never be mistaken for a
/// fault; the parcel header preserves the flag across the wire.
#[derive(Clone, Default)]
pub struct Value {
    bytes: Arc<[u8]>,
    fault: bool,
}

impl Value {
    /// The unit value (zero bytes).
    pub fn unit() -> Value {
        Value {
            bytes: Arc::from(&[][..]),
            fault: false,
        }
    }

    /// Encode a serializable value.
    pub fn encode<T: Serialize>(v: &T) -> PxResult<Value> {
        Ok(Value {
            bytes: px_wire::to_bytes(v)?.into(),
            fault: false,
        })
    }

    /// Wrap already-encoded bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Value {
        Value {
            bytes: bytes.into(),
            fault: false,
        }
    }

    /// Wrap already-encoded bytes with an explicit fault flag (the parcel
    /// wire-decode path, which carries the flag in the header).
    pub(crate) fn from_bytes_flagged(bytes: Vec<u8>, fault: bool) -> Value {
        Value {
            bytes: bytes.into(),
            fault,
        }
    }

    /// Build a fault value carrying `f` (see [`crate::error::Fault`]).
    pub fn error(f: &crate::error::Fault) -> Value {
        Value {
            bytes: f.to_wire().encode().into(),
            fault: true,
        }
    }

    /// True when this value is a fault rather than a payload.
    #[inline]
    pub fn is_fault(&self) -> bool {
        self.fault
    }

    /// The fault carried by this value, if it is one. Corrupt fault bytes
    /// still yield a fault (cause [`crate::error::FaultCause::Decode`]) —
    /// fault-ness comes from the flag, and a flagged value must never
    /// decode as a success.
    pub fn fault(&self) -> Option<crate::error::Fault> {
        if !self.fault {
            return None;
        }
        Some(match px_wire::WireFault::decode(&self.bytes) {
            Ok(w) => crate::error::Fault::from_wire(&w),
            Err(e) => crate::error::Fault::new(
                crate::error::FaultCause::Decode,
                ActionId(0),
                crate::gid::Gid(0),
                format!("corrupt fault payload: {e}"),
            ),
        })
    }

    /// Decode into a concrete type. The type must match what was encoded —
    /// the wire format is positional, not self-describing. A fault value
    /// never decodes: it surfaces as [`PxError::Fault`], so typed waiters
    /// observe upstream deaths as errors.
    pub fn decode<T: DeserializeOwned>(&self) -> PxResult<T> {
        if let Some(f) = self.fault() {
            return Err(PxError::Fault(f));
        }
        Ok(px_wire::from_bytes(&self.bytes)?)
    }

    /// Raw encoded bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the value has no bytes (the unit value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fault {
            write!(f, "Value(fault, {} bytes)", self.bytes.len())
        } else {
            write!(f, "Value({} bytes)", self.bytes.len())
        }
    }
}

/// A typed action. Implement this trait and register the type with
/// [`crate::runtime::RuntimeBuilder::register`]; parcels then dispatch to
/// [`Action::execute`] on the destination locality.
///
/// `execute` runs inside an ephemeral PX-thread. It must not block: remote
/// interaction is expressed by sending further parcels or suspending via
/// LCO continuations on the [`Ctx`].
pub trait Action: 'static {
    /// Globally unique action name (hierarchical by convention,
    /// e.g. `"nbody/compute_force"`).
    const NAME: &'static str;

    /// Argument type carried in the parcel payload.
    type Args: Serialize + DeserializeOwned + Send + 'static;

    /// Result type fed to the parcel's continuation (use `()` for none).
    type Out: Serialize + DeserializeOwned + Send + 'static;

    /// Apply the action to `target` with `args`.
    fn execute(ctx: &mut Ctx<'_>, target: Gid, args: Self::Args) -> Self::Out;

    /// The action's stable id (derived from [`Action::NAME`]).
    #[inline]
    fn id() -> ActionId {
        ActionId::of(Self::NAME)
    }
}

/// Type-erased handler stored in the registry.
pub type ErasedHandler =
    Arc<dyn Fn(&mut Ctx<'_>, Gid, &[u8]) -> PxResult<Value> + Send + Sync + 'static>;

/// Immutable action dispatch table, frozen when the runtime is built so the
/// parcel fast path does no locking.
pub struct ActionRegistry {
    handlers: FxHashMap<u64, (&'static str, ErasedHandler)>,
}

impl fmt::Debug for ActionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActionRegistry")
            .field("actions", &self.handlers.len())
            .finish()
    }
}

impl ActionRegistry {
    pub(crate) fn new() -> Self {
        Self {
            handlers: FxHashMap::default(),
        }
    }

    /// Register a typed action. Fails on duplicate names (or an FNV
    /// collision between two distinct names, which is treated the same).
    pub(crate) fn register<A: Action>(&mut self) -> PxResult<()> {
        let id = A::id();
        let handler: ErasedHandler = Arc::new(|ctx, target, payload| {
            let args: A::Args = px_wire::from_bytes(payload)?;
            let out = A::execute(ctx, target, args);
            Value::encode(&out)
        });
        if self.handlers.insert(id.0, (A::NAME, handler)).is_some() {
            return Err(PxError::DuplicateAction(A::NAME));
        }
        Ok(())
    }

    /// Look up a handler by id.
    #[inline]
    pub fn get(&self, id: ActionId) -> PxResult<&ErasedHandler> {
        self.handlers
            .get(&id.0)
            .map(|(_, h)| h)
            .ok_or(PxError::UnknownAction(id))
    }

    /// Human-readable name for diagnostics.
    pub fn name_of(&self, id: ActionId) -> Option<&'static str> {
        self.handlers.get(&id.0).map(|(n, _)| *n)
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// True when no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_ids_are_stable_and_distinct() {
        let a = ActionId::of("nbody/compute_force");
        let b = ActionId::of("nbody/compute_force");
        let c = ActionId::of("nbody/update_body");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::encode(&(1u32, "x".to_string())).unwrap();
        let (n, s): (u32, String) = v.decode().unwrap();
        assert_eq!(n, 1);
        assert_eq!(s, "x");
    }

    #[test]
    fn value_clone_shares_bytes() {
        let v = Value::encode(&vec![0u8; 1024]).unwrap();
        let w = v.clone();
        assert_eq!(v.bytes().as_ptr(), w.bytes().as_ptr());
    }

    #[test]
    fn unit_value() {
        let v = Value::unit();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn fault_value_roundtrips_and_never_decodes() {
        use crate::error::{Fault, FaultCause, PxError};
        let f = Fault::new(
            FaultCause::Panic,
            ActionId::of("x/y"),
            crate::gid::Gid(7),
            "boom",
        );
        let v = Value::error(&f);
        assert!(v.is_fault());
        assert_eq!(v.fault().unwrap(), f);
        // Typed decode surfaces the fault as an error, not as garbage data.
        match v.decode::<u64>() {
            Err(PxError::Fault(got)) => assert_eq!(got, f),
            other => panic!("expected fault error, got {other:?}"),
        }
        // Ordinary values are never faults.
        assert!(!Value::unit().is_fault());
        assert!(Value::encode(&1u64).unwrap().fault().is_none());
    }

    #[test]
    fn corrupt_fault_bytes_still_fault() {
        let v = Value::from_bytes_flagged(vec![1, 2], true);
        let f = v.fault().unwrap();
        assert_eq!(f.cause, crate::error::FaultCause::Decode);
        assert!(v.decode::<u64>().is_err());
    }

    #[test]
    fn decode_wrong_type_fails() {
        let v = Value::encode(&"text".to_string()).unwrap();
        // A string encodes as len+bytes; decoding as (u64, u64) must fail
        // (insufficient bytes).
        let r: PxResult<(u64, u64)> = v.decode();
        assert!(r.is_err());
    }
}
