//! The Active Global Address Space: name → locality resolution with
//! "efficient address translation … in the presence of dynamic object
//! distribution" (§2.1 requirement; §2.2 "global name space").
//!
//! Resolution is **home-based with caching**:
//!
//! 1. A GID's default home is its *birthplace* (packed in the GID itself),
//!    so un-migrated objects resolve with zero lookups.
//! 2. Objects that migrate get an entry in the sharded **directory**; the
//!    entry is authoritative.
//! 3. Each locality keeps a **resolution cache**. Stale cache entries are
//!    possible immediately after a migration; the parcel layer repairs
//!    them by *forwarding* the mis-delivered parcel (bounded chase) and
//!    sending a cache-repair hint to the sender. This mirrors the classic
//!    home-forwarding AGAS design the ParalleX model assumes.
//!
//! The symbolic name service ("hierarchical naming structure") maps
//! path-style strings (`"/app/mesh/block7"`) to GIDs.
//!
//! ## Distributed operation
//!
//! Over TCP every OS process holds one `Agas` instance, but only the
//! directory shards on a GID's **home rank** (its birthplace) are
//! cluster-authoritative. Other ranks' directory shards and caches are
//! advisory fast paths: they are filled by `__sys/dir_repair` hints and
//! by migration acknowledgements, and a stale answer is always repaired
//! by the same bounded forwarding chase used in-process (the chasing
//! parcel carries its hop count; the home rank is consulted via
//! `__sys/dir_lookup` on the control lane when the chase needs an
//! authoritative answer). Cross-rank migrations additionally pin the
//! moving GID in the [`Agas::begin_migration`] freeze set so the
//! multi-RTT protocol never holds `migrate_lock` across the wire.

use crate::error::{PxError, PxResult};
use crate::fxmap::{FxHashMap, FxHashSet};
use crate::gid::{Gid, LocalityId};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

const DIR_SHARDS: usize = 16;

/// Who initiated a migration (surfaced in
/// [`crate::stats::StatsSnapshot`] so balancer churn is distinguishable
/// from application-directed placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCause {
    /// Explicit `migrate_data` call by the application/driver.
    Manual,
    /// Heat-driven pull by the `px-balance` balancer.
    Balancer,
}

/// State behind [`Agas::begin_migration`]/[`Agas::end_migration`]: which
/// GIDs have a cross-rank migration protocol in flight, and the parcels
/// parked against each until the protocol settles.
#[derive(Default)]
struct MigrationSync {
    in_flight: FxHashSet<Gid>,
    deferred: FxHashMap<Gid, Vec<crate::parcel::Parcel>>,
}

/// The AGAS service shared by all localities of a runtime.
pub struct Agas {
    /// Directory of migrated objects (authoritative). Sharded to keep
    /// write contention off the resolution fast path.
    directory: Vec<RwLock<FxHashMap<Gid, LocalityId>>>,
    /// Per-locality resolution caches.
    caches: Vec<RwLock<FxHashMap<Gid, LocalityId>>>,
    /// Per-locality outgoing access heat: how often each locality sent a
    /// parcel at a remote data object since the balancer last drained the
    /// map. Only written when balancing is enabled (the send path gates
    /// the hook), so the un-balanced fast path never touches these locks.
    heat: Vec<Mutex<FxHashMap<Gid, u64>>>,
    /// Symbolic names (global, rarely written).
    names: RwLock<FxHashMap<String, Gid>>,
    /// Serializes whole migrations (store move + directory update).
    /// Without it, two concurrent migrations of the same object can both
    /// read the same `from`, insert at different destinations, and leave
    /// a stale resident copy wherever the directory loser inserted.
    /// Migrations are rare (manual calls + capped balancer pulls), so one
    /// global lock is cheaper than per-object machinery.
    migrate_lock: Mutex<()>,
    /// Cross-rank migration synchronization. The distributed protocol
    /// spans two remote RTTs (install at dest, then update the home
    /// directory), so it cannot hold `migrate_lock` for its duration;
    /// instead each migration pins its GID in `in_flight` for the whole
    /// protocol and concurrent starters park their parcels in
    /// `deferred`. The lock only guards set/map membership — it is
    /// never held across a wire operation.
    migration_sync: Mutex<MigrationSync>,
    /// Monotone count of migrations (diagnostics).
    migrations: AtomicU64,
    /// Migrations recorded with [`MigrationCause::Manual`].
    migrations_manual: AtomicU64,
    /// Migrations recorded with [`MigrationCause::Balancer`].
    migrations_balancer: AtomicU64,
}

impl std::fmt::Debug for Agas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agas")
            // Relaxed: debug snapshot of a stat counter.
            .field("migrations", &self.migrations.load(Ordering::Relaxed))
            .field("names", &self.names.read().len())
            .finish()
    }
}

impl Agas {
    /// AGAS for `n` localities.
    pub fn new(n: usize) -> Self {
        Agas {
            directory: (0..DIR_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            caches: (0..n).map(|_| RwLock::new(FxHashMap::default())).collect(),
            heat: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            names: RwLock::new(FxHashMap::default()),
            migrate_lock: Mutex::new(()),
            migration_sync: Mutex::new(MigrationSync::default()),
            migrations: AtomicU64::new(0),
            migrations_manual: AtomicU64::new(0),
            migrations_balancer: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, gid: Gid) -> &RwLock<FxHashMap<Gid, LocalityId>> {
        // Cheap mix: sequence low bits spread well already.
        &self.directory[(gid.0 as usize) & (DIR_SHARDS - 1)]
    }

    /// Resolve the current owner of `gid` as seen from locality `from`.
    ///
    /// `hit_counters` distinguishes cache hits from directory lookups for
    /// the ablation bench (`micro_agas`).
    pub fn resolve(&self, from: LocalityId, gid: Gid) -> Resolution {
        if let Some(&owner) = self.caches[from.0 as usize].read().get(&gid) {
            return Resolution {
                owner,
                source: ResolutionSource::Cache,
            };
        }
        if let Some(&owner) = self.shard(gid).read().get(&gid) {
            self.caches[from.0 as usize].write().insert(gid, owner);
            return Resolution {
                owner,
                source: ResolutionSource::Directory,
            };
        }
        Resolution {
            owner: gid.birthplace(),
            source: ResolutionSource::Birthplace,
        }
    }

    /// Authoritative owner (directory, then birthplace) — used by a
    /// locality that received a parcel for an object it no longer owns.
    pub fn authoritative_owner(&self, gid: Gid) -> LocalityId {
        self.shard(gid)
            .read()
            .get(&gid)
            .copied()
            .unwrap_or_else(|| gid.birthplace())
    }

    /// Record a migration: `gid` now lives at `to`. Attributed to
    /// [`MigrationCause::Manual`]; the balancer uses
    /// [`Agas::record_migration_caused`].
    pub fn record_migration(&self, gid: Gid, to: LocalityId) {
        self.record_migration_caused(gid, to, MigrationCause::Manual);
    }

    /// Record a migration with an explicit cause.
    pub fn record_migration_caused(&self, gid: Gid, to: LocalityId, cause: MigrationCause) {
        // Relaxed: migration tallies are monotonic stat counters; the
        // directory write below is what synchronizes the move itself.
        self.migrations.fetch_add(1, Ordering::Relaxed);
        match cause {
            // Relaxed: same counter discipline as the total above.
            MigrationCause::Manual => self.migrations_manual.fetch_add(1, Ordering::Relaxed),
            MigrationCause::Balancer => self.migrations_balancer.fetch_add(1, Ordering::Relaxed),
        };
        self.note_owner(gid, to);
    }

    /// Directory write without migration accounting: the `__sys`
    /// directory ops use this at the destination and home ranks (the
    /// rank that *initiated* the move already counted the migration;
    /// counting it again at every participating rank would inflate the
    /// per-rank migration totals).
    pub fn note_owner(&self, gid: Gid, to: LocalityId) {
        let mut shard = self.shard(gid).write();
        if to == gid.birthplace() {
            // Back home: the directory entry is redundant.
            shard.remove(&gid);
        } else {
            shard.insert(gid, to);
        }
    }

    /// Repair one locality's cache entry (forwarding hint).
    pub fn repair_cache(&self, at: LocalityId, gid: Gid, owner: LocalityId) {
        self.caches[at.0 as usize].write().insert(gid, owner);
    }

    /// Drop a cache entry (used by tests and by explicit frees).
    pub fn invalidate_cache(&self, at: LocalityId, gid: Gid) {
        self.caches[at.0 as usize].write().remove(&gid);
    }

    /// Total migrations recorded.
    pub fn migrations(&self) -> u64 {
        // Relaxed: counter read for reporting.
        self.migrations.load(Ordering::Relaxed)
    }

    /// Hold the migration lock for the duration of a store move +
    /// directory update (see `migrate_lock`).
    pub fn migration_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.migrate_lock.lock()
    }

    /// Pin `gid` for a cross-rank migration. Returns `false` (and pins
    /// nothing) when a migration of the same GID is already in flight —
    /// the caller must park its request via
    /// [`Agas::defer_during_migration`] rather than race the protocol.
    /// Pair every `true` return with exactly one [`Agas::end_migration`],
    /// including on every failure path.
    pub fn begin_migration(&self, gid: Gid) -> bool {
        self.migration_sync.lock().in_flight.insert(gid)
    }

    /// Release a pin taken by a successful [`Agas::begin_migration`] and
    /// atomically take every parcel parked against it — the caller must
    /// re-send each one (they re-resolve against the settled directory).
    /// Unpinning and draining under one lock means a racing
    /// [`Agas::defer_during_migration`] either parks before the drain
    /// (and is returned here) or observes the pin gone and keeps its
    /// parcel; nothing can park forever.
    #[must_use = "re-send the parked parcels or their continuations hang"]
    pub fn end_migration(&self, gid: Gid) -> Vec<crate::parcel::Parcel> {
        let mut sync = self.migration_sync.lock();
        let removed = sync.in_flight.remove(&gid);
        debug_assert!(removed, "end_migration without begin_migration");
        sync.deferred.remove(&gid).unwrap_or_default()
    }

    /// Park `p` until the in-flight migration of `gid` settles. Returns
    /// the parcel back when no migration is in flight (the race resolved
    /// before the lock was taken) — the caller re-sends it immediately.
    pub fn defer_during_migration(
        &self,
        gid: Gid,
        p: crate::parcel::Parcel,
    ) -> Option<crate::parcel::Parcel> {
        let mut sync = self.migration_sync.lock();
        if sync.in_flight.contains(&gid) {
            sync.deferred.entry(gid).or_default().push(p);
            None
        } else {
            Some(p)
        }
    }

    /// Whether a cross-rank migration of `gid` is currently in flight.
    pub fn migration_in_flight(&self, gid: Gid) -> bool {
        self.migration_sync.lock().in_flight.contains(&gid)
    }

    /// Migrations split by cause: `(manual, balancer)`.
    pub fn migrations_by_cause(&self) -> (u64, u64) {
        (
            // Relaxed: counter reads for reporting.
            self.migrations_manual.load(Ordering::Relaxed),
            self.migrations_balancer.load(Ordering::Relaxed),
        )
    }

    // ---- access heat -------------------------------------------------------

    /// Note that locality `from` addressed a parcel at remote object
    /// `gid`. Called from the send path only while balancing is enabled;
    /// the counts accumulate until [`Agas::drain_heat`] empties them each
    /// balancer round, so "heat" is accesses-per-round.
    pub fn note_access(&self, from: LocalityId, gid: Gid) {
        if let Some(m) = self.heat.get(from.0 as usize) {
            *m.lock().entry(gid).or_insert(0) += 1;
        }
    }

    /// Take and clear locality `from`'s access-heat map, hottest first.
    pub fn drain_heat(&self, from: LocalityId) -> Vec<(Gid, u64)> {
        let Some(m) = self.heat.get(from.0 as usize) else {
            return Vec::new();
        };
        let drained = std::mem::take(&mut *m.lock());
        let mut v: Vec<(Gid, u64)> = drained.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    // ---- symbolic names ---------------------------------------------------

    /// Bind a hierarchical name to a GID. Names are write-once.
    pub fn register_name(&self, name: &str, gid: Gid) -> PxResult<()> {
        let mut names = self.names.write();
        if names.contains_key(name) {
            return Err(PxError::DuplicateName(name.to_string()));
        }
        names.insert(name.to_string(), gid);
        Ok(())
    }

    /// Resolve a hierarchical name.
    pub fn lookup_name(&self, name: &str) -> PxResult<Gid> {
        self.names
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| PxError::UnknownName(name.to_string()))
    }

    /// Remove a name binding, returning the GID it named.
    pub fn unregister_name(&self, name: &str) -> PxResult<Gid> {
        self.names
            .write()
            .remove(name)
            .ok_or_else(|| PxError::UnknownName(name.to_string()))
    }

    /// Remove every name under `prefix` in one pass, returning the
    /// removed bindings sorted by name. This is the bulk-teardown half of
    /// hierarchical naming: process exits (and any caller that registers
    /// then drops a family of names) use it instead of leaking entries
    /// into the global table one `unregister_name` miss at a time.
    pub fn unregister_names_under(&self, prefix: &str) -> Vec<(String, Gid)> {
        let mut names = self.names.write();
        let keys: Vec<String> = names
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        let mut out: Vec<(String, Gid)> = keys
            .into_iter()
            .map(|k| {
                let gid = names.remove(&k).expect("key collected under lock");
                (k, gid)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// List names under a prefix (hierarchy browsing).
    pub fn names_under(&self, prefix: &str) -> Vec<(String, Gid)> {
        let names = self.names.read();
        let mut out: Vec<(String, Gid)> = names
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl Agas {
    /// Resolve with instrumentation: counts cache hits and misses (split
    /// into directory lookups and birthplace fallbacks) on the asking
    /// locality. Backs the `micro_agas` ablation and the
    /// [`crate::stats::LocalityStats::agas_hit_rate`] ratio.
    pub fn resolve_counted(&self, from: &crate::locality::Locality, gid: Gid) -> LocalityId {
        let r = self.resolve(from.id, gid);
        match r.source {
            ResolutionSource::Cache => {
                crate::stats::bump!(from.counters.agas_cache_hits);
            }
            ResolutionSource::Directory => {
                crate::stats::bump!(from.counters.agas_cache_misses);
                crate::stats::bump!(from.counters.agas_directory_lookups);
            }
            ResolutionSource::Birthplace => {
                crate::stats::bump!(from.counters.agas_cache_misses);
            }
        }
        r.owner
    }
}

/// Where a resolution came from (for instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionSource {
    /// Locality cache hit.
    Cache,
    /// Directory (migrated object).
    Directory,
    /// Default home (never migrated, zero-lookup path).
    Birthplace,
}

/// A resolved owner plus its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The locality believed to own the object.
    pub owner: LocalityId,
    /// How the answer was obtained.
    pub source: ResolutionSource,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gid::GidKind;

    fn gid_at(loc: u16, seq: u64) -> Gid {
        Gid::new(LocalityId(loc), GidKind::Data, seq)
    }

    #[test]
    fn unmigrated_resolves_to_birthplace() {
        let agas = Agas::new(4);
        let g = gid_at(2, 100);
        let r = agas.resolve(LocalityId(0), g);
        assert_eq!(r.owner, LocalityId(2));
        assert_eq!(r.source, ResolutionSource::Birthplace);
    }

    #[test]
    fn migration_updates_directory_and_caches_on_lookup() {
        let agas = Agas::new(4);
        let g = gid_at(2, 100);
        agas.record_migration(g, LocalityId(3));
        let r = agas.resolve(LocalityId(0), g);
        assert_eq!(r.owner, LocalityId(3));
        assert_eq!(r.source, ResolutionSource::Directory);
        // Second resolve hits the cache.
        let r2 = agas.resolve(LocalityId(0), g);
        assert_eq!(r2.source, ResolutionSource::Cache);
        assert_eq!(agas.migrations(), 1);
    }

    #[test]
    fn migration_back_home_clears_directory() {
        let agas = Agas::new(4);
        let g = gid_at(1, 7);
        agas.record_migration(g, LocalityId(3));
        agas.record_migration(g, LocalityId(1));
        assert_eq!(agas.authoritative_owner(g), LocalityId(1));
    }

    #[test]
    fn stale_cache_then_repair() {
        let agas = Agas::new(4);
        let g = gid_at(0, 50);
        agas.record_migration(g, LocalityId(1));
        assert_eq!(agas.resolve(LocalityId(2), g).owner, LocalityId(1));
        // Object moves again; locality 2's cache is now stale.
        agas.record_migration(g, LocalityId(3));
        assert_eq!(
            agas.resolve(LocalityId(2), g).owner,
            LocalityId(1),
            "stale cache answer expected before repair"
        );
        agas.repair_cache(LocalityId(2), g, LocalityId(3));
        let r = agas.resolve(LocalityId(2), g);
        assert_eq!(r.owner, LocalityId(3));
        assert_eq!(r.source, ResolutionSource::Cache);
    }

    #[test]
    fn resolve_counted_tracks_hits_and_misses() {
        use std::sync::atomic::Ordering;
        let agas = Agas::new(4);
        let loc = crate::locality::Locality::new(LocalityId(0), false);
        let g = gid_at(2, 5);
        // Birthplace resolution: a miss (no cache entry exists).
        agas.resolve_counted(&loc, g);
        assert_eq!(loc.counters.agas_cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(loc.counters.agas_cache_misses.load(Ordering::Relaxed), 1);
        // Migrated object: first resolve consults the directory (miss),
        // second hits the freshly filled cache.
        agas.record_migration(g, LocalityId(3));
        agas.resolve_counted(&loc, g);
        assert_eq!(loc.counters.agas_cache_misses.load(Ordering::Relaxed), 2);
        assert_eq!(
            loc.counters.agas_directory_lookups.load(Ordering::Relaxed),
            1
        );
        agas.resolve_counted(&loc, g);
        assert_eq!(loc.counters.agas_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(loc.counters.agas_cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn migrations_attributed_by_cause() {
        let agas = Agas::new(4);
        let g = gid_at(0, 9);
        agas.record_migration(g, LocalityId(1));
        agas.record_migration_caused(g, LocalityId(2), MigrationCause::Balancer);
        agas.record_migration_caused(g, LocalityId(3), MigrationCause::Balancer);
        assert_eq!(agas.migrations(), 3);
        assert_eq!(agas.migrations_by_cause(), (1, 2));
        assert_eq!(agas.authoritative_owner(g), LocalityId(3));
    }

    #[test]
    fn heat_accumulates_and_drains_sorted() {
        let agas = Agas::new(2);
        let hot = gid_at(1, 1);
        let warm = gid_at(1, 2);
        for _ in 0..5 {
            agas.note_access(LocalityId(0), hot);
        }
        agas.note_access(LocalityId(0), warm);
        agas.note_access(LocalityId(1), warm); // other locality: separate map
        let h = agas.drain_heat(LocalityId(0));
        assert_eq!(h, vec![(hot, 5), (warm, 1)]);
        assert!(agas.drain_heat(LocalityId(0)).is_empty(), "drain clears");
        assert_eq!(agas.drain_heat(LocalityId(1)), vec![(warm, 1)]);
        // Out-of-range localities are a no-op, not a panic.
        agas.note_access(LocalityId(9), hot);
        assert!(agas.drain_heat(LocalityId(9)).is_empty());
    }

    #[test]
    fn migration_freeze_set_is_exclusive_per_gid() {
        let agas = Agas::new(2);
        let a = gid_at(0, 1);
        let b = gid_at(0, 2);
        assert!(agas.begin_migration(a), "first pin wins");
        assert!(!agas.begin_migration(a), "concurrent pin backs off");
        assert!(agas.migration_in_flight(a));
        assert!(agas.begin_migration(b), "other GIDs are independent");

        // A parcel aimed at the pinned GID parks; one aimed at a free
        // GID comes straight back.
        let park = crate::parcel::Parcel::new(
            a,
            crate::action::ActionId::of("test/park"),
            crate::action::Value::unit(),
            crate::parcel::Continuation::none(),
        );
        assert!(agas.defer_during_migration(a, park).is_none());
        let free = crate::parcel::Parcel::new(
            gid_at(0, 3),
            crate::action::ActionId::of("test/free"),
            crate::action::Value::unit(),
            crate::parcel::Continuation::none(),
        );
        assert!(agas.defer_during_migration(gid_at(0, 3), free).is_some());

        let drained = agas.end_migration(a);
        assert_eq!(drained.len(), 1, "unpin returns the parked parcels");
        assert_eq!(drained[0].dest, a);
        assert!(!agas.migration_in_flight(a));
        assert!(agas.begin_migration(a), "pin reusable after release");
        assert!(agas.end_migration(a).is_empty());
        assert!(agas.end_migration(b).is_empty());
    }

    #[test]
    fn symbolic_names() {
        let agas = Agas::new(1);
        let g = gid_at(0, 1);
        agas.register_name("/app/mesh/block0", g).unwrap();
        assert_eq!(agas.lookup_name("/app/mesh/block0").unwrap(), g);
        assert!(matches!(
            agas.register_name("/app/mesh/block0", g),
            Err(PxError::DuplicateName(_))
        ));
        assert!(matches!(
            agas.lookup_name("/nope"),
            Err(PxError::UnknownName(_))
        ));
    }

    #[test]
    fn hierarchical_prefix_listing() {
        let agas = Agas::new(1);
        agas.register_name("/a/x", gid_at(0, 1)).unwrap();
        agas.register_name("/a/y", gid_at(0, 2)).unwrap();
        agas.register_name("/b/z", gid_at(0, 3)).unwrap();
        let under_a = agas.names_under("/a/");
        assert_eq!(under_a.len(), 2);
        assert_eq!(under_a[0].0, "/a/x");
        let all = agas.names_under("/");
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn unregister_names_under_prefix() {
        let agas = Agas::new(1);
        agas.register_name("/proc/1f/counter", gid_at(0, 1))
            .unwrap();
        agas.register_name("/proc/1f/log", gid_at(0, 2)).unwrap();
        agas.register_name("/proc/2a/counter", gid_at(0, 3))
            .unwrap();
        agas.register_name("/global", gid_at(0, 4)).unwrap();
        let removed = agas.unregister_names_under("/proc/1f/");
        assert_eq!(
            removed,
            vec![
                ("/proc/1f/counter".to_string(), gid_at(0, 1)),
                ("/proc/1f/log".to_string(), gid_at(0, 2)),
            ]
        );
        // Removed names are gone; unrelated names survive.
        assert!(agas.lookup_name("/proc/1f/counter").is_err());
        assert_eq!(agas.lookup_name("/proc/2a/counter").unwrap(), gid_at(0, 3));
        assert_eq!(agas.lookup_name("/global").unwrap(), gid_at(0, 4));
        // The freed names can be re-registered (no tombstones), and a
        // second bulk pass removes nothing.
        assert!(agas.unregister_names_under("/proc/1f/").is_empty());
        agas.register_name("/proc/1f/counter", gid_at(0, 9))
            .unwrap();
        assert_eq!(agas.lookup_name("/proc/1f/counter").unwrap(), gid_at(0, 9));
    }

    #[test]
    fn unregister() {
        let agas = Agas::new(1);
        let g = gid_at(0, 1);
        agas.register_name("/tmp", g).unwrap();
        assert_eq!(agas.unregister_name("/tmp").unwrap(), g);
        assert!(agas.lookup_name("/tmp").is_err());
        assert!(agas.unregister_name("/tmp").is_err());
    }
}
