//! # px-core — the ParalleX execution model
//!
//! This crate implements the eight principal semantic elements of ParalleX
//! as described in §2.2 of *ParalleX: A Study of A New Parallel Computation
//! Model* (IPPS 2007):
//!
//! | Element | Where |
//! |---|---|
//! | **Localities** — synchronous domains with compound atomic operations | [`locality`] |
//! | **Global name space** — first-class named data *and* actions | [`gid`], [`agas`] |
//! | **Multithreading** — ephemeral PX-threads; suspend→LCO, terminate→parcel | [`runtime::Ctx`], [`sched`] |
//! | **Parcels** — message-driven computation with continuation specifiers | [`parcel`], [`net`] |
//! | **Local Control Objects** — futures, dataflow, gates, depleted threads | [`lco`] |
//! | **Percolation** — prestaging work+data at precious resources | [`percolation`] |
//! | **Echo** — split-phase copy semantics without global cache coherence | [`echo`] |
//! | **Parallel processes** — processes spanning localities, quiescence | [`process`] |
//!
//! The runtime maps each *locality* onto a private object store plus a pool
//! of worker OS threads; localities interact **only** through parcels
//! carried by a wire layer with injectable latency and bandwidth, so the
//! latency/overhead/starvation phenomena the paper discusses are directly
//! measurable on commodity hardware.
//!
//! ## Quick start
//!
//! ```
//! use px_core::prelude::*;
//!
//! // An action: the unit of work a parcel applies to a target object.
//! struct Square;
//! impl Action for Square {
//!     const NAME: &'static str = "examples/square";
//!     type Args = u64;
//!     type Out = u64;
//!     fn execute(_ctx: &mut Ctx<'_>, _target: Gid, n: u64) -> u64 { n * n }
//! }
//!
//! let rt = RuntimeBuilder::new(Config::small(2, 1))
//!     .register::<Square>()
//!     .build()
//!     .unwrap();
//!
//! // Create a future LCO, send a parcel whose continuation fills it.
//! let fut = rt.new_future::<u64>(LocalityId(1));
//! rt.send_action::<Square>(Gid::locality_root(LocalityId(1)), 12,
//!                          Continuation::set(fut.gid()));
//! assert_eq!(fut.wait(&rt).unwrap(), 144);
//! rt.shutdown();
//! ```
//!
//! PX-threads never block: remote interaction is split-phase. A thread that
//! needs a remote value either *terminates* into a parcel (work moves to
//! data) or *suspends* by depositing its continuation in an LCO (a
//! "depleted thread" in the paper's terminology).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod agas;
pub(crate) mod balance;
pub mod echo;
pub mod error;
pub mod fxmap;
pub mod gid;
pub mod lco;
pub mod locality;
pub mod metrics;
pub mod net;
pub mod parcel;
pub mod percolation;
pub mod process;
pub mod runtime;
pub mod sched;
pub mod stats;
pub mod trace;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::action::{Action, ActionId, Value};
    pub use crate::error::{Fault, FaultCause, PxError, PxResult};
    pub use crate::gid::{Gid, GidKind, LocalityId};
    pub use crate::lco::FutureRef;
    pub use crate::metrics::{ClusterMetrics, Instrument, MetricsSnapshot};
    pub use crate::net::{BatchPolicy, TcpConfig, WireModel};
    pub use crate::parcel::{Continuation, Parcel};
    pub use crate::process::ProcessRef;
    pub use crate::runtime::{Config, Ctx, DeadLetterHook, Runtime, RuntimeBuilder, TransportKind};
    pub use crate::stats::StatsSnapshot;
    pub use crate::trace::{TraceConfig, TraceDump, TraceEvent, TraceEventKind};
    pub use px_balance::{Adaptive, BalanceConfig, BalancePolicy, DataToWork, WorkToData};
}

pub use action::{Action, ActionId, Value};
pub use error::{Fault, FaultCause, PxError, PxResult};
pub use gid::{Gid, GidKind, LocalityId};
pub use lco::FutureRef;
pub use net::{BatchPolicy, TcpConfig, WireModel};
pub use parcel::{Continuation, Parcel};
pub use runtime::{Config, Ctx, DeadLetterHook, Runtime, RuntimeBuilder, TransportKind};
