//! Instrumentation: the efficiency factors the paper names (§2.1) —
//! latency exposure, overhead, starvation — made measurable.
//!
//! Every locality keeps lock-free counters updated by its workers; a
//! [`StatsSnapshot`] is a consistent-enough copy for experiment output
//! (individual counters are exact; cross-counter skew is bounded by the
//! snapshot interval, which is fine for the ratios the experiments report).

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-locality counters (all monotone).
#[derive(Debug, Default)]
pub struct LocalityCounters {
    /// Parcels sent from this locality (including forwarded ones).
    pub parcels_sent: AtomicU64,
    /// Parcels received and executed here.
    pub parcels_recv: AtomicU64,
    /// Parcels that arrived here but had to be forwarded after migration.
    pub parcels_forwarded: AtomicU64,
    /// Payload + header bytes sent. On the batched path this includes
    /// each record's length prefix (what the wire delay model charges);
    /// only the fixed per-frame header is unattributed.
    pub bytes_sent: AtomicU64,
    /// PX-threads executed (fresh threads + parcel-spawned threads).
    pub threads_executed: AtomicU64,
    /// Depleted threads resumed (suspensions that completed).
    pub resumes: AtomicU64,
    /// Tasks stolen from a sibling worker within the locality.
    pub steals: AtomicU64,
    /// Times a worker went to sleep with no work (starvation events).
    pub parks: AtomicU64,
    /// Nanoseconds workers spent executing tasks.
    pub busy_ns: AtomicU64,
    /// Nanoseconds workers spent idle (searching or parked).
    pub idle_ns: AtomicU64,
    /// LCO events processed (triggers, contributions, slot fills).
    pub lco_events: AtomicU64,
    /// Percolated (prestaged) tasks executed.
    pub staged_executed: AtomicU64,
    /// AGAS resolutions served from the local cache.
    pub agas_cache_hits: AtomicU64,
    /// AGAS resolutions *not* served from the local cache (directory
    /// lookups plus birthplace fallbacks).
    pub agas_cache_misses: AtomicU64,
    /// AGAS resolutions that consulted the directory.
    pub agas_directory_lookups: AtomicU64,
    /// Parcel frames flushed toward this locality by the coalescing ports
    /// (sender side, aggregated over all senders).
    pub frames_sent: AtomicU64,
    /// Parcel frames received and executed here.
    pub frames_recv: AtomicU64,
    /// Parcels that shared a port frame with at least one earlier parcel
    /// (destination-attributed; the batching win in message counts).
    pub coalesced_parcels: AtomicU64,
    /// Frames flushed because they hit `max_batch_parcels`/`max_batch_bytes`.
    pub batch_flush_full: AtomicU64,
    /// Frames flushed by the interval flusher or a shutdown drain.
    pub batch_flush_timer: AtomicU64,
    /// Parcels that died, all causes (the sum of the five by-cause
    /// counters below). Every death also raises a fault delivered to the
    /// parcel's continuation — see the "Failure semantics" README section.
    pub dead_parcels: AtomicU64,
    /// Deaths: forwarding/retry hop budget exhausted (migration storm or
    /// freed object).
    pub dead_hop_cap: AtomicU64,
    /// Deaths: action absent from the registry.
    pub dead_unknown_action: AtomicU64,
    /// Deaths: handler returned an error (including LCO protocol
    /// violations such as double-triggering).
    pub dead_handler_error: AtomicU64,
    /// Deaths: action handler panicked.
    pub dead_panic: AtomicU64,
    /// Deaths: undecodable parcel, frame record, or payload.
    pub dead_decode: AtomicU64,
    /// Deaths: parcel belonged to a cancelled parallel process and was
    /// killed at dispatch.
    pub dead_cancelled: AtomicU64,
    /// Deaths: the transport could not deliver (peer connection dropped,
    /// or a closure task addressed across an OS-process boundary).
    pub dead_transport: AtomicU64,
    /// Closure/resume PX-thread tasks dropped because their owning
    /// process was cancelled (not parcels, so not in `dead_parcels`;
    /// mirrors how thread panics live beside the parcel death counters).
    pub tasks_cancelled: AtomicU64,
    /// PX-threads that panicked (isolated; the worker survives).
    pub panics: AtomicU64,
    /// Balancer rounds in which this locality was sampled and gossiped.
    pub gossip_rounds: AtomicU64,
    /// Gossip parcels received and merged here.
    pub gossip_parcels: AtomicU64,
    /// Queued tasks shed from here to a less-loaded peer (work diffusion).
    pub tasks_shed: AtomicU64,
    /// Objects migrated *to* here by the balancer (heat-driven pulls).
    pub balance_pulls: AtomicU64,
    /// Hops accumulated by parcels that ultimately executed here — both
    /// forward hops after a stale resolution and owner-but-absent retry
    /// hops during a migration window (every hop is a routing cost paid
    /// to find the object). AGAS chase length numerator; divide by
    /// [`LocalityStats::chased_parcels`].
    pub chase_hops_total: AtomicU64,
    /// Parcels executed here after at least one forward or retry hop.
    pub chased_parcels: AtomicU64,
    /// Parcels killed here by the forwarding hop cap (chase budget
    /// exhausted: migration storm or a freed object).
    pub chase_cap_violations: AtomicU64,
    /// Causal-trace events recorded into this locality's ring (zero
    /// unless `Config::trace` is enabled).
    pub trace_events_recorded: AtomicU64,
    /// Trace events lost to ring overwrite — a non-zero value means the
    /// ring is too small for the sampling rate and dump cadence.
    pub trace_events_dropped: AtomicU64,
    /// Directory lookups answered by this rank's own home shards (the
    /// queried GID was born here, so no wire round-trip was needed).
    pub dir_lookups_local: AtomicU64,
    /// Directory lookups sent to a remote home rank as `__sys/dir_lookup`
    /// parcels (request counted at the asking rank).
    pub dir_lookups_remote: AtomicU64,
    /// Parcels forwarded because the local resolution named a rank that
    /// was not this one (the cross-rank share of `parcels_forwarded`).
    pub dir_forwards: AtomicU64,
    /// Cache-repair hints applied here (`__sys/dir_repair` deliveries
    /// plus in-process chase repairs).
    pub dir_repairs: AtomicU64,
}

macro_rules! bump {
    ($field:expr) => {{
        // Relaxed: every bump! target is a monotonic stats counter,
        // never a synchronization point.
        let _ = $field.fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
    }};
    ($field:expr, $n:expr) => {{
        // Relaxed: see the single-increment arm above — counters only.
        let _ = $field.fetch_add($n, ::std::sync::atomic::Ordering::Relaxed);
    }};
}
pub(crate) use bump;

impl LocalityCounters {
    /// Count one parcel death: the total plus its by-cause counter
    /// (mirroring the AGAS migrations-by-cause breakdown).
    pub(crate) fn count_death(&self, cause: crate::error::FaultCause, n: u64) {
        use crate::error::FaultCause;
        bump!(self.dead_parcels, n);
        match cause {
            FaultCause::HopCap => bump!(self.dead_hop_cap, n),
            FaultCause::UnknownAction => bump!(self.dead_unknown_action, n),
            FaultCause::HandlerError => bump!(self.dead_handler_error, n),
            FaultCause::Panic => bump!(self.dead_panic, n),
            FaultCause::Decode => bump!(self.dead_decode, n),
            FaultCause::Cancelled => bump!(self.dead_cancelled, n),
            FaultCause::Transport => bump!(self.dead_transport, n),
        }
    }

    /// Copy current values.
    pub fn snapshot(&self) -> LocalityStats {
        LocalityStats {
            parcels_sent: self.parcels_sent.load(Ordering::Relaxed),
            parcels_recv: self.parcels_recv.load(Ordering::Relaxed),
            parcels_forwarded: self.parcels_forwarded.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            threads_executed: self.threads_executed.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            lco_events: self.lco_events.load(Ordering::Relaxed),
            staged_executed: self.staged_executed.load(Ordering::Relaxed),
            agas_cache_hits: self.agas_cache_hits.load(Ordering::Relaxed),
            agas_cache_misses: self.agas_cache_misses.load(Ordering::Relaxed),
            agas_directory_lookups: self.agas_directory_lookups.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            coalesced_parcels: self.coalesced_parcels.load(Ordering::Relaxed),
            batch_flush_full: self.batch_flush_full.load(Ordering::Relaxed),
            batch_flush_timer: self.batch_flush_timer.load(Ordering::Relaxed),
            dead_parcels: self.dead_parcels.load(Ordering::Relaxed),
            dead_hop_cap: self.dead_hop_cap.load(Ordering::Relaxed),
            dead_unknown_action: self.dead_unknown_action.load(Ordering::Relaxed),
            dead_handler_error: self.dead_handler_error.load(Ordering::Relaxed),
            dead_panic: self.dead_panic.load(Ordering::Relaxed),
            dead_decode: self.dead_decode.load(Ordering::Relaxed),
            dead_cancelled: self.dead_cancelled.load(Ordering::Relaxed),
            dead_transport: self.dead_transport.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            gossip_rounds: self.gossip_rounds.load(Ordering::Relaxed),
            gossip_parcels: self.gossip_parcels.load(Ordering::Relaxed),
            tasks_shed: self.tasks_shed.load(Ordering::Relaxed),
            balance_pulls: self.balance_pulls.load(Ordering::Relaxed),
            chase_hops_total: self.chase_hops_total.load(Ordering::Relaxed),
            chased_parcels: self.chased_parcels.load(Ordering::Relaxed),
            chase_cap_violations: self.chase_cap_violations.load(Ordering::Relaxed),
            trace_events_recorded: self.trace_events_recorded.load(Ordering::Relaxed),
            trace_events_dropped: self.trace_events_dropped.load(Ordering::Relaxed),
            dir_lookups_local: self.dir_lookups_local.load(Ordering::Relaxed),
            dir_lookups_remote: self.dir_lookups_remote.load(Ordering::Relaxed),
            dir_forwards: self.dir_forwards.load(Ordering::Relaxed),
            dir_repairs: self.dir_repairs.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`LocalityCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub struct LocalityStats {
    pub parcels_sent: u64,
    pub parcels_recv: u64,
    pub parcels_forwarded: u64,
    pub bytes_sent: u64,
    pub threads_executed: u64,
    pub resumes: u64,
    pub steals: u64,
    pub parks: u64,
    pub busy_ns: u64,
    pub idle_ns: u64,
    pub lco_events: u64,
    pub staged_executed: u64,
    pub agas_cache_hits: u64,
    pub agas_cache_misses: u64,
    pub agas_directory_lookups: u64,
    pub frames_sent: u64,
    pub frames_recv: u64,
    pub coalesced_parcels: u64,
    pub batch_flush_full: u64,
    pub batch_flush_timer: u64,
    pub dead_parcels: u64,
    pub dead_hop_cap: u64,
    pub dead_unknown_action: u64,
    pub dead_handler_error: u64,
    pub dead_panic: u64,
    pub dead_decode: u64,
    pub dead_cancelled: u64,
    pub dead_transport: u64,
    pub tasks_cancelled: u64,
    pub panics: u64,
    pub gossip_rounds: u64,
    pub gossip_parcels: u64,
    pub tasks_shed: u64,
    pub balance_pulls: u64,
    pub chase_hops_total: u64,
    pub chased_parcels: u64,
    pub chase_cap_violations: u64,
    pub trace_events_recorded: u64,
    pub trace_events_dropped: u64,
    pub dir_lookups_local: u64,
    pub dir_lookups_remote: u64,
    pub dir_forwards: u64,
    pub dir_repairs: u64,
}

impl LocalityStats {
    /// Parcel deaths summed over the by-cause counters. Always equals
    /// [`LocalityStats::dead_parcels`] (the invariant tested in the
    /// fault integration suite).
    pub fn deaths_by_cause_total(&self) -> u64 {
        self.dead_hop_cap
            + self.dead_unknown_action
            + self.dead_handler_error
            + self.dead_panic
            + self.dead_decode
            + self.dead_cancelled
            + self.dead_transport
    }

    /// Fraction of worker time spent executing (1.0 = no starvation).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    /// Mean parcels per flushed frame (1.0 = no coalescing benefit).
    /// Computed from the send-side counters, which advance together under
    /// the port lock, so the ratio is consistent even while frames are in
    /// flight.
    pub fn parcels_per_frame(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            // Frames carry coalesced parcels plus each frame's opener.
            (self.coalesced_parcels + self.frames_sent) as f64 / self.frames_sent as f64
        }
    }

    /// Mean forward hops per chased parcel (0.0 when nothing chased). A
    /// rising mean under a migration-heavy policy means senders' caches
    /// are staying stale longer than the repair hints can fix.
    pub fn mean_chase_len(&self) -> f64 {
        if self.chased_parcels == 0 {
            0.0
        } else {
            self.chase_hops_total as f64 / self.chased_parcels as f64
        }
    }

    /// Fraction of AGAS resolutions served from the local cache.
    pub fn agas_hit_rate(&self) -> f64 {
        let total = self.agas_cache_hits + self.agas_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.agas_cache_hits as f64 / total as f64
        }
    }

    /// Element-wise difference (for interval measurements).
    pub fn delta_from(&self, earlier: &LocalityStats) -> LocalityStats {
        LocalityStats {
            parcels_sent: self.parcels_sent - earlier.parcels_sent,
            parcels_recv: self.parcels_recv - earlier.parcels_recv,
            parcels_forwarded: self.parcels_forwarded - earlier.parcels_forwarded,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            threads_executed: self.threads_executed - earlier.threads_executed,
            resumes: self.resumes - earlier.resumes,
            steals: self.steals - earlier.steals,
            parks: self.parks - earlier.parks,
            busy_ns: self.busy_ns - earlier.busy_ns,
            idle_ns: self.idle_ns - earlier.idle_ns,
            lco_events: self.lco_events - earlier.lco_events,
            staged_executed: self.staged_executed - earlier.staged_executed,
            agas_cache_hits: self.agas_cache_hits - earlier.agas_cache_hits,
            agas_cache_misses: self.agas_cache_misses - earlier.agas_cache_misses,
            agas_directory_lookups: self.agas_directory_lookups - earlier.agas_directory_lookups,
            frames_sent: self.frames_sent - earlier.frames_sent,
            frames_recv: self.frames_recv - earlier.frames_recv,
            coalesced_parcels: self.coalesced_parcels - earlier.coalesced_parcels,
            batch_flush_full: self.batch_flush_full - earlier.batch_flush_full,
            batch_flush_timer: self.batch_flush_timer - earlier.batch_flush_timer,
            dead_parcels: self.dead_parcels - earlier.dead_parcels,
            dead_hop_cap: self.dead_hop_cap - earlier.dead_hop_cap,
            dead_unknown_action: self.dead_unknown_action - earlier.dead_unknown_action,
            dead_handler_error: self.dead_handler_error - earlier.dead_handler_error,
            dead_panic: self.dead_panic - earlier.dead_panic,
            dead_decode: self.dead_decode - earlier.dead_decode,
            dead_cancelled: self.dead_cancelled - earlier.dead_cancelled,
            dead_transport: self.dead_transport - earlier.dead_transport,
            tasks_cancelled: self.tasks_cancelled - earlier.tasks_cancelled,
            panics: self.panics - earlier.panics,
            gossip_rounds: self.gossip_rounds - earlier.gossip_rounds,
            gossip_parcels: self.gossip_parcels - earlier.gossip_parcels,
            tasks_shed: self.tasks_shed - earlier.tasks_shed,
            balance_pulls: self.balance_pulls - earlier.balance_pulls,
            chase_hops_total: self.chase_hops_total - earlier.chase_hops_total,
            chased_parcels: self.chased_parcels - earlier.chased_parcels,
            chase_cap_violations: self.chase_cap_violations - earlier.chase_cap_violations,
            trace_events_recorded: self.trace_events_recorded - earlier.trace_events_recorded,
            trace_events_dropped: self.trace_events_dropped - earlier.trace_events_dropped,
            dir_lookups_local: self.dir_lookups_local - earlier.dir_lookups_local,
            dir_lookups_remote: self.dir_lookups_remote - earlier.dir_lookups_remote,
            dir_forwards: self.dir_forwards - earlier.dir_forwards,
            dir_repairs: self.dir_repairs - earlier.dir_repairs,
        }
    }
}

/// Send/receive accounting for one TCP peer (all zeros for the
/// in-process transport, which has no peers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PeerStats {
    /// The peer's locality id.
    pub peer: u16,
    /// Stream messages written toward the peer (parcels + frames +
    /// control).
    pub msgs_sent: u64,
    /// Bytes written toward the peer (bodies + stream headers).
    pub bytes_sent: u64,
    /// Multi-parcel frames among `msgs_sent`.
    pub frames_sent: u64,
    /// Stream messages received from the peer.
    pub msgs_recv: u64,
    /// Raw bytes read from the peer's connection.
    pub bytes_recv: u64,
    /// Times the outgoing connection to the peer was re-established
    /// after a write failure.
    pub reconnects: u64,
    /// Messages currently waiting in the peer's outbound send queue —
    /// a *gauge*, sampled at snapshot time (deltas keep the newer
    /// sample). A persistently high depth means the peer reads slower
    /// than this rank sends: backpressure is imminent.
    pub queue_depth: u64,
    /// High-watermark of bytes ever queued toward the peer at once — a
    /// *gauge* (deltas keep the newer sample). Compare against the
    /// transport's queue bound to see how close a slow peer has come to
    /// stalling this rank's senders.
    pub queue_bytes_hwm: u64,
}

/// Transport-level statistics: one entry per TCP peer; empty for the
/// in-process backend.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TransportStats {
    /// Per-peer counters, ascending by peer id (the own locality is
    /// absent — a process does not peer with itself).
    pub peers: Vec<PeerStats>,
}

/// Runtime-wide snapshot: one entry per locality plus totals.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Per-locality stats, indexed by locality id.
    pub localities: Vec<LocalityStats>,
    /// AGAS migrations recorded by explicit [`crate::runtime::Runtime::migrate_data`] calls.
    pub migrations_manual: u64,
    /// AGAS migrations initiated by the balancer (heat-driven pulls).
    pub migrations_balancer: u64,
    /// Parallel processes created over the runtime's lifetime (roots and
    /// subprocesses).
    pub processes_created: u64,
    /// Parallel processes cancelled (each subtree member counts once).
    pub processes_cancelled: u64,
    /// Exited-and-unreferenced process records reaped from the process
    /// table (the process-table GC).
    pub processes_reaped: u64,
    /// Per-peer transport counters (TCP backend only).
    pub transport: TransportStats,
}

impl StatsSnapshot {
    /// Sum across localities.
    pub fn total(&self) -> LocalityStats {
        let mut t = LocalityStats::default();
        for l in &self.localities {
            t.parcels_sent += l.parcels_sent;
            t.parcels_recv += l.parcels_recv;
            t.parcels_forwarded += l.parcels_forwarded;
            t.bytes_sent += l.bytes_sent;
            t.threads_executed += l.threads_executed;
            t.resumes += l.resumes;
            t.steals += l.steals;
            t.parks += l.parks;
            t.busy_ns += l.busy_ns;
            t.idle_ns += l.idle_ns;
            t.lco_events += l.lco_events;
            t.staged_executed += l.staged_executed;
            t.agas_cache_hits += l.agas_cache_hits;
            t.agas_cache_misses += l.agas_cache_misses;
            t.agas_directory_lookups += l.agas_directory_lookups;
            t.frames_sent += l.frames_sent;
            t.frames_recv += l.frames_recv;
            t.coalesced_parcels += l.coalesced_parcels;
            t.batch_flush_full += l.batch_flush_full;
            t.batch_flush_timer += l.batch_flush_timer;
            t.dead_parcels += l.dead_parcels;
            t.dead_hop_cap += l.dead_hop_cap;
            t.dead_unknown_action += l.dead_unknown_action;
            t.dead_handler_error += l.dead_handler_error;
            t.dead_panic += l.dead_panic;
            t.dead_decode += l.dead_decode;
            t.dead_cancelled += l.dead_cancelled;
            t.dead_transport += l.dead_transport;
            t.tasks_cancelled += l.tasks_cancelled;
            t.panics += l.panics;
            t.gossip_rounds += l.gossip_rounds;
            t.gossip_parcels += l.gossip_parcels;
            t.tasks_shed += l.tasks_shed;
            t.balance_pulls += l.balance_pulls;
            t.chase_hops_total += l.chase_hops_total;
            t.chased_parcels += l.chased_parcels;
            t.chase_cap_violations += l.chase_cap_violations;
            t.trace_events_recorded += l.trace_events_recorded;
            t.trace_events_dropped += l.trace_events_dropped;
            t.dir_lookups_local += l.dir_lookups_local;
            t.dir_lookups_remote += l.dir_lookups_remote;
            t.dir_forwards += l.dir_forwards;
            t.dir_repairs += l.dir_repairs;
        }
        t
    }

    /// Mean busy fraction across localities (unweighted).
    pub fn mean_busy_fraction(&self) -> f64 {
        if self.localities.is_empty() {
            return 0.0;
        }
        self.localities
            .iter()
            .map(LocalityStats::busy_fraction)
            .sum::<f64>()
            / self.localities.len() as f64
    }

    /// Interval delta against an earlier snapshot.
    pub fn delta_from(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            localities: self
                .localities
                .iter()
                .zip(earlier.localities.iter())
                .map(|(now, then)| now.delta_from(then))
                .collect(),
            migrations_manual: self.migrations_manual - earlier.migrations_manual,
            migrations_balancer: self.migrations_balancer - earlier.migrations_balancer,
            processes_created: self.processes_created - earlier.processes_created,
            processes_cancelled: self.processes_cancelled - earlier.processes_cancelled,
            processes_reaped: self.processes_reaped - earlier.processes_reaped,
            transport: TransportStats {
                peers: self
                    .transport
                    .peers
                    .iter()
                    .zip(earlier.transport.peers.iter())
                    .map(|(now, then)| PeerStats {
                        peer: now.peer,
                        msgs_sent: now.msgs_sent - then.msgs_sent,
                        bytes_sent: now.bytes_sent - then.bytes_sent,
                        frames_sent: now.frames_sent - then.frames_sent,
                        msgs_recv: now.msgs_recv - then.msgs_recv,
                        bytes_recv: now.bytes_recv - then.bytes_recv,
                        reconnects: now.reconnects - then.reconnects,
                        // Gauges, not counters: keep the newer sample.
                        queue_depth: now.queue_depth,
                        queue_bytes_hwm: now.queue_bytes_hwm,
                    })
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let c = LocalityCounters::default();
        bump!(c.parcels_sent);
        bump!(c.parcels_sent);
        bump!(c.bytes_sent, 100);
        let s = c.snapshot();
        assert_eq!(s.parcels_sent, 2);
        assert_eq!(s.bytes_sent, 100);
    }

    #[test]
    fn death_counting_by_cause() {
        use crate::error::FaultCause;
        let c = LocalityCounters::default();
        c.count_death(FaultCause::HopCap, 1);
        c.count_death(FaultCause::Panic, 1);
        c.count_death(FaultCause::Decode, 3);
        let s = c.snapshot();
        assert_eq!(s.dead_parcels, 5);
        assert_eq!(s.dead_hop_cap, 1);
        assert_eq!(s.dead_panic, 1);
        assert_eq!(s.dead_decode, 3);
        assert_eq!(s.dead_unknown_action, 0);
        assert_eq!(s.dead_handler_error, 0);
        assert_eq!(s.deaths_by_cause_total(), s.dead_parcels);
    }

    #[test]
    fn busy_fraction_bounds() {
        let mut s = LocalityStats::default();
        assert_eq!(s.busy_fraction(), 0.0);
        s.busy_ns = 75;
        s.idle_ns = 25;
        assert!((s.busy_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn batch_counter_ratios() {
        let s = LocalityStats {
            frames_sent: 4,
            coalesced_parcels: 12,
            agas_cache_hits: 3,
            agas_cache_misses: 1,
            ..Default::default()
        };
        assert!((s.parcels_per_frame() - 4.0).abs() < 1e-12);
        assert!((s.agas_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(LocalityStats::default().parcels_per_frame(), 0.0);
        assert_eq!(LocalityStats::default().agas_hit_rate(), 0.0);
    }

    #[test]
    fn totals_and_deltas() {
        let a = LocalityStats {
            parcels_sent: 5,
            busy_ns: 10,
            ..Default::default()
        };
        let b = LocalityStats {
            parcels_sent: 8,
            busy_ns: 30,
            ..Default::default()
        };
        let snap = StatsSnapshot {
            localities: vec![a, b],
            ..Default::default()
        };
        assert_eq!(snap.total().parcels_sent, 13);
        let later = StatsSnapshot {
            localities: vec![b, b],
            migrations_manual: 2,
            migrations_balancer: 5,
            processes_created: 3,
            processes_cancelled: 1,
            processes_reaped: 4,
            ..Default::default()
        };
        let d = later.delta_from(&snap);
        assert_eq!(d.localities[0].parcels_sent, 3);
        assert_eq!(d.localities[1].parcels_sent, 0);
        assert_eq!(d.migrations_manual, 2);
        assert_eq!(d.migrations_balancer, 5);
        assert_eq!(d.processes_created, 3);
        assert_eq!(d.processes_cancelled, 1);
        assert_eq!(d.processes_reaped, 4);
    }

    #[test]
    fn transport_stats_delta() {
        let then = StatsSnapshot {
            transport: TransportStats {
                peers: vec![PeerStats {
                    peer: 1,
                    msgs_sent: 10,
                    bytes_sent: 100,
                    queue_depth: 9,
                    queue_bytes_hwm: 512,
                    ..Default::default()
                }],
            },
            ..Default::default()
        };
        let now = StatsSnapshot {
            transport: TransportStats {
                peers: vec![PeerStats {
                    peer: 1,
                    msgs_sent: 25,
                    bytes_sent: 400,
                    reconnects: 1,
                    queue_depth: 2,
                    queue_bytes_hwm: 4096,
                    ..Default::default()
                }],
            },
            ..Default::default()
        };
        let d = now.delta_from(&then);
        assert_eq!(d.transport.peers[0].msgs_sent, 15);
        assert_eq!(d.transport.peers[0].bytes_sent, 300);
        assert_eq!(d.transport.peers[0].reconnects, 1);
        // Gauges carry the newer sample, not a difference.
        assert_eq!(d.transport.peers[0].queue_depth, 2);
        assert_eq!(d.transport.peers[0].queue_bytes_hwm, 4096);
    }

    #[test]
    fn empty_delta_ratios_are_zero_not_nan() {
        // A zero-length interval (or a freshly booted runtime) must
        // yield 0.0 ratios, never NaN: the metrics text page prints
        // these gauges verbatim and Prometheus-style parsers choke on
        // NaN. Pinned here so a future rewrite of the helpers cannot
        // quietly reintroduce 0/0.
        let snap = StatsSnapshot {
            localities: vec![LocalityStats::default(); 3],
            ..Default::default()
        };
        let d = snap.delta_from(&snap);
        assert_eq!(d.mean_busy_fraction(), 0.0);
        let t = d.total();
        for ratio in [
            t.busy_fraction(),
            t.parcels_per_frame(),
            t.mean_chase_len(),
            t.agas_hit_rate(),
        ] {
            assert_eq!(ratio, 0.0);
            assert!(ratio.is_finite());
        }
        for l in &d.localities {
            assert!(l.busy_fraction().is_finite());
            assert!(l.parcels_per_frame().is_finite());
            assert!(l.mean_chase_len().is_finite());
            assert!(l.agas_hit_rate().is_finite());
        }
        // An empty snapshot (no localities at all) is also NaN-free.
        assert_eq!(StatsSnapshot::default().mean_busy_fraction(), 0.0);
    }

    #[test]
    fn chase_len_mean() {
        let mut s = LocalityStats::default();
        assert_eq!(s.mean_chase_len(), 0.0);
        s.chase_hops_total = 9;
        s.chased_parcels = 4;
        assert!((s.mean_chase_len() - 2.25).abs() < 1e-12);
    }
}
