//! Local Control Objects — lightweight synchronization (§2.2).
//!
//! "A rich set of synchronization primitives is provided to facilitate
//! lightweight control and exploit a diversity of parallelism. LCOs
//! eliminate most uses of global barriers … Dataflow synchronization,
//! futures, and metathreads are examples … 'Depleted threads' provide a
//! kind of temporary state storage for suspended threads."
//!
//! An LCO is an addressable object (it has a [`Gid`]) that accumulates
//! *events* until a firing condition holds, then releases its *waiters*.
//! Waiters are exactly the paper's three consumers of control transfer:
//!
//! * **depleted threads** — continuation closures deposited by suspended
//!   PX-threads, resumed as fresh tasks at the LCO's locality;
//! * **continuation specifiers** — remote parcels waiting on the value
//!   (the `__lco_get` system action registers these);
//! * **external waiters** — OS threads outside the runtime blocking on a
//!   condition variable (the driver program).
//!
//! The concrete LCO kinds built here:
//!
//! | Kind | Fires when | Value |
//! |---|---|---|
//! | [`LcoBody::Future`] | `trigger` called once | the triggered value |
//! | [`LcoBody::AndGate`] | N triggers observed | unit |
//! | [`LcoBody::OrGate`] | first trigger | first value |
//! | [`LcoBody::Dataflow`] | all input slots filled | `combine(slots)` |
//! | [`LcoBody::Reduce`] | N contributions folded | folded value |
//! | semaphore ([`LcoCore::new_semaphore`]) | never "fires"; releases one waiter per permit | unit |
//!
//! Locking is per-object (`parking_lot::Mutex` around [`LcoCore`]); no
//! waiter code runs under the lock — operations return [`Activations`]
//! that the caller schedules after unlocking.
//!
//! Every kind can also become **poisoned** ([`LcoCore::poison`]): when a
//! producer the LCO was waiting on dies, the fault releases all current
//! and future waiters instead of leaving them hanging. A fault value
//! arriving through `trigger`/`trigger_slot`/`contribute` poisons rather
//! than fires, so faults propagate through LCO dependency chains.

use crate::action::Value;
use crate::error::{Fault, PxError, PxResult};
use crate::gid::Gid;
use crate::runtime::Ctx;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

/// A depleted-thread continuation: the saved state of a suspended
/// PX-thread, resumed with the LCO's value.
pub type DepletedThread = Box<dyn FnOnce(&mut Ctx<'_>, Value) + Send + 'static>;

/// Fold function for reduction LCOs.
pub type ReduceFn = Box<dyn Fn(Value, Value) -> Value + Send + 'static>;

/// Combine function for dataflow templates (all slots are `Some` when
/// called).
pub type CombineFn = Box<dyn Fn(&mut [Option<Value>]) -> Value + Send + 'static>;

/// Slot shared with an external OS thread blocked on an LCO.
#[derive(Debug, Default)]
pub struct ExtSlot {
    value: Mutex<Option<Value>>,
    cv: Condvar,
}

impl ExtSlot {
    /// Fill the slot and wake the waiting thread.
    pub fn fill(&self, v: Value) {
        let mut g = self.value.lock();
        *g = Some(v);
        self.cv.notify_all();
    }

    /// Block until the slot is filled. A fault value (the LCO was
    /// poisoned — its producer died) surfaces as [`PxError::Fault`].
    pub fn wait(&self) -> PxResult<Value> {
        let mut g = self.value.lock();
        loop {
            if let Some(v) = g.take() {
                return surface_fault(v);
            }
            self.cv.wait(&mut g);
        }
    }

    /// Block until the slot is filled or `timeout` elapses. `Ok(None)` on
    /// timeout; a fault fill surfaces as [`PxError::Fault`].
    pub fn wait_timeout(&self, timeout: Duration) -> PxResult<Option<Value>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.value.lock();
        loop {
            if let Some(v) = g.take() {
                return surface_fault(v).map(Some);
            }
            if self.cv.wait_until(&mut g, deadline).timed_out() {
                return g.take().map(surface_fault).transpose();
            }
        }
    }
}

/// Turn a fault value into the error it carries; pass payloads through.
fn surface_fault(v: Value) -> PxResult<Value> {
    match v.fault() {
        Some(f) => Err(PxError::Fault(f)),
        None => Ok(v),
    }
}

/// A consumer of an LCO's value.
pub enum Waiter {
    /// Suspended PX-thread resumed at the LCO's locality.
    Depleted(DepletedThread),
    /// Remote continuation specifier applied with the value.
    Cont(crate::parcel::Continuation),
    /// External OS thread.
    External(Arc<ExtSlot>),
}

impl std::fmt::Debug for Waiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Waiter::Depleted(_) => f.write_str("Waiter::Depleted"),
            Waiter::Cont(c) => write!(f, "Waiter::Cont({} steps)", c.steps.len()),
            Waiter::External(_) => f.write_str("Waiter::External"),
        }
    }
}

/// Waiter activations produced by an LCO operation, to be scheduled by the
/// caller once the object lock is released.
pub type Activations = Vec<(Waiter, Value)>;

/// Firing rule and in-flight event state of an LCO.
pub enum LcoBody {
    /// Single-assignment value (the classic future; "futures permit
    /// anonymous producer-consumer computing").
    Future,
    /// Counting join: fires with unit after `remaining` triggers.
    AndGate {
        /// Triggers still needed.
        remaining: u64,
    },
    /// First trigger wins; later triggers are ignored (not errors).
    OrGate,
    /// Dataflow template: fires when every input slot is filled.
    Dataflow {
        /// Input slots (indexed by `trigger_slot`).
        slots: Vec<Option<Value>>,
        /// Unfilled slot count.
        missing: usize,
        /// Produces the fired value from the filled slots.
        combine: CombineFn,
    },
    /// Fold `remaining` contributions, then fire with the accumulator.
    Reduce {
        /// Contributions still expected.
        remaining: u64,
        /// Current accumulator (starts as the seed).
        acc: Option<Value>,
        /// Fold function.
        fold: ReduceFn,
    },
    /// Counting semaphore: never becomes `Ready`; each release wakes one
    /// acquirer (FIFO). A 1-permit semaphore is the LCO mutex.
    Semaphore {
        /// Available permits.
        permits: u64,
        /// Acquirers waiting for a permit.
        queue: VecDeque<Waiter>,
    },
}

impl std::fmt::Debug for LcoBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LcoBody::Future => f.write_str("Future"),
            LcoBody::AndGate { remaining } => write!(f, "AndGate({remaining})"),
            LcoBody::OrGate => f.write_str("OrGate"),
            LcoBody::Dataflow { slots, missing, .. } => {
                write!(
                    f,
                    "Dataflow({}/{} filled)",
                    slots.len() - missing,
                    slots.len()
                )
            }
            LcoBody::Reduce { remaining, .. } => write!(f, "Reduce({remaining} left)"),
            LcoBody::Semaphore { permits, queue } => {
                write!(f, "Semaphore({permits} permits, {} queued)", queue.len())
            }
        }
    }
}

enum LcoState {
    Pending {
        waiters: Vec<Waiter>,
        body: LcoBody,
    },
    Ready(Value),
    /// A producer died before the firing condition was met: every current
    /// and future waiter receives the fault instead of a value.
    Poisoned(Fault),
}

/// The synchronized core of every LCO.
pub struct LcoCore {
    gid: Gid,
    state: LcoState,
    /// Creation stamp for the spawn→resolution latency instrument; set by
    /// the locality store at insert time only when metrics are on (`None`
    /// otherwise), consumed once at resolution.
    born: Option<std::time::Instant>,
}

impl std::fmt::Debug for LcoCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            LcoState::Pending { waiters, body } => f
                .debug_struct("LcoCore")
                .field("gid", &self.gid)
                .field("body", body)
                .field("waiters", &waiters.len())
                .finish(),
            LcoState::Ready(v) => f
                .debug_struct("LcoCore")
                .field("gid", &self.gid)
                .field("ready", v)
                .finish(),
            LcoState::Poisoned(fault) => f
                .debug_struct("LcoCore")
                .field("gid", &self.gid)
                .field("poisoned", fault)
                .finish(),
        }
    }
}

impl LcoCore {
    fn pending(gid: Gid, body: LcoBody) -> Self {
        LcoCore {
            gid,
            state: LcoState::Pending {
                waiters: Vec::new(),
                body,
            },
            born: None,
        }
    }

    /// Stamp the creation time (metrics on; called by the locality store
    /// right after construction, before the LCO is reachable).
    pub(crate) fn set_born(&mut self, at: std::time::Instant) {
        self.born = Some(at);
    }

    /// Consume the creation stamp if the LCO has resolved (fired or
    /// poisoned): the spawn→resolution latency, measured once on this
    /// locality's clock. `None` before resolution, after the first
    /// harvest, or when metrics were off at creation.
    pub(crate) fn take_resolve_latency(&mut self) -> Option<std::time::Duration> {
        match self.state {
            LcoState::Ready(_) | LcoState::Poisoned(_) => self.born.take().map(|b| b.elapsed()),
            LcoState::Pending { .. } => None,
        }
    }

    /// New future LCO.
    pub fn new_future(gid: Gid) -> Self {
        Self::pending(gid, LcoBody::Future)
    }

    /// New and-gate expecting `n` triggers (n = 0 fires on first waiter
    /// registration, holding unit).
    pub fn new_and_gate(gid: Gid, n: u64) -> Self {
        if n == 0 {
            LcoCore {
                gid,
                state: LcoState::Ready(Value::unit()),
                born: None,
            }
        } else {
            Self::pending(gid, LcoBody::AndGate { remaining: n })
        }
    }

    /// New or-gate (first trigger wins).
    pub fn new_or_gate(gid: Gid) -> Self {
        Self::pending(gid, LcoBody::OrGate)
    }

    /// New dataflow template with `n` input slots and a combine function
    /// (n = 0 has nothing to wait for and fires at creation, like the
    /// zero-count gate and reduction constructors — a pending zero-slot
    /// template could never fire and would hang its waiters).
    pub fn new_dataflow(gid: Gid, n: usize, combine: CombineFn) -> Self {
        if n == 0 {
            return LcoCore {
                gid,
                state: LcoState::Ready(combine(&mut [])),
                born: None,
            };
        }
        Self::pending(
            gid,
            LcoBody::Dataflow {
                slots: (0..n).map(|_| None).collect(),
                missing: n,
                combine,
            },
        )
    }

    /// New reduction over `n` contributions starting from `seed`.
    pub fn new_reduce(gid: Gid, n: u64, seed: Value, fold: ReduceFn) -> Self {
        if n == 0 {
            LcoCore {
                gid,
                state: LcoState::Ready(seed),
                born: None,
            }
        } else {
            Self::pending(
                gid,
                LcoBody::Reduce {
                    remaining: n,
                    acc: Some(seed),
                    fold,
                },
            )
        }
    }

    /// New counting semaphore with `permits` initial permits.
    pub fn new_semaphore(gid: Gid, permits: u64) -> Self {
        Self::pending(
            gid,
            LcoBody::Semaphore {
                permits,
                queue: VecDeque::new(),
            },
        )
    }

    /// The LCO's global name.
    #[inline]
    pub fn gid(&self) -> Gid {
        self.gid
    }

    /// True once the LCO has fired.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, LcoState::Ready(_))
    }

    /// True once the LCO has been poisoned (a producer died).
    pub fn is_poisoned(&self) -> bool {
        matches!(self.state, LcoState::Poisoned(_))
    }

    /// The poisoning fault, if any.
    pub fn poison_fault(&self) -> Option<&Fault> {
        match &self.state {
            LcoState::Poisoned(f) => Some(f),
            _ => None,
        }
    }

    /// Peek at the fired value.
    pub fn value(&self) -> Option<Value> {
        match &self.state {
            LcoState::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }

    fn fire(&mut self, value: Value) -> Activations {
        let waiters = match &mut self.state {
            LcoState::Pending { waiters, .. } => std::mem::take(waiters),
            LcoState::Ready(_) | LcoState::Poisoned(_) => Vec::new(),
        };
        self.state = LcoState::Ready(value.clone());
        waiters.into_iter().map(|w| (w, value.clone())).collect()
    }

    /// Poison the LCO: a producer it was waiting on died. Every current
    /// waiter — value waiters *and* queued semaphore acquirers — is
    /// released exactly once with the fault, and every future waiter
    /// receives it immediately on registration. Poisoning an LCO that has
    /// already fired (or is already poisoned) is a no-op: its waiters
    /// were satisfied, and the fault was counted where it was raised.
    pub fn poison(&mut self, fault: Fault) -> Activations {
        match &mut self.state {
            LcoState::Ready(_) | LcoState::Poisoned(_) => Vec::new(),
            LcoState::Pending { waiters, body } => {
                let mut all = std::mem::take(waiters);
                if let LcoBody::Semaphore { queue, .. } = body {
                    all.extend(std::mem::take(queue));
                }
                let v = Value::error(&fault);
                self.state = LcoState::Poisoned(fault);
                all.into_iter().map(|w| (w, v.clone())).collect()
            }
        }
    }

    /// Deliver a trigger event. Semantics depend on the body; see the
    /// module table. Errors on double-triggering single-assignment LCOs.
    /// A *fault* value does not trigger — it poisons: gates, reductions,
    /// and futures all propagate an upstream death to their waiters
    /// instead of counting it as a completion.
    pub fn trigger(&mut self, value: Value) -> PxResult<Activations> {
        if let Some(f) = value.fault() {
            return Ok(self.poison(f));
        }
        match &mut self.state {
            LcoState::Ready(_) => match self_body_tolerates_retrigger(&self.state) {
                true => Ok(Vec::new()),
                false => Err(PxError::AlreadyTriggered(self.gid)),
            },
            LcoState::Poisoned(f) => Err(PxError::Fault(f.clone())),
            LcoState::Pending { body, .. } => match body {
                LcoBody::Future => Ok(self.fire(value)),
                LcoBody::AndGate { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        Ok(self.fire(Value::unit()))
                    } else {
                        Ok(Vec::new())
                    }
                }
                LcoBody::OrGate => Ok(self.fire(value)),
                LcoBody::Dataflow { .. } => Err(PxError::WrongObjectKind(self.gid)),
                LcoBody::Reduce { .. } => self.contribute(value),
                LcoBody::Semaphore { .. } => Ok(self.release()),
            },
        }
    }

    /// Fill dataflow slot `idx`. A fault value poisons the whole template
    /// (one dead input means the combine can never run).
    pub fn trigger_slot(&mut self, idx: usize, value: Value) -> PxResult<Activations> {
        if let Some(f) = value.fault() {
            return Ok(self.poison(f));
        }
        match &mut self.state {
            LcoState::Ready(_) => Err(PxError::AlreadyTriggered(self.gid)),
            LcoState::Poisoned(f) => Err(PxError::Fault(f.clone())),
            LcoState::Pending { body, .. } => match body {
                LcoBody::Dataflow {
                    slots,
                    missing,
                    combine,
                } => {
                    if idx >= slots.len() {
                        return Err(PxError::WrongObjectKind(self.gid));
                    }
                    if slots[idx].is_some() {
                        return Err(PxError::AlreadyTriggered(self.gid));
                    }
                    slots[idx] = Some(value);
                    *missing -= 1;
                    if *missing == 0 {
                        let v = combine(slots);
                        Ok(self.fire(v))
                    } else {
                        Ok(Vec::new())
                    }
                }
                _ => Err(PxError::WrongObjectKind(self.gid)),
            },
        }
    }

    /// Fold a contribution into a reduction LCO. A fault contribution
    /// poisons the reduction (the fold can never complete its count).
    pub fn contribute(&mut self, value: Value) -> PxResult<Activations> {
        if let Some(f) = value.fault() {
            return Ok(self.poison(f));
        }
        match &mut self.state {
            LcoState::Ready(_) => Err(PxError::AlreadyTriggered(self.gid)),
            LcoState::Poisoned(f) => Err(PxError::Fault(f.clone())),
            LcoState::Pending { body, .. } => match body {
                LcoBody::Reduce {
                    remaining,
                    acc,
                    fold,
                } => {
                    let cur = acc.take().expect("reduce accumulator present");
                    *acc = Some(fold(cur, value));
                    *remaining -= 1;
                    if *remaining == 0 {
                        let v = acc.take().expect("accumulator");
                        Ok(self.fire(v))
                    } else {
                        Ok(Vec::new())
                    }
                }
                _ => Err(PxError::WrongObjectKind(self.gid)),
            },
        }
    }

    /// Register a waiter for the fired value. If the LCO already fired,
    /// the activation is returned immediately; if it is poisoned, the
    /// waiter is released immediately with the fault.
    pub fn add_waiter(&mut self, w: Waiter) -> Activations {
        match &mut self.state {
            LcoState::Ready(v) => vec![(w, v.clone())],
            LcoState::Poisoned(f) => vec![(w, Value::error(f))],
            LcoState::Pending { waiters, .. } => {
                waiters.push(w);
                Vec::new()
            }
        }
    }

    /// Semaphore acquire: runs (or queues) the waiter when a permit is
    /// available. On a poisoned semaphore the waiter is released
    /// immediately with the fault instead of queueing forever.
    pub fn acquire(&mut self, w: Waiter) -> PxResult<Activations> {
        match &mut self.state {
            LcoState::Pending {
                body: LcoBody::Semaphore { permits, queue },
                ..
            } => {
                if *permits > 0 {
                    *permits -= 1;
                    Ok(vec![(w, Value::unit())])
                } else {
                    queue.push_back(w);
                    Ok(Vec::new())
                }
            }
            LcoState::Poisoned(f) => Ok(vec![(w, Value::error(f))]),
            _ => Err(PxError::WrongObjectKind(self.gid)),
        }
    }

    /// Semaphore release: wakes the oldest queued acquirer or banks a
    /// permit.
    pub fn release(&mut self) -> Activations {
        match &mut self.state {
            LcoState::Pending {
                body: LcoBody::Semaphore { permits, queue },
                ..
            } => {
                if let Some(w) = queue.pop_front() {
                    vec![(w, Value::unit())]
                } else {
                    *permits += 1;
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }
}

// Or-gates tolerate late triggers by design; everything else is
// single-assignment once Ready.
fn self_body_tolerates_retrigger(state: &LcoState) -> bool {
    // After firing the body is gone; we conservatively allow retrigger only
    // for unit values — covers or-gates and late and-gate arrivals caused by
    // benign races (e.g. broadcast cancellation). Single-assignment futures
    // carry data, and double data triggers are real bugs.
    match state {
        LcoState::Ready(v) => v.is_empty(),
        _ => false,
    }
}

/// Typed handle to a future LCO holding a `T`.
///
/// The handle is `Copy`-cheap (a GID plus phantom type) and can be passed
/// freely; the value lives at the future's locality.
pub struct FutureRef<T> {
    gid: Gid,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for FutureRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FutureRef<T> {}

impl<T> std::fmt::Debug for FutureRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FutureRef({})", self.gid)
    }
}

impl<T: serde::Serialize + serde::de::DeserializeOwned> FutureRef<T> {
    /// Wrap an existing LCO GID (the GID must identify a future holding a
    /// `T` — this is the untyped escape hatch).
    pub fn from_gid(gid: Gid) -> Self {
        FutureRef {
            gid,
            _t: PhantomData,
        }
    }

    /// The future's global name.
    #[inline]
    pub fn gid(&self) -> Gid {
        self.gid
    }

    /// Block the calling OS thread until the future fires (external
    /// driver use only — PX-threads suspend instead of blocking).
    pub fn wait(&self, rt: &crate::runtime::Runtime) -> PxResult<T> {
        rt.wait_future(*self)
    }

    /// As [`FutureRef::wait`] with a timeout; `None` on timeout.
    pub fn wait_timeout(
        &self,
        rt: &crate::runtime::Runtime,
        timeout: Duration,
    ) -> PxResult<Option<T>> {
        rt.wait_future_timeout(*self, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gid::{GidKind, LocalityId};

    fn gid(n: u64) -> Gid {
        Gid::new(LocalityId(0), GidKind::Lco, n)
    }

    fn val(n: u64) -> Value {
        Value::encode(&n).unwrap()
    }

    #[test]
    fn future_fires_once() {
        let mut f = LcoCore::new_future(gid(1));
        assert!(!f.is_ready());
        let acts = f.trigger(val(9)).unwrap();
        assert!(acts.is_empty(), "no waiters yet");
        assert!(f.is_ready());
        assert_eq!(f.value().unwrap().decode::<u64>().unwrap(), 9);
        assert!(matches!(
            f.trigger(val(10)),
            Err(PxError::AlreadyTriggered(_))
        ));
    }

    #[test]
    fn waiter_before_and_after_fire() {
        let mut f = LcoCore::new_future(gid(1));
        let none = f.add_waiter(Waiter::Cont(crate::parcel::Continuation::none()));
        assert!(none.is_empty());
        let acts = f.trigger(val(3)).unwrap();
        assert_eq!(acts.len(), 1);
        // Late waiter gets the value immediately.
        let late = f.add_waiter(Waiter::Cont(crate::parcel::Continuation::none()));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].1.decode::<u64>().unwrap(), 3);
    }

    #[test]
    fn and_gate_counts() {
        let mut g = LcoCore::new_and_gate(gid(2), 3);
        assert!(g.trigger(Value::unit()).unwrap().is_empty());
        assert!(g.trigger(Value::unit()).unwrap().is_empty());
        assert!(!g.is_ready());
        g.trigger(Value::unit()).unwrap();
        assert!(g.is_ready());
        // Late unit trigger tolerated (benign race).
        assert!(g.trigger(Value::unit()).unwrap().is_empty());
    }

    #[test]
    fn and_gate_zero_is_ready() {
        let g = LcoCore::new_and_gate(gid(3), 0);
        assert!(g.is_ready());
    }

    #[test]
    fn or_gate_first_wins() {
        let mut g = LcoCore::new_or_gate(gid(4));
        g.trigger(val(1)).unwrap();
        assert_eq!(g.value().unwrap().decode::<u64>().unwrap(), 1);
        // Later triggers ignored only if unit… data retrigger is an error.
        assert!(g.trigger(val(2)).is_err());
    }

    #[test]
    fn dataflow_fires_when_all_slots_filled() {
        let combine: CombineFn = Box::new(|slots| {
            let sum: u64 = slots
                .iter_mut()
                .map(|s| s.take().unwrap().decode::<u64>().unwrap())
                .sum();
            Value::encode(&sum).unwrap()
        });
        let mut d = LcoCore::new_dataflow(gid(5), 3, combine);
        d.trigger_slot(0, val(10)).unwrap();
        d.trigger_slot(2, val(30)).unwrap();
        assert!(!d.is_ready());
        d.trigger_slot(1, val(2)).unwrap();
        assert!(d.is_ready());
        assert_eq!(d.value().unwrap().decode::<u64>().unwrap(), 42);
    }

    #[test]
    fn dataflow_rejects_double_slot() {
        let combine: CombineFn = Box::new(|_| Value::unit());
        let mut d = LcoCore::new_dataflow(gid(6), 2, combine);
        d.trigger_slot(0, val(1)).unwrap();
        assert!(d.trigger_slot(0, val(1)).is_err());
        assert!(d.trigger_slot(5, val(1)).is_err());
    }

    #[test]
    fn reduce_folds_in_any_interleaving() {
        let fold: ReduceFn = Box::new(|a, b| {
            let x: u64 = a.decode().unwrap();
            let y: u64 = b.decode().unwrap();
            Value::encode(&(x + y)).unwrap()
        });
        let mut r = LcoCore::new_reduce(gid(7), 4, val(0), fold);
        for i in 1..=4u64 {
            r.contribute(val(i)).unwrap();
        }
        assert_eq!(r.value().unwrap().decode::<u64>().unwrap(), 10);
    }

    #[test]
    fn semaphore_permit_accounting() {
        let mut s = LcoCore::new_semaphore(gid(8), 1);
        // First acquire proceeds immediately.
        let a = s
            .acquire(Waiter::Cont(crate::parcel::Continuation::none()))
            .unwrap();
        assert_eq!(a.len(), 1);
        // Second queues.
        let b = s
            .acquire(Waiter::Cont(crate::parcel::Continuation::none()))
            .unwrap();
        assert!(b.is_empty());
        // Release hands the permit to the queued waiter, FIFO.
        let rel = s.release();
        assert_eq!(rel.len(), 1);
        // Release with empty queue banks a permit.
        assert!(s.release().is_empty());
        let c = s
            .acquire(Waiter::Cont(crate::parcel::Continuation::none()))
            .unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn trigger_on_dataflow_is_type_error() {
        let combine: CombineFn = Box::new(|_| Value::unit());
        let mut d = LcoCore::new_dataflow(gid(9), 1, combine);
        assert!(matches!(
            d.trigger(val(0)),
            Err(PxError::WrongObjectKind(_))
        ));
    }

    #[test]
    fn ext_slot_fill_then_wait() {
        let slot = Arc::new(ExtSlot::default());
        slot.fill(val(5));
        assert_eq!(slot.wait().unwrap().decode::<u64>().unwrap(), 5);
    }

    #[test]
    fn ext_slot_cross_thread() {
        let slot = Arc::new(ExtSlot::default());
        let s2 = slot.clone();
        let h = std::thread::spawn(move || s2.wait().unwrap().decode::<u64>().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        slot.fill(val(77));
        assert_eq!(h.join().unwrap(), 77);
    }

    #[test]
    fn ext_slot_timeout() {
        let slot = ExtSlot::default();
        assert!(slot
            .wait_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
    }

    #[test]
    fn ext_slot_fault_fill_surfaces_error() {
        let slot = ExtSlot::default();
        let f = sample_fault();
        slot.fill(Value::error(&f));
        match slot.wait_timeout(Duration::from_secs(1)) {
            Err(PxError::Fault(got)) => assert_eq!(got, f),
            other => panic!("expected fault, got {other:?}"),
        }
        slot.fill(Value::error(&f));
        assert!(matches!(slot.wait(), Err(PxError::Fault(_))));
    }

    fn sample_fault() -> Fault {
        Fault::new(
            crate::error::FaultCause::Panic,
            crate::action::ActionId::of("t/dead"),
            gid(99),
            "producer died",
        )
    }

    #[test]
    fn poison_releases_current_and_future_waiters() {
        let mut fu = LcoCore::new_future(gid(20));
        assert!(fu
            .add_waiter(Waiter::Cont(crate::parcel::Continuation::none()))
            .is_empty());
        let acts = fu.poison(sample_fault());
        assert_eq!(acts.len(), 1, "current waiter released");
        assert!(acts[0].1.is_fault());
        assert!(fu.is_poisoned());
        assert!(!fu.is_ready());
        assert_eq!(fu.poison_fault().unwrap(), &sample_fault());
        // Future waiters resolve immediately with the same fault.
        let late = fu.add_waiter(Waiter::Cont(crate::parcel::Continuation::none()));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].1.fault().unwrap(), sample_fault());
        // Triggers after poison surface the fault to the triggerer.
        assert!(matches!(fu.trigger(val(1)), Err(PxError::Fault(_))));
    }

    #[test]
    fn fault_trigger_poisons_gates_and_reductions() {
        let mut g = LcoCore::new_and_gate(gid(21), 3);
        g.trigger(Value::unit()).unwrap();
        let acts = g.trigger(Value::error(&sample_fault())).unwrap();
        assert!(acts.is_empty(), "no waiters yet");
        assert!(g.is_poisoned(), "a dead contributor poisons the gate");

        let fold: ReduceFn = Box::new(|a, _| a);
        let mut r = LcoCore::new_reduce(gid(22), 2, val(0), fold);
        r.contribute(Value::error(&sample_fault())).unwrap();
        assert!(r.is_poisoned());

        let combine: CombineFn = Box::new(|_| Value::unit());
        let mut d = LcoCore::new_dataflow(gid(23), 2, combine);
        d.trigger_slot(1, Value::error(&sample_fault())).unwrap();
        assert!(d.is_poisoned());
    }

    #[test]
    fn poison_after_fire_is_noop() {
        let mut fu = LcoCore::new_future(gid(24));
        fu.trigger(val(8)).unwrap();
        assert!(fu.poison(sample_fault()).is_empty());
        assert!(fu.is_ready(), "a late fault cannot un-fire an LCO");
        assert_eq!(fu.value().unwrap().decode::<u64>().unwrap(), 8);
        // Double poison is equally a no-op.
        let mut p = LcoCore::new_future(gid(25));
        p.poison(sample_fault());
        assert!(p.poison(sample_fault()).is_empty());
    }

    #[test]
    fn poison_drains_semaphore_queue() {
        let mut s = LcoCore::new_semaphore(gid(26), 0);
        s.acquire(Waiter::Cont(crate::parcel::Continuation::none()))
            .unwrap();
        s.acquire(Waiter::External(Arc::new(ExtSlot::default())))
            .unwrap();
        let acts = s.poison(sample_fault());
        assert_eq!(acts.len(), 2, "queued acquirers released with the fault");
        assert!(acts.iter().all(|(_, v)| v.is_fault()));
        // A later acquire resolves immediately with the fault, not a hang.
        let late = s
            .acquire(Waiter::Cont(crate::parcel::Continuation::none()))
            .unwrap();
        assert_eq!(late.len(), 1);
        assert!(late[0].1.is_fault());
        assert!(s.release().is_empty());
    }

    #[test]
    fn zero_count_lcos_fire_at_creation() {
        assert!(LcoCore::new_and_gate(gid(27), 0).is_ready());
        let fold: ReduceFn = Box::new(|a, _| a);
        let r = LcoCore::new_reduce(gid(28), 0, val(3), fold);
        assert!(r.is_ready());
        assert_eq!(r.value().unwrap().decode::<u64>().unwrap(), 3);
        let combine: CombineFn = Box::new(|slots| {
            assert!(slots.is_empty());
            Value::encode(&11u64).unwrap()
        });
        let d = LcoCore::new_dataflow(gid(29), 0, combine);
        assert!(d.is_ready(), "zero-slot dataflow must not hang its waiters");
        assert_eq!(d.value().unwrap().decode::<u64>().unwrap(), 11);
    }
}
