//! Echo: split-phase copy semantics without global cache coherence (§2.2).
//!
//! "ParalleX does not assume cache coherency outside of the domain of the
//! locality even though it has a global name space. When a writable
//! variable is to be used by many separate execution points during the
//! same temporal interval, ParalleX may assert a copy semantics called
//! 'echo'. This construct identifies the tree of equivalent locations all
//! of which are to be operated upon as if a single value … Echo is a split
//! phase operation. Using it requires that a thread defer committing side
//! effects until it gets an acknowledgement that the value it used is the
//! current one. This permits overlap between coherency verification and
//! continued computation with the latest known value."
//!
//! Implementation:
//!
//! * An **echo tree** has a *root* node (the authority, serializing
//!   updates) and *replica* nodes at other localities, connected
//!   parent→children. Every node holds `(value, version)`.
//! * **Reads** are local and free: [`read_local`] returns the replica's
//!   current value and version — possibly stale, by design.
//! * **Updates** go to the root ([`update`]): the root bumps its version
//!   and propagates `(version, value)` down the tree asynchronously with
//!   parcels. There is *no invalidation round-trip* — this is copy
//!   (update) semantics, not coherence.
//! * **Split-phase commit** ([`commit`]): a thread that computed with a
//!   replica value sends a validation parcel carrying the version it used;
//!   the root replies *valid* (version still current → commit side
//!   effects) or *stale* (here is the current `(version, value)` → retry).
//!   The thread keeps computing between issue and reply — that is the
//!   overlap the paper claims, and experiment E5 measures it.

use crate::action::Value;
use crate::error::{FaultCause, PxError, PxResult};
use crate::gid::{Gid, GidKind, LocalityId};
use crate::locality::{Locality, Stored};
use crate::parcel::{Continuation, Parcel};
use crate::runtime::{Ctx, Runtime, RuntimeInner};
use crate::sched::sys;
use parking_lot::Mutex;
use px_wire::{WireReader, WireWriter};
use serde::{de::DeserializeOwned, Serialize};
use std::sync::Arc;

/// One node of an echo tree.
#[derive(Debug)]
pub struct EchoNode {
    /// This node's name.
    pub gid: Gid,
    /// Root of the tree (self for the root).
    pub root: Gid,
    /// Children to propagate updates to.
    pub children: Vec<Gid>,
    /// Current value bytes.
    pub value: Value,
    /// Version of `value` (root assigns versions).
    pub version: u64,
    /// Root only: count of validation requests answered "stale".
    pub stale_validations: u64,
    /// Root only: count answered "valid".
    pub ok_validations: u64,
}

/// Handle to an echo tree: the root GID plus one replica GID per locality.
#[derive(Debug, Clone)]
pub struct EchoTreeRef {
    /// Root node (authority).
    pub root: Gid,
    /// Node at each locality, indexed by locality id (the root's locality
    /// maps to the root itself).
    pub node_at: Vec<Gid>,
}

impl EchoTreeRef {
    /// The tree node resident at `loc` (read there for locality-free
    /// reads).
    pub fn local_node(&self, loc: LocalityId) -> Gid {
        self.node_at[loc.0 as usize]
    }
}

/// Build an echo tree rooted at `root_loc` spanning all localities, with
/// fan-out `arity` (a binary tree for `arity = 2`). Control-plane
/// operation: inserts nodes directly into the stores.
pub fn create_tree<T: Serialize>(
    rt: &Runtime,
    root_loc: LocalityId,
    arity: usize,
    initial: &T,
) -> PxResult<EchoTreeRef> {
    let inner = rt.inner();
    let n = inner.localities.len();
    let value = Value::encode(initial)?;
    assert!(arity >= 1, "echo tree arity must be >= 1");

    // Breadth-first shape: order localities with the root first, then
    // assign children by index arithmetic.
    let mut order: Vec<LocalityId> = Vec::with_capacity(n);
    order.push(root_loc);
    for i in 0..n {
        let id = LocalityId(i as u16);
        if id != root_loc {
            order.push(id);
        }
    }

    // Allocate GIDs.
    let gids: Vec<Gid> = order
        .iter()
        .map(|&l| inner.locality(l).alloc.alloc(GidKind::Echo))
        .collect();
    let root_gid = gids[0];

    // Insert nodes with children wired by BFS position.
    for (pos, (&l, &gid)) in order.iter().zip(gids.iter()).enumerate() {
        let children: Vec<Gid> = (1..=arity)
            .map(|k| pos * arity + k)
            .take_while(|&c| c < n)
            .map(|c| gids[c])
            .collect();
        let node = EchoNode {
            gid,
            root: root_gid,
            children,
            value: value.clone(),
            version: 1,
            stale_validations: 0,
            ok_validations: 0,
        };
        inner
            .locality(l)
            .insert_at(gid, Stored::Echo(Arc::new(Mutex::new(node))));
    }

    let mut node_at = vec![root_gid; n];
    for (&l, &gid) in order.iter().zip(gids.iter()) {
        node_at[l.0 as usize] = gid;
    }
    Ok(EchoTreeRef {
        root: root_gid,
        node_at,
    })
}

/// Read the local replica: `(value, version)`. Never blocks, never
/// communicates; staleness is bounded by propagation delay.
pub fn read_local<T: DeserializeOwned>(loc: &Locality, node: Gid) -> PxResult<(T, u64)> {
    match loc.get(node) {
        Some(Stored::Echo(n)) => {
            let g = n.lock();
            Ok((g.value.decode()?, g.version))
        }
        Some(_) => Err(PxError::WrongObjectKind(node)),
        None => Err(PxError::NoSuchObject(node)),
    }
}

/// Issue an update: route the new value to the root, which assigns the
/// next version and propagates down the tree. Fire-and-forget; use
/// [`commit`] when the writer needs the split-phase acknowledgement.
pub fn update<T: Serialize>(
    rt: &Arc<RuntimeInner>,
    from: LocalityId,
    root: Gid,
    value: &T,
) -> PxResult<()> {
    let p = Parcel::new(
        root,
        sys::ECHO_UPDATE,
        Value::encode(value)?,
        Continuation::none(),
    );
    rt.send_parcel(from, p);
    Ok(())
}

/// [`update`] from inside a PX-thread.
pub fn update_ctx<T: Serialize>(ctx: &mut Ctx<'_>, root: Gid, value: &T) -> PxResult<()> {
    let here = ctx.here();
    update(ctx.rt_inner(), here, root, value)
}

/// The outcome of a split-phase validation.
#[derive(Debug, Clone)]
pub enum CommitOutcome<T> {
    /// The version used is still current: commit your side effects.
    Valid,
    /// Stale: here is the current version and value; recompute.
    Stale {
        /// Current version at the root.
        version: u64,
        /// Current value at the root.
        value: T,
    },
}

/// Split-phase commit from inside a PX-thread: sends a validation parcel
/// for `used_version` and *suspends* the continuation `k` on the reply.
/// The worker is free to run other threads while the validation is in
/// flight (the overlap E5 measures).
///
/// `k` always runs: with `Ok(outcome)` when the root answered, or with
/// `Err(PxError::Fault(_))` when the validation parcel died (root freed,
/// hop cap, …) — the continuation must not be silently dropped, or the
/// thread's downstream waiters would hang exactly the way dead parcels
/// used to hang them.
pub fn commit<T, K>(ctx: &mut Ctx<'_>, root: Gid, used_version: u64, k: K) -> PxResult<()>
where
    T: DeserializeOwned + 'static,
    K: FnOnce(&mut Ctx<'_>, PxResult<CommitOutcome<T>>) + Send + 'static,
{
    // Local future receives the root's reply.
    let reply = ctx.locality().new_future_lco();
    let mut w = WireWriter::with_capacity(8);
    w.put_u64(used_version);
    let p = Parcel::new(
        root,
        sys::ECHO_VALIDATE,
        Value::from_bytes(w.into_bytes()),
        Continuation::set(reply),
    );
    ctx.rt_inner().send_parcel(ctx.here(), p);
    ctx.when_ready(reply, move |ctx, v| {
        let outcome = match v.fault() {
            // The validation parcel died; the death was counted and
            // dead-lettered where it was raised, and k observes it here.
            Some(f) => Err(PxError::Fault(f)),
            None => decode_validation::<T>(&v),
        };
        k(ctx, outcome);
    });
    Ok(())
}

/// Blocking variant of [`commit`] for external driver threads.
pub fn commit_blocking<T: DeserializeOwned + 'static>(
    rt: &Runtime,
    from: LocalityId,
    root: Gid,
    used_version: u64,
) -> PxResult<CommitOutcome<T>> {
    let inner = rt.inner();
    let reply = inner.locality(from).new_future_lco();
    let mut w = WireWriter::with_capacity(8);
    w.put_u64(used_version);
    let p = Parcel::new(
        root,
        sys::ECHO_VALIDATE,
        Value::from_bytes(w.into_bytes()),
        Continuation::set(reply),
    );
    inner.send_parcel(from, p);
    let v: Value = rt.wait_value(reply)?;
    decode_validation::<T>(&v)
}

// Reply framing: u8 tag (1 = valid, 0 = stale) ++ u64 version ++ value
// bytes (stale only).
fn decode_validation<T: DeserializeOwned>(v: &Value) -> PxResult<CommitOutcome<T>> {
    let mut r = WireReader::new(v.bytes());
    let tag = r.get_u8()?;
    let version = r.get_u64()?;
    if tag == 1 {
        Ok(CommitOutcome::Valid)
    } else {
        let rest = r.get_bytes(r.remaining())?;
        Ok(CommitOutcome::Stale {
            version,
            value: Value::from_bytes(rest.to_vec()).decode()?,
        })
    }
}

/// System-parcel handler for echo operations (called from the scheduler).
/// Dead paths kill the parcel loudly (see [`crate::sched::kill_parcel`])
/// so a blocked [`commit_blocking`] caller gets a fault, not a hang.
pub(crate) fn handle_sys(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) {
    let node = match loc.get(p.dest) {
        Some(Stored::Echo(n)) => n,
        other => {
            let msg = match other {
                Some(_) => format!("{} is not an echo node", p.dest),
                None => format!("no echo node {} here", p.dest),
            };
            crate::sched::kill_parcel(rt, loc, p, FaultCause::HandlerError, msg);
            return;
        }
    };
    if p.action == sys::ECHO_UPDATE {
        // Root: assign next version, apply, propagate.
        let (version, value, children) = {
            let mut g = node.lock();
            debug_assert_eq!(g.root, g.gid, "updates must arrive at the root");
            g.version += 1;
            g.value = p.payload.clone();
            (g.version, g.value.clone(), g.children.clone())
        };
        propagate(rt, loc, version, &value, &children);
    } else if p.action == sys::ECHO_PROP {
        // Child: apply if newer, keep propagating.
        let mut r = WireReader::new(p.payload.bytes());
        let Ok(version) = r.get_u64() else {
            let msg = "echo propagation missing version".to_string();
            crate::sched::kill_parcel(rt, loc, p, FaultCause::Decode, msg);
            return;
        };
        let Ok(rest) = r.get_bytes(r.remaining()) else {
            let msg = "echo propagation payload truncated".to_string();
            crate::sched::kill_parcel(rt, loc, p, FaultCause::Decode, msg);
            return;
        };
        let value = Value::from_bytes(rest.to_vec());
        let children = {
            let mut g = node.lock();
            if version <= g.version {
                // Out-of-order propagation: an older update arrived late.
                // Newer value already applied; stop this branch.
                return;
            }
            g.version = version;
            g.value = value.clone();
            g.children.clone()
        };
        propagate(rt, loc, version, &value, &children);
    } else {
        // ECHO_VALIDATE: root answers valid/stale against current version.
        let mut r = WireReader::new(p.payload.bytes());
        let Ok(used) = r.get_u64() else {
            let msg = "echo validation missing version".to_string();
            crate::sched::kill_parcel(rt, loc, p, FaultCause::Decode, msg);
            return;
        };
        let reply = {
            let mut g = node.lock();
            let mut w = WireWriter::with_capacity(16 + g.value.len());
            if used == g.version {
                g.ok_validations += 1;
                w.put_u8(1);
                w.put_u64(g.version);
            } else {
                g.stale_validations += 1;
                w.put_u8(0);
                w.put_u64(g.version);
                w.put_bytes(g.value.bytes());
            }
            Value::from_bytes(w.into_bytes())
        };
        crate::sched::apply_continuation(rt, loc, p.cont, reply, p.trace);
    }
}

fn propagate(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    version: u64,
    value: &Value,
    children: &[Gid],
) {
    for &child in children {
        let mut w = WireWriter::with_capacity(8 + value.len());
        w.put_u64(version);
        w.put_bytes(value.bytes());
        let p = Parcel::new(
            child,
            sys::ECHO_PROP,
            Value::from_bytes(w.into_bytes()),
            Continuation::none(),
        );
        rt.send_parcel(loc.id, p);
    }
}

/// Root-side validation statistics `(ok, stale)` for experiment output.
pub fn validation_stats(rt: &Runtime, root: Gid) -> PxResult<(u64, u64)> {
    let loc = rt.inner().locality(root.birthplace());
    match loc.get(root) {
        Some(Stored::Echo(n)) => {
            let g = n.lock();
            Ok((g.ok_validations, g.stale_validations))
        }
        Some(_) => Err(PxError::WrongObjectKind(root)),
        None => Err(PxError::NoSuchObject(root)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_reply_framing() {
        // valid
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u64(5);
        let v = Value::from_bytes(w.into_bytes());
        match decode_validation::<u64>(&v).unwrap() {
            CommitOutcome::Valid => {}
            other => panic!("expected Valid, got {other:?}"),
        }
        // stale with payload
        let mut w = WireWriter::new();
        w.put_u8(0);
        w.put_u64(9);
        w.put_bytes(Value::encode(&123u64).unwrap().bytes());
        let v = Value::from_bytes(w.into_bytes());
        match decode_validation::<u64>(&v).unwrap() {
            CommitOutcome::Stale { version, value } => {
                assert_eq!(version, 9);
                assert_eq!(value, 123);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }
}
