//! Fast hashing for GID-keyed maps.
//!
//! The perf guide recommends an FxHash-style multiplicative hasher for
//! integer-keyed hot maps (SipHash costs ~4× more for 8-byte keys and
//! HashDoS is not a concern inside a runtime). This is a from-scratch
//! implementation of the same word-at-a-time multiply-rotate scheme used by
//! rustc's `FxHasher`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (FxHash scheme).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

/// 64-bit golden-ratio constant used by the Fx scheme.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// FNV-1a over a string — used for stable [`crate::action::ActionId`]
/// values derived from action names (stable across processes, unlike
/// `TypeId`).
#[inline]
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim, just a smoke test that nearby
        // integers spread.
        let h: Vec<u64> = (0u64..64).map(hash_one).collect();
        let set: std::collections::HashSet<_> = h.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("parallex"), hash_one("parallex"));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn byte_slices_with_tails() {
        // 9 bytes exercises the word + tail path.
        let a = hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice());
        let b = hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice());
        assert_ne!(a, b);
    }
}
