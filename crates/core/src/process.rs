//! Parallel processes (§2.2).
//!
//! "ParalleX differs from conventional distributed computing languages in
//! that the notion of parallel processes is not just that there may be
//! multiple processes being performed concurrently, but rather that each
//! process may have many parts, either subprocesses or threads, running
//! concurrently (or in parallel) as well and distributed across many
//! execution sites. Parallel Processes can be object oriented in that once
//! instantiated they can have additional messages incident upon them
//! invoking methods to create new instances in the form of threads (single
//! locality) or processes (multiple localities)."
//!
//! A [`ProcessRef`] names a process; PX-threads and parcels spawned
//! through it are *accounted* to the process. Termination (quiescence) is
//! detected with an activity counter that is incremented **before** a
//! task is dispatched and decremented when it completes — because the
//! increment happens-before the send, the counter can never be observed at
//! zero while work is in flight, which is the classic message-counting
//! termination-detection invariant (Dijkstra–Scholten style, collapsed to
//! a shared atomic because localities share a process).
//!
//! The process holds a *root token* from creation until
//! [`ProcessRef::finish_root`]; quiescence can therefore not fire while
//! the creator is still spawning initial work.

use crate::action::{Action, Value};
use crate::error::PxResult;
use crate::gid::{Gid, GidKind, LocalityId};
use crate::lco::FutureRef;
use crate::parcel::{Continuation, Parcel};
use crate::runtime::{Ctx, Runtime, RuntimeInner};
use crate::sched::Task;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared process record (stored at the home locality and in the runtime's
/// process table).
pub struct ProcessInner {
    /// Process name.
    pub gid: Gid,
    /// Outstanding activations + the root token.
    active: AtomicU64,
    /// Future triggered (with unit) at quiescence.
    done: Gid,
    /// Total activations ever accounted (diagnostics).
    spawned: AtomicU64,
}

impl std::fmt::Debug for ProcessInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessInner")
            .field("gid", &self.gid)
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .finish()
    }
}

impl ProcessInner {
    pub(crate) fn new(gid: Gid, done: Gid) -> Self {
        ProcessInner {
            gid,
            // 1 = the root token held by the creator.
            active: AtomicU64::new(1),
            done,
            spawned: AtomicU64::new(0),
        }
    }

    /// Account one dispatched activation.
    pub(crate) fn task_started(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
        self.spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one completed activation; triggers the done-future at zero.
    pub(crate) fn task_done(&self, rt: &Arc<RuntimeInner>) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let home = rt.locality(self.done.birthplace());
            // The done-future is an or-gate-like unit trigger; re-triggers
            // on a quiesce/re-activate cycle are tolerated by the LCO.
            let _ = crate::sched::lco_sys_op(rt, home, self.done, |l| l.trigger(Value::unit()));
        }
    }

    /// Outstanding activations (including the root token while held).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }

    /// Total activations accounted over the process lifetime.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }
}

/// Handle to a parallel process.
#[derive(Clone, Copy, Debug)]
pub struct ProcessRef {
    gid: Gid,
    done: Gid,
}

impl ProcessRef {
    pub(crate) fn new(gid: Gid, done: Gid) -> Self {
        ProcessRef { gid, done }
    }

    /// The process's global name.
    pub fn gid(&self) -> Gid {
        self.gid
    }

    /// Future that fires (unit) at quiescence: no threads or parcels of
    /// this process remain anywhere in the system.
    pub fn done_future(&self) -> FutureRef<()> {
        FutureRef::from_gid(self.done)
    }

    /// Release the root token. Call after the initial work is spawned;
    /// until then quiescence cannot trigger.
    pub fn finish_root(&self, rt: &Runtime) {
        rt.inner().process_task_done(self.gid);
    }

    /// As [`ProcessRef::finish_root`] from inside a PX-thread.
    pub fn finish_root_ctx(&self, ctx: &mut Ctx<'_>) {
        ctx.rt_inner().process_task_done(self.gid);
    }

    /// Spawn a PX-thread at `dest` accounted to this process.
    pub fn spawn_at(
        &self,
        rt: &Runtime,
        dest: LocalityId,
        f: impl FnOnce(&mut Ctx<'_>) + Send + 'static,
    ) {
        let inner = rt.inner();
        let task = Task::thread(f).with_process(Some(self.gid));
        inner.send_task(dest, dest, task);
    }

    /// Send an action parcel accounted to this process.
    pub fn send_action<A: Action>(
        &self,
        rt: &Runtime,
        target: Gid,
        args: A::Args,
        cont: Continuation,
    ) -> PxResult<()> {
        let mut p = Parcel::new(target, A::id(), Value::encode(&args)?, cont);
        p.process = Some(self.gid);
        rt.inner().send_parcel(LocalityId(0), p);
        Ok(())
    }

    /// Block the calling OS thread until the process quiesces.
    pub fn wait(&self, rt: &Runtime) -> PxResult<()> {
        self.done_future().wait(rt)
    }
}

/// Ctx-side process operations (used by PX-threads inside the process).
impl<'a> Ctx<'a> {
    /// The process the current PX-thread is accounted to, if any.
    pub fn current_process(&self) -> Option<Gid> {
        self.process
    }

    /// Spawn a PX-thread at `dest` accounted to process `proc` (commonly
    /// `self.current_process()`; spawns from process threads inherit
    /// automatically via [`Ctx::spawn`]).
    pub fn spawn_in_process(
        &mut self,
        proc: ProcessRef,
        dest: LocalityId,
        f: impl FnOnce(&mut Ctx<'_>) + Send + 'static,
    ) {
        let task = Task::thread(f).with_process(Some(proc.gid));
        self.rt_inner().send_task(self.here(), dest, task);
    }
}

/// Create a process homed at `home`. Registered in the runtime's process
/// table and the home locality's store.
pub(crate) fn create_process(rt: &Arc<RuntimeInner>, home: LocalityId) -> ProcessRef {
    let loc = rt.locality(home);
    let done = loc.new_future_lco();
    let gid = loc.alloc.alloc(GidKind::Process);
    let inner = Arc::new(ProcessInner::new(gid, done));
    loc.insert_at(gid, crate::locality::Stored::Process(inner.clone()));
    rt.process_table.write().insert(gid, inner);
    ProcessRef::new(gid, done)
}

// Process-targeted method invocation: sending an ordinary action parcel
// whose `dest` is the process GID invokes the action *in the process's
// context* at its home locality — "messages incident upon them invoking
// methods". Dispatch happens through the normal parcel path;
// `ProcessRef::send_action` tags the parcel so spawned children join the
// process.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gid::GidKind;

    #[test]
    fn counter_invariant() {
        let gid = Gid::new(LocalityId(0), GidKind::Process, 1);
        let done = Gid::new(LocalityId(0), GidKind::Lco, 2);
        let p = ProcessInner::new(gid, done);
        assert_eq!(p.active(), 1, "root token held at creation");
        p.task_started();
        p.task_started();
        assert_eq!(p.active(), 3);
        assert_eq!(p.spawned(), 2);
    }
}
