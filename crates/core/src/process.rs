//! Parallel processes (§2.2): hierarchical, cancellable, namespaced work
//! contexts spanning localities.
//!
//! "ParalleX differs from conventional distributed computing languages in
//! that the notion of parallel processes is not just that there may be
//! multiple processes being performed concurrently, but rather that each
//! process may have many parts, either subprocesses or threads, running
//! concurrently (or in parallel) as well and distributed across many
//! execution sites."
//!
//! A [`ProcessRef`] names a process. The subsystem gives it four powers:
//!
//! * **Hierarchy** — [`ProcessRef::create_subprocess`] builds trees of
//!   work contexts. A live child holds one activity token in its parent
//!   (released at the child's first quiescence or cancellation), so the
//!   Dijkstra–Scholten message-counting invariant extends up the tree:
//!   a parent cannot observe quiescence while any descendant still has
//!   work in flight.
//! * **Scoped namespace** — names registered through the process land
//!   under its AGAS prefix ([`ProcessRef::prefix`]) and are bulk
//!   unregistered at exit (first quiescence or cancellation), closing the
//!   name-table leak of long-running multi-tenant drivers. The prefix
//!   embeds the process gid, so in a multi-process system `/proc/...`
//!   names are *cluster-visible*: a lookup from another rank routes to
//!   the process's home rank over the control lane
//!   (`__sys/name_lookup`; see [`crate::runtime::Runtime::lookup_name`]).
//! * **Cancellation** — [`ProcessRef::cancel`] kills the whole subtree
//!   using the fault machinery: the done-future and every LCO the
//!   process created are poisoned with [`FaultCause::Cancelled`],
//!   in-flight parcels accounted to the process are killed loudly at
//!   dispatch, queued process threads are dropped (and counted), and new
//!   spawns are rejected. Every waiter — including [`ProcessRef::wait`]
//!   — resolves with [`crate::error::PxError::Fault`] in bounded time.
//! * **Collectives** — [`ProcessRef::broadcast`] fans an action out to
//!   every locality the process has touched and funnels the results
//!   through a reduction LCO.
//!
//! Termination (quiescence) is detected with an activity counter that is
//! incremented **before** a task is dispatched and decremented when it
//! completes — because the increment happens-before the send, the counter
//! can never be observed at zero while work is in flight. The process
//! holds a *root token* from creation until [`ProcessRef::finish_root`];
//! quiescence can therefore not fire while the creator is still spawning
//! initial work.

use crate::action::{Action, ActionId, Value};
use crate::error::{Fault, FaultCause, PxError, PxResult};
use crate::gid::{Gid, GidKind, LocalityId};
use crate::lco::{FutureRef, LcoCore, ReduceFn};
use crate::locality::Stored;
use crate::parcel::{Continuation, Parcel};
use crate::runtime::{Ctx, Runtime, RuntimeInner};
use crate::sched::Task;
use crate::stats::bump;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared process record (stored at the home locality and in the runtime's
/// process table).
pub struct ProcessInner {
    /// Process name.
    pub gid: Gid,
    /// Outstanding activations + the root token.
    active: AtomicU64,
    /// Future triggered (with unit) at quiescence; poisoned at cancel.
    done: Gid,
    /// Total activations ever accounted (diagnostics).
    spawned: AtomicU64,
    /// Parent process, if this is a subprocess.
    parent: Option<Gid>,
    /// Direct children (subprocess GIDs), in creation order.
    children: Mutex<Vec<Gid>>,
    /// LCOs created through this process's threads (plus broadcast
    /// reductions); poisoned at cancel so their waiters resolve.
    owned_lcos: Mutex<Vec<Gid>>,
    /// Set once by [`cancel_process`]; checked on spawn and dispatch.
    cancelled: AtomicBool,
    /// The root token has been released (by `finish_root` or cancel).
    root_released: AtomicBool,
    /// First exit (quiescence or cancel) already ran: namespace cleaned,
    /// parent token released.
    exited: AtomicBool,
    /// Bitmap of localities this process has dispatched work to (word
    /// `i` covers localities `64·i .. 64·i+63`). Drives broadcast
    /// fan-out.
    touched: Vec<AtomicU64>,
}

impl std::fmt::Debug for ProcessInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessInner")
            .field("gid", &self.gid)
            // Relaxed: debug snapshot; exactness is not required.
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .field("parent", &self.parent)
            .field("children", &self.children.lock().len())
            // Relaxed: debug snapshot; exactness is not required.
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

impl ProcessInner {
    pub(crate) fn new(gid: Gid, done: Gid, parent: Option<Gid>, n_localities: usize) -> Self {
        ProcessInner {
            gid,
            // 1 = the root token held by the creator.
            active: AtomicU64::new(1),
            done,
            spawned: AtomicU64::new(0),
            parent,
            children: Mutex::new(Vec::new()),
            owned_lcos: Mutex::new(Vec::new()),
            cancelled: AtomicBool::new(false),
            root_released: AtomicBool::new(false),
            exited: AtomicBool::new(false),
            touched: (0..n_localities.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Account one dispatched activation.
    pub(crate) fn task_started(&self) {
        self.active.fetch_add(1, Ordering::AcqRel);
        // Relaxed: lifetime tally; `active` above carries the ordering.
        self.spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one completed activation; at zero, triggers the
    /// done-future and runs first-exit cleanup (namespace, parent token).
    pub(crate) fn task_done(&self, rt: &Arc<RuntimeInner>) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let home = rt.locality(self.done.birthplace());
            // The done-future is an or-gate-like unit trigger; re-triggers
            // on a quiesce/re-activate cycle are tolerated by the LCO, and
            // a cancel-poisoned done future rejects the trigger (fine: its
            // waiters already hold the fault).
            let _ =
                crate::sched::lco_sys_op(rt, home, self.done, None, |l| l.trigger(Value::unit()));
            self.first_exit(rt);
        }
    }

    /// One-shot exit work: bulk-unregister the process namespace and
    /// release the activity token this process holds in its parent. Runs
    /// at the first of quiescence or cancellation.
    fn first_exit(&self, rt: &Arc<RuntimeInner>) {
        if self.exited.swap(true, Ordering::AcqRel) {
            return;
        }
        // Boundary-terminated: a raw starts_with on the bare prefix would
        // also match a *different* process whose gid hex string extends
        // this one's (registration always inserts the '/', see `scoped`).
        rt.agas
            .unregister_names_under(&format!("{}/", prefix_of(self.gid)));
        if let Some(parent) = self.parent {
            rt.process_task_done(parent);
        }
    }

    /// Note that work of this process was dispatched to locality `at`.
    pub(crate) fn note_touched(&self, at: LocalityId) {
        let (word, bit) = (at.0 as usize / 64, at.0 as usize % 64);
        if let Some(w) = self.touched.get(word) {
            // Avoid the RMW when the bit is already set (the common case
            // on a steady-state process).
            // Relaxed: the bitmap is only read after the process
            // quiesces (the AcqRel `active` count hitting zero orders
            // these sets before that read); bits only ever turn on.
            if w.load(Ordering::Relaxed) & (1 << bit) == 0 {
                w.fetch_or(1 << bit, Ordering::Relaxed);
            }
        }
    }

    /// Localities this process has dispatched work to, ascending.
    pub fn touched_localities(&self) -> Vec<LocalityId> {
        let mut out = Vec::new();
        for (i, w) in self.touched.iter().enumerate() {
            let mut bits = w.load(Ordering::Acquire);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(LocalityId((i * 64 + b) as u16));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Record an LCO created through this process. Returns `None` if the
    /// process is already cancelled — the caller must poison the LCO
    /// immediately instead of waiting for a cancel that already ran —
    /// and `Some(list_len)` otherwise so the caller can trigger a
    /// periodic prune.
    pub(crate) fn note_owned_lco(&self, gid: Gid) -> Option<usize> {
        if self.cancelled.load(Ordering::Acquire) {
            return None;
        }
        let len = {
            let mut g = self.owned_lcos.lock();
            g.push(gid);
            g.len()
        };
        // Re-check: a cancel racing the push may have drained the list
        // before or after our insert; if it already drained, poison at the
        // caller (poisoning twice is a no-op).
        if self.cancelled.load(Ordering::Acquire) {
            None
        } else {
            Some(len)
        }
    }

    /// Drop owned-LCO entries `keep` rejects. Called periodically by the
    /// LCO-creation path so a long-lived process (the multi-tenant
    /// parent) does not accumulate every future it ever created.
    pub(crate) fn prune_owned_lcos(&self, keep: impl FnMut(&Gid) -> bool) {
        self.owned_lcos.lock().retain(keep);
    }

    /// Register a subprocess. Returns `false` when this (parent) process
    /// is already cancelled and must not accept children.
    fn note_child(&self, child: Gid) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return false;
        }
        self.children.lock().push(child);
        !self.cancelled.load(Ordering::Acquire)
    }

    /// The fault delivered to everything this process's cancellation
    /// kills.
    pub(crate) fn cancel_fault(&self) -> Fault {
        Fault::new(
            FaultCause::Cancelled,
            ActionId(0),
            self.gid,
            "subtree torn down by ProcessRef::cancel",
        )
    }

    /// True once the process has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Outstanding activations (including the root token while held).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }

    /// Total activations accounted over the process lifetime.
    pub fn spawned(&self) -> u64 {
        // Relaxed: counter read for reporting.
        self.spawned.load(Ordering::Relaxed)
    }

    /// True once the record is only history: the process has exited
    /// (first quiescence or cancellation ran its cleanup) and no
    /// activation is outstanding. Such a record can be reaped; a late
    /// `task_done` after the reap degrades to a no-op, which the
    /// "done-future re-trigger tolerated" contract already allows.
    pub(crate) fn reapable(&self) -> bool {
        self.exited.load(Ordering::Acquire) && self.active.load(Ordering::Acquire) == 0
    }
}

/// The AGAS namespace prefix of process `gid` (no trailing slash).
fn prefix_of(gid: Gid) -> String {
    format!("/proc/{:x}", gid.0)
}

/// Handle to a parallel process.
#[derive(Clone, Copy, Debug)]
pub struct ProcessRef {
    gid: Gid,
    done: Gid,
}

impl ProcessRef {
    pub(crate) fn new(gid: Gid, done: Gid) -> Self {
        ProcessRef { gid, done }
    }

    /// The process's global name.
    pub fn gid(&self) -> Gid {
        self.gid
    }

    /// Future that fires (unit) at quiescence: no threads or parcels of
    /// this process remain anywhere in the system. Poisoned with
    /// [`FaultCause::Cancelled`] if the process is cancelled first.
    pub fn done_future(&self) -> FutureRef<()> {
        FutureRef::from_gid(self.done)
    }

    /// Release the root token. Call after the initial work is spawned;
    /// until then quiescence cannot trigger. Idempotent.
    pub fn finish_root(&self, rt: &Runtime) {
        finish_root_inner(rt.inner(), self.gid);
    }

    /// As [`ProcessRef::finish_root`] from inside a PX-thread.
    pub fn finish_root_ctx(&self, ctx: &mut Ctx<'_>) {
        finish_root_inner(ctx.rt_inner(), self.gid);
    }

    /// Spawn a PX-thread at `dest` accounted to this process. If the
    /// process has been cancelled the spawn is rejected loudly: the
    /// closure is dropped, `tasks_cancelled` is counted at `dest`, and
    /// the dead-letter hook observes the fault.
    pub fn spawn_at(
        &self,
        rt: &Runtime,
        dest: LocalityId,
        f: impl FnOnce(&mut Ctx<'_>) + Send + 'static,
    ) {
        let inner = rt.inner();
        if reject_if_cancelled(inner, self.gid, dest) {
            return;
        }
        let task = Task::thread(f).with_process(Some(self.gid));
        inner.send_task(dest, dest, task);
    }

    /// Send an action parcel accounted to this process. Errors with the
    /// cancellation fault if the process has been cancelled.
    pub fn send_action<A: Action>(
        &self,
        rt: &Runtime,
        target: Gid,
        args: A::Args,
        cont: Continuation,
    ) -> PxResult<()> {
        let inner = rt.inner();
        if let Some(fault) = inner.process_cancel_fault(self.gid) {
            return Err(PxError::Fault(fault));
        }
        let mut p = Parcel::new(target, A::id(), Value::encode(&args)?, cont);
        p.process = Some(self.gid);
        inner.send_parcel(LocalityId(0), p);
        Ok(())
    }

    /// Block the calling OS thread until the process quiesces. Resolves
    /// with [`PxError::Fault`] (cause [`FaultCause::Cancelled`]) if the
    /// process is cancelled instead.
    pub fn wait(&self, rt: &Runtime) -> PxResult<()> {
        self.done_future().wait(rt)
    }

    // ---- hierarchy ---------------------------------------------------------

    /// Create a subprocess homed at `home`. The child holds one activity
    /// token in this process until the child's first quiescence (or its
    /// cancellation), so [`ProcessRef::wait`] on the parent also waits
    /// for the entire subtree. Fails with the cancellation fault if this
    /// process is already cancelled.
    pub fn create_subprocess(&self, rt: &Runtime, home: LocalityId) -> PxResult<ProcessRef> {
        create_subprocess_inner(rt.inner(), self.gid, home)
    }

    /// As [`ProcessRef::create_subprocess`] from inside a PX-thread.
    pub fn create_subprocess_ctx(
        &self,
        ctx: &mut Ctx<'_>,
        home: LocalityId,
    ) -> PxResult<ProcessRef> {
        create_subprocess_inner(ctx.rt_inner(), self.gid, home)
    }

    /// This process's parent, if it is a subprocess.
    pub fn parent(&self, rt: &Runtime) -> Option<ProcessRef> {
        let inner = rt.inner();
        let table = inner.process_table.read();
        let me = table.get(&self.gid)?;
        let pgid = me.parent?;
        let p = table.get(&pgid)?;
        Some(ProcessRef::new(pgid, p.done))
    }

    /// Direct children, in creation order.
    pub fn children(&self, rt: &Runtime) -> Vec<ProcessRef> {
        let inner = rt.inner();
        let table = inner.process_table.read();
        let Some(me) = table.get(&self.gid) else {
            return Vec::new();
        };
        let kids: Vec<Gid> = me.children.lock().clone();
        kids.into_iter()
            .filter_map(|c| table.get(&c).map(|p| ProcessRef::new(c, p.done)))
            .collect()
    }

    /// Outstanding activations (diagnostics; includes held root tokens).
    pub fn active(&self, rt: &Runtime) -> u64 {
        rt.inner()
            .process_table
            .read()
            .get(&self.gid)
            .map(|p| p.active())
            .unwrap_or(0)
    }

    /// True once [`ProcessRef::cancel`] has run on this process (or an
    /// ancestor).
    pub fn is_cancelled(&self, rt: &Runtime) -> bool {
        rt.inner()
            .process_table
            .read()
            .get(&self.gid)
            .is_some_and(|p| p.is_cancelled())
    }

    // ---- cancellation ------------------------------------------------------

    /// Cancel this process and its entire subtree. Idempotent. After this
    /// returns: the done-future and every LCO created through the process
    /// are poisoned with [`FaultCause::Cancelled`] (releasing all current
    /// and future waiters), queued and in-flight work is killed loudly at
    /// dispatch, new spawns are rejected, and the process namespace is
    /// unregistered.
    pub fn cancel(&self, rt: &Runtime) {
        cancel_process(rt.inner(), self.gid);
    }

    /// As [`ProcessRef::cancel`] from inside a PX-thread.
    pub fn cancel_ctx(&self, ctx: &mut Ctx<'_>) {
        let rt = ctx.rt_inner().clone();
        cancel_process(&rt, self.gid);
    }

    // ---- process-scoped namespace ------------------------------------------

    /// The AGAS prefix all names registered through this process live
    /// under (`/proc/<gid>`); bulk-unregistered at exit.
    pub fn prefix(&self) -> String {
        prefix_of(self.gid)
    }

    /// Bind `name` under the process namespace prefix. The full path is
    /// returned (it is also resolvable through the global
    /// [`Runtime::lookup_name`]).
    pub fn register_name(&self, rt: &Runtime, name: &str, gid: Gid) -> PxResult<String> {
        let full = self.scoped(name);
        rt.inner().agas.register_name(&full, gid)?;
        Ok(full)
    }

    /// Resolve a name previously registered through this process. Goes
    /// through [`Runtime::lookup_name`], so in a multi-process system a
    /// name registered at the process's home rank resolves from any
    /// rank holding this `ProcessRef`'s gid (the path embeds the home).
    pub fn lookup_name(&self, rt: &Runtime, name: &str) -> PxResult<Gid> {
        rt.lookup_name(&self.scoped(name))
    }

    /// All names currently registered under this process's prefix.
    pub fn names(&self, rt: &Runtime) -> Vec<(String, Gid)> {
        rt.inner().agas.names_under(&format!("{}/", self.prefix()))
    }

    fn scoped(&self, name: &str) -> String {
        format!("{}/{}", self.prefix(), name.trim_start_matches('/'))
    }

    // ---- collectives -------------------------------------------------------

    /// Fan action `A` out to the root of every locality this process has
    /// touched, folding the per-locality results through a reduction LCO
    /// seeded with `seed`. The returned future fires once every locality
    /// has answered — or resolves with a fault if any leg dies (including
    /// by cancellation: the reduction is process-owned, so
    /// [`ProcessRef::cancel`] poisons it).
    pub fn broadcast<A: Action>(
        &self,
        rt: &Runtime,
        args: &A::Args,
        seed: &A::Out,
        fold: ReduceFn,
    ) -> PxResult<FutureRef<A::Out>> {
        let inner = rt.inner();
        let Some(me) = inner.process_table.read().get(&self.gid).cloned() else {
            return Err(PxError::NoSuchObject(self.gid));
        };
        if me.is_cancelled() {
            return Err(PxError::Fault(me.cancel_fault()));
        }
        let locs = me.touched_localities();
        debug_assert!(!locs.is_empty(), "home is touched at creation");
        let home = self.gid.birthplace();
        let seed = Value::encode(seed)?;
        let n = locs.len() as u64;
        let red = inner.locality(home).insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(parking_lot::Mutex::new(LcoCore::new_reduce(
                gid, n, seed, fold,
            ))))
        });
        if me.note_owned_lco(red).is_none() {
            // Cancelled while we were setting up: poison the fresh
            // reduction so the caller's waiters resolve.
            poison_lco(inner, red, &me.cancel_fault());
            return Err(PxError::Fault(me.cancel_fault()));
        }
        let payload = Value::encode(args)?;
        for l in locs {
            let mut p = Parcel::new(
                Gid::locality_root(l),
                A::id(),
                payload.clone(),
                Continuation::contribute(red),
            );
            p.process = Some(self.gid);
            inner.send_parcel(home, p);
        }
        Ok(FutureRef::from_gid(red))
    }
}

/// Ctx-side process operations (used by PX-threads inside the process).
impl<'a> Ctx<'a> {
    /// The process the current PX-thread is accounted to, if any.
    pub fn current_process(&self) -> Option<Gid> {
        self.process
    }

    /// Spawn a PX-thread at `dest` accounted to process `proc` (commonly
    /// `self.current_process()`; spawns from process threads inherit
    /// automatically via [`Ctx::spawn`]). Rejected loudly if `proc` is
    /// cancelled.
    pub fn spawn_in_process(
        &mut self,
        proc: ProcessRef,
        dest: LocalityId,
        f: impl FnOnce(&mut Ctx<'_>) + Send + 'static,
    ) {
        if reject_if_cancelled(self.rt_inner(), proc.gid, dest) {
            return;
        }
        let task = Task::thread(f).with_process(Some(proc.gid));
        self.rt_inner().send_task(self.here(), dest, task);
    }
}

/// Release the root token exactly once.
fn finish_root_inner(rt: &Arc<RuntimeInner>, gid: Gid) {
    let p = rt.process_table.read().get(&gid).cloned();
    if let Some(p) = p {
        if !p.root_released.swap(true, Ordering::AcqRel) {
            p.task_done(rt);
        }
    }
}

/// If `gid` is cancelled: count + report the rejected spawn at `dest` and
/// return true.
fn reject_if_cancelled(rt: &Arc<RuntimeInner>, gid: Gid, dest: LocalityId) -> bool {
    if let Some(fault) = rt.process_cancel_fault(gid) {
        bump!(rt.locality(dest).counters.tasks_cancelled);
        rt.notify_dead_letter(&fault);
        return true;
    }
    false
}

/// Create a process homed at `home`. Registered in the runtime's process
/// table and the home locality's store.
/// Sweep the process table every this many creations, so a server that
/// makes one process per request stays bounded without anyone calling
/// [`Runtime::reap_processes`] by hand.
const REAP_EVERY: u64 = 64;

pub(crate) fn create_process(
    rt: &Arc<RuntimeInner>,
    home: LocalityId,
    parent: Option<Gid>,
) -> ProcessRef {
    let loc = rt.locality(home);
    let done = loc.new_future_lco();
    let gid = loc.alloc.alloc(GidKind::Process);
    let inner = Arc::new(ProcessInner::new(gid, done, parent, rt.localities.len()));
    inner.note_touched(home);
    loc.insert_at(gid, Stored::Process(inner.clone()));
    rt.process_table.write().insert(gid, inner);
    let created = rt.processes_created.fetch_add(1, Ordering::Relaxed) + 1;
    if created.is_multiple_of(REAP_EVERY) {
        reap_processes(rt);
    }
    ProcessRef::new(gid, done)
}

/// Process-table GC: remove records that are exited, quiesced, and
/// unreferenced outside the runtime's own bookkeeping. Returns how many
/// were reaped (also accumulated in `StatsSnapshot::processes_reaped`).
///
/// "Unreferenced" is an `Arc::strong_count` check: the table and the
/// home locality's object store each hold one reference; anything beyond
/// those (a `task_done` in flight, a driver thread mid-query) defers the
/// record to a later sweep. `ProcessRef` is `Copy` and holds no
/// reference — queries through a kept handle simply see an absent
/// record after the reap (zero `active`, no children), and the done
/// future itself survives in the object store, so waiting on it still
/// resolves.
pub(crate) fn reap_processes(rt: &Arc<RuntimeInner>) -> usize {
    // The candidate clone below is reference #3.
    const EXPECTED_REFS: usize = 3;
    let candidates: Vec<Arc<ProcessInner>> = rt
        .process_table
        .read()
        .values()
        .filter(|p| p.reapable())
        .cloned()
        .collect();
    let mut reaped = 0usize;
    for p in candidates {
        let gid = p.gid;
        {
            let mut table = rt.process_table.write();
            // Re-check under the write lock: a late activation or a
            // transient clone (e.g. `process_task_started` on a racing
            // worker) defers the record to the next sweep.
            let still = table
                .get(&gid)
                .is_some_and(|cur| Arc::ptr_eq(cur, &p) && cur.reapable());
            if !still || Arc::strong_count(&p) != EXPECTED_REFS {
                continue;
            }
            table.remove(&gid);
        }
        rt.locality(gid.birthplace()).remove(gid);
        reaped += 1;
    }
    if reaped > 0 {
        rt.processes_reaped
            .fetch_add(reaped as u64, Ordering::Relaxed);
    }
    reaped
}

/// Create a subprocess of `parent` homed at `home`, wiring the hierarchy:
/// the child holds one activity token in the parent until its first exit.
pub(crate) fn create_subprocess_inner(
    rt: &Arc<RuntimeInner>,
    parent: Gid,
    home: LocalityId,
) -> PxResult<ProcessRef> {
    let Some(pi) = rt.process_table.read().get(&parent).cloned() else {
        return Err(PxError::NoSuchObject(parent));
    };
    if pi.is_cancelled() {
        return Err(PxError::Fault(pi.cancel_fault()));
    }
    // The child's existence is parent activity (Dijkstra–Scholten token),
    // taken *before* the child can dispatch anything.
    pi.task_started();
    let child = create_process(rt, home, Some(parent));
    if !pi.note_child(child.gid) {
        // Parent was cancelled concurrently: the subtree must die with it.
        cancel_process(rt, child.gid);
        return Err(PxError::Fault(pi.cancel_fault()));
    }
    Ok(child)
}

/// Poison one process-owned LCO at its home locality.
fn poison_lco(rt: &Arc<RuntimeInner>, gid: Gid, fault: &Fault) {
    let loc = rt.locality(gid.birthplace());
    let f = fault.clone();
    // Missing objects (already freed) are fine to skip; poison itself is
    // idempotent.
    let _ = crate::sched::lco_sys_op(rt, loc, gid, None, move |l| Ok(l.poison(f)));
}

/// Cancel `gid` and its whole subtree (idempotent, depth-first).
pub(crate) fn cancel_process(rt: &Arc<RuntimeInner>, gid: Gid) {
    let Some(p) = rt.process_table.read().get(&gid).cloned() else {
        return;
    };
    if p.cancelled.swap(true, Ordering::AcqRel) {
        return;
    }
    rt.processes_cancelled.fetch_add(1, Ordering::Relaxed);
    let fault = p.cancel_fault();
    // Cancellation has no parcel to carry a trace id, so the event is
    // recorded unconditionally under the never-sampled id 0 when tracing
    // is on: a dump still shows *that* and *when* the subtree died.
    rt.locality(gid.birthplace()).trace_event(
        Some(0),
        crate::trace::TraceEventKind::ProcessCancel,
        gid.0,
        0,
    );
    rt.notify_dead_letter(&fault);
    // 1. Poison the done-future first: `wait` and `done_future` waiters
    //    resolve immediately, before the subtree teardown begins.
    poison_lco(rt, p.done, &fault);
    // 2. Poison every LCO the process created, releasing all waiter
    //    kinds (depleted threads resume with the fault, continuations
    //    carry it onward, external waiters return `Err`).
    let owned: Vec<Gid> = std::mem::take(&mut *p.owned_lcos.lock());
    for lco in owned {
        poison_lco(rt, lco, &fault);
    }
    // 3. Tear down the subtree.
    let children: Vec<Gid> = p.children.lock().clone();
    for c in children {
        cancel_process(rt, c);
    }
    // 4. Force-release the root token so the activity counter can drain
    //    to zero even if the creator never called `finish_root`.
    if !p.root_released.swap(true, Ordering::AcqRel) {
        p.task_done(rt);
    }
    // 5. Namespace cleanup + parent-token release (first exit). A
    //    cancelled child is terminated from its parent's perspective:
    //    what remains of its in-flight work is being killed at dispatch.
    p.first_exit(rt);
}

// Process-targeted method invocation: sending an ordinary action parcel
// whose `dest` is the process GID invokes the action *in the process's
// context* at its home locality — "messages incident upon them invoking
// methods". Dispatch happens through the normal parcel path;
// `ProcessRef::send_action` tags the parcel so spawned children join the
// process.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_invariant() {
        let gid = Gid::new(LocalityId(0), GidKind::Process, 1);
        let done = Gid::new(LocalityId(0), GidKind::Lco, 2);
        let p = ProcessInner::new(gid, done, None, 4);
        assert_eq!(p.active(), 1, "root token held at creation");
        p.task_started();
        p.task_started();
        assert_eq!(p.active(), 3);
        assert_eq!(p.spawned(), 2);
    }

    #[test]
    fn touched_bitmap_dedups_and_sorts() {
        let gid = Gid::new(LocalityId(0), GidKind::Process, 1);
        let done = Gid::new(LocalityId(0), GidKind::Lco, 2);
        let p = ProcessInner::new(gid, done, None, 130);
        for l in [5u16, 129, 5, 0, 64, 129] {
            p.note_touched(LocalityId(l));
        }
        assert_eq!(
            p.touched_localities(),
            vec![
                LocalityId(0),
                LocalityId(5),
                LocalityId(64),
                LocalityId(129)
            ]
        );
        // Out-of-range localities are ignored, not a panic.
        p.note_touched(LocalityId(1000));
        assert_eq!(p.touched_localities().len(), 4);
    }

    #[test]
    fn owned_lco_registration_stops_at_cancel() {
        let gid = Gid::new(LocalityId(0), GidKind::Process, 1);
        let done = Gid::new(LocalityId(0), GidKind::Lco, 2);
        let p = ProcessInner::new(gid, done, None, 1);
        assert_eq!(
            p.note_owned_lco(Gid::new(LocalityId(0), GidKind::Lco, 3)),
            Some(1)
        );
        p.cancelled.store(true, Ordering::Release);
        assert_eq!(
            p.note_owned_lco(Gid::new(LocalityId(0), GidKind::Lco, 4)),
            None
        );
        // Pruning drops entries the keeper rejects.
        p.cancelled.store(false, Ordering::Release);
        p.note_owned_lco(Gid::new(LocalityId(0), GidKind::Lco, 5));
        p.prune_owned_lcos(|g| g.seq() != 3);
        // [3, 5] pruned to [5]; the next note makes the list [5, 6].
        assert_eq!(
            p.note_owned_lco(Gid::new(LocalityId(0), GidKind::Lco, 6)),
            Some(2)
        );
        assert_eq!(p.cancel_fault().cause, FaultCause::Cancelled);
    }

    #[test]
    fn prefix_is_stable_per_gid() {
        let gid = Gid::new(LocalityId(2), GidKind::Process, 17);
        assert_eq!(prefix_of(gid), format!("/proc/{:x}", gid.0));
    }
}
