//! The metrics plane: lock-free latency histograms and the fixed
//! instrument registry.
//!
//! Every number in [`crate::stats::StatsSnapshot`] is a counter; counters
//! answer "how many" but not "how slow is the tail". The AMT comparative
//! studies in PAPERS.md attribute runtime overhead to individual phases
//! via latency *distributions*, so the runtime keeps log-bucketed
//! histograms for a small fixed set of phase latencies (see
//! [`Instrument`]) and can merge them cluster-wide (each rank records
//! against its own monotonic clock; only bucket **counts** cross ranks —
//! clocks are never compared).
//!
//! Like tracing and balancing, metrics are **off by default** and cost
//! one `Option` pointer check per hook when off
//! ([`crate::runtime::Config::with_metrics`] turns them on). When on, a
//! sample is two `fetch_add`s on cache-local atomic cells — no locks, no
//! allocation.
//!
//! ## Bucket scheme
//!
//! Log-linear, in nanoseconds: values below 16 get exact unit buckets;
//! above, each power-of-two octave is split into 16 linear sub-buckets
//! (relative error ≤ 1/16 ≈ 6.25%). All 64 value octaves are covered in
//! [`CELLS`] = 976 cells, so `u64::MAX` is representable and a merge
//! never clips.

use px_wire::{WireHistogram, WireReader, WireWriter};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (as a shift: 2^4 = 16).
const LINEAR_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: usize = 1 << LINEAR_BITS;
/// Total histogram cells: one unit bucket per value below `SUBS` (16),
/// then `SUBS` sub-buckets for each of the 60 octaves from 2^4 through
/// 2^63.
pub const CELLS: usize = SUBS + (64 - LINEAR_BITS as usize) * SUBS;

/// Map a value (nanoseconds) to its histogram cell.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= LINEAR_BITS
    let sub = ((v - (1u64 << exp)) >> (exp - LINEAR_BITS)) as usize;
    SUBS + (exp - LINEAR_BITS) as usize * SUBS + sub
}

/// Inclusive upper bound of a cell (the value reported for percentiles
/// that land in it). Saturates at `u64::MAX` for the last cell.
pub fn bucket_bound(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let exp = (idx - SUBS) as u32 / SUBS as u32 + LINEAR_BITS;
    let sub = ((idx - SUBS) % SUBS) as u64;
    let width = 1u64 << (exp - LINEAR_BITS);
    let lower = (1u64 << exp) + sub * width;
    lower.saturating_add(width - 1)
}

/// One runtime phase whose latency distribution is recorded. The
/// registry is fixed at compile time: adding an instrument means adding a
/// variant here, a line in the exposition renderer, and a row in the
/// bench emitter — the px-analyze `wire-stats` rule fails the build if
/// the last two are forgotten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrument {
    /// Parcel/task wait in a run queue: enqueue → dequeue by a worker.
    QueueWait,
    /// Registered (user) action handler execution time.
    ExecuteUser,
    /// System action (`__sys/*`) execution time.
    ExecuteSys,
    /// LCO lifetime to resolution: creation → fire (the
    /// spawn→continuation-resolution latency of a split-phase request).
    SpawnResolve,
    /// Transport submit → drain onto the wire (TCP send-queue residence;
    /// delay-line residence in-process). Local clock only.
    NetRtt,
    /// Control-lane delivery: control-queue push → priority drain.
    ControlLane,
    /// Remote directory lookup: `__sys/dir_lookup` request sent → owner
    /// resolved at the asking rank. Local clock only.
    DirLookup,
}

impl Instrument {
    /// Every instrument, in registry order.
    pub const ALL: [Instrument; 7] = [
        Instrument::QueueWait,
        Instrument::ExecuteUser,
        Instrument::ExecuteSys,
        Instrument::SpawnResolve,
        Instrument::NetRtt,
        Instrument::ControlLane,
        Instrument::DirLookup,
    ];

    /// Registry slot of this instrument.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Exposition metric name (nanosecond-valued histogram).
    pub fn name(self) -> &'static str {
        match self {
            Instrument::QueueWait => "px_queue_wait_ns",
            Instrument::ExecuteUser => "px_execute_user_ns",
            Instrument::ExecuteSys => "px_execute_sys_ns",
            Instrument::SpawnResolve => "px_spawn_resolve_ns",
            Instrument::NetRtt => "px_net_rtt_ns",
            Instrument::ControlLane => "px_control_lane_ns",
            Instrument::DirLookup => "px_dir_lookup_ns",
        }
    }

    /// One-line help text for the exposition page.
    pub fn help(self) -> &'static str {
        match self {
            Instrument::QueueWait => "parcel/task wait in a run queue, enqueue to dequeue",
            Instrument::ExecuteUser => "registered action handler execution time",
            Instrument::ExecuteSys => "system action execution time",
            Instrument::SpawnResolve => "LCO creation to resolution (spawn to continuation)",
            Instrument::NetRtt => "transport submit to wire drain",
            Instrument::ControlLane => "control-lane delivery, push to priority drain",
            Instrument::DirLookup => "remote directory lookup, request to owner resolution",
        }
    }
}

/// One lock-free histogram: dense atomic cells plus count/sum totals.
pub struct Histogram {
    cells: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: (0..CELLS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample (nanoseconds). Wait-free: three `fetch_add`s.
    #[inline]
    pub fn record(&self, value_ns: u64) {
        // Relaxed: monotonic metric cells, read only by snapshots that
        // tolerate bounded cross-cell skew — never a synchronization
        // point (same contract as the stats counters).
        self.cells[bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        // Relaxed: see above — count/sum are the same kind of counter.
        self.count.fetch_add(1, Ordering::Relaxed);
        // Relaxed: see above.
        self.sum.fetch_add(value_ns, Ordering::Relaxed);
    }

    /// Copy current cell values into a plain snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // Relaxed: snapshot reads of monotonic metric cells — a
            // point-in-time percentile tolerates bounded cross-cell
            // skew, so no acquire pairing is needed.
            count: self.count.load(Ordering::Relaxed),
            // Relaxed: see above.
            sum: self.sum.load(Ordering::Relaxed),
            cells: self
                .cells
                .iter()
                // Relaxed: see above.
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, queryable,
/// wire-encodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (nanoseconds).
    pub sum: u64,
    /// Dense bucket counts ([`CELLS`] entries).
    pub cells: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            cells: vec![0; CELLS],
        }
    }
}

impl HistogramSnapshot {
    /// Add another snapshot's buckets into this one. Saturating, not
    /// wrapping: unsigned saturating addition is still commutative *and*
    /// associative (every grouping yields `min(total, u64::MAX)`), so
    /// cluster merges stay order-invariant even if a peer ships a
    /// pathological `sum`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a = a.saturating_add(*b);
        }
    }

    /// Upper bound (ns) of the bucket holding quantile `q` in `0.0..=1.0`
    /// — p50 is `quantile(0.50)`, p999 is `quantile(0.999)`. Returns 0 on
    /// an empty histogram (never NaN). Monotone in `q` by construction:
    /// a cumulative walk over the same cells.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into the recorded
        // range so q=1.0 lands on the last sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.cells.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(CELLS - 1)
    }

    /// Mean sample value in nanoseconds (0.0 when empty — never NaN).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sparse wire form (non-empty cells only, canonical order).
    pub fn to_wire(&self) -> WireHistogram {
        WireHistogram {
            count: self.count,
            sum: self.sum,
            cells: self
                .cells
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }

    /// Rebuild the dense form from the wire encoding. Cells beyond
    /// [`CELLS`] (a newer peer with a finer scheme) error rather than
    /// silently drop counts.
    pub fn from_wire(w: &WireHistogram) -> Result<HistogramSnapshot, px_wire::WireError> {
        let mut s = HistogramSnapshot {
            count: w.count,
            sum: w.sum,
            ..HistogramSnapshot::default()
        };
        for &(idx, c) in &w.cells {
            let cell = s
                .cells
                .get_mut(idx as usize)
                .ok_or_else(|| px_wire::WireError::Message("histogram cell out of range".into()))?;
            *cell = c;
        }
        Ok(s)
    }
}

/// The per-locality instrument registry: one atomic histogram per
/// [`Instrument`]. Attached to a [`crate::locality::Locality`] as an
/// `Option<Arc<MetricsRegistry>>`, so disabled runs pay one pointer check
/// per hook.
#[derive(Default)]
pub struct MetricsRegistry {
    hists: [Histogram; Instrument::ALL.len()],
}

impl MetricsRegistry {
    /// Record one sample (nanoseconds) against `inst`.
    #[inline]
    pub fn record(&self, inst: Instrument, value_ns: u64) {
        self.hists[inst.index()].record(value_ns);
    }

    /// Record an elapsed [`std::time::Duration`] against `inst`.
    #[inline]
    pub fn record_elapsed(&self, inst: Instrument, d: std::time::Duration) {
        self.record(inst, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Snapshot every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hists: self.hists.iter().map(Histogram::snapshot).collect(),
        }
    }
}

/// Plain-data snapshot of a whole registry (one histogram per
/// [`Instrument`], in [`Instrument::ALL`] order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    hists: Vec<HistogramSnapshot>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            hists: Instrument::ALL
                .iter()
                .map(|_| HistogramSnapshot::default())
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// The histogram for one instrument.
    pub fn get(&self, inst: Instrument) -> &HistogramSnapshot {
        &self.hists[inst.index()]
    }

    /// Merge another snapshot instrument-by-instrument (order-invariant).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Total samples across all instruments.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(|h| h.count).sum()
    }

    /// Encode every instrument's histogram for a `__sys/metrics_pull`
    /// reply payload (sparse [`WireHistogram`]s, registry order).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_varint(self.hists.len() as u64);
        for h in &self.hists {
            h.to_wire().encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Decode a pull-reply payload. A peer with *more* instruments is
    /// truncated to ours (forward compatibility); fewer instruments
    /// decode as empty histograms.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, px_wire::WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.get_varint()? as usize;
        let mut s = MetricsSnapshot::default();
        for i in 0..n {
            let w = WireHistogram::decode_from(&mut r)?;
            if i < s.hists.len() {
                s.hists[i] = HistogramSnapshot::from_wire(&w)?;
            }
        }
        Ok(s)
    }
}

/// Cluster-wide merged metrics: what [`crate::runtime::Runtime::cluster_metrics`]
/// returns. Per-rank snapshots are kept alongside the merged totals so
/// callers can attribute tails to a rank; every histogram was recorded
/// against its own rank's clock and only bucket counts were merged.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// One `(locality id, snapshot)` entry per reporting locality.
    pub per_rank: Vec<(u16, MetricsSnapshot)>,
    /// All per-rank snapshots merged.
    pub merged: MetricsSnapshot,
}

/// Render one instrument's histogram as Prometheus-style text lines.
/// Every line is `name{labels} value`; buckets carry cumulative counts
/// under `le` labels like native Prometheus histograms.
fn render_histogram(name: &str, help: &str, h: &HistogramSnapshot, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (idx, &c) in h.cells.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(idx));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{{}} {}", h.sum);
    let _ = writeln!(out, "{name}_count{{}} {}", h.count);
    for (label, q) in [
        ("0.5", 0.50),
        ("0.9", 0.90),
        ("0.99", 0.99),
        ("0.999", 0.999),
    ] {
        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
    }
}

/// Render every instrument into `out`. Instruments are listed explicitly
/// — not via [`Instrument::ALL`] — so the px-analyze `wire-stats` rule
/// can verify each registry entry reaches the exposition page.
pub fn render_instruments(snap: &MetricsSnapshot, out: &mut String) {
    for inst in [
        Instrument::QueueWait,
        Instrument::ExecuteUser,
        Instrument::ExecuteSys,
        Instrument::SpawnResolve,
        Instrument::NetRtt,
        Instrument::ControlLane,
        Instrument::DirLookup,
    ] {
        render_histogram(inst.name(), inst.help(), snap.get(inst), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_in_range() {
        // Sorted sweep across every octave: index must never decrease.
        let mut probes: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            probes.extend([v, v + 1, v + (v >> 1), v.saturating_add(v - 1)]);
        }
        probes.sort_unstable();
        let mut prev = 0usize;
        for probe in probes {
            let idx = bucket_index(probe);
            assert!(idx < CELLS, "index {idx} out of range for {probe}");
            assert!(idx >= prev, "not monotone at {probe}: {idx} < {prev}");
            prev = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), CELLS - 1);
    }

    #[test]
    fn bucket_bound_contains_value() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let bound = bucket_bound(idx);
            assert!(bound >= v, "bound {bound} below value {v}");
            // Relative error of the reported bound is at most one
            // sub-bucket width (~6.25%).
            if v >= 16 {
                assert!(bound - v <= v / 8, "bound {bound} too far above {v}");
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        let p999 = s.quantile(0.999);
        assert!((450..=600).contains(&p50), "p50 {p50}");
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(p999 <= bucket_bound(bucket_index(1000)));
    }

    #[test]
    fn empty_histogram_is_zero_not_nan() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.999), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in 0..100u64 {
            a.record(v * 17);
            b.record(v * 1009);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba, "merge must be order-invariant");
        assert_eq!(ab.count, 200);
        assert_eq!(
            ab.cells.iter().sum::<u64>(),
            200,
            "bucket counts must be preserved"
        );
    }

    #[test]
    fn wire_roundtrip_dense_sparse() {
        let h = Histogram::default();
        for v in [0u64, 3, 17, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let w = s.to_wire();
        assert_eq!(HistogramSnapshot::from_wire(&w).unwrap(), s);
        // Canonical: strictly increasing, nonzero.
        assert!(w.cells.windows(2).all(|p| p[0].0 < p[1].0));
        assert!(w.cells.iter().all(|&(_, c)| c != 0));
    }

    #[test]
    fn registry_snapshot_encode_decode() {
        let reg = MetricsRegistry::default();
        reg.record(Instrument::QueueWait, 100);
        reg.record(Instrument::NetRtt, 5_000);
        reg.record(Instrument::NetRtt, 6_000);
        let s = reg.snapshot();
        assert_eq!(s.get(Instrument::QueueWait).count, 1);
        assert_eq!(s.get(Instrument::NetRtt).count, 2);
        assert_eq!(s.total_count(), 3);
        let back = MetricsSnapshot::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn out_of_range_wire_cell_rejected() {
        let w = WireHistogram {
            count: 1,
            sum: 1,
            cells: vec![(CELLS as u32, 1)],
        };
        assert!(HistogramSnapshot::from_wire(&w).is_err());
    }

    #[test]
    fn rendered_text_lists_every_instrument() {
        let reg = MetricsRegistry::default();
        for inst in Instrument::ALL {
            reg.record(inst, 42);
        }
        let mut out = String::new();
        render_instruments(&reg.snapshot(), &mut out);
        for inst in Instrument::ALL {
            assert!(
                out.contains(&format!("{}_bucket{{le=", inst.name())),
                "missing bucket line for {}",
                inst.name()
            );
            assert!(out.contains(&format!("{}_count{{}} 1", inst.name())));
        }
        assert!(!out.contains("NaN"), "exposition must never print NaN");
    }
}
