//! Localities: the paper's "local physical domain".
//!
//! §2.2: "it is the locus of resources that can be guaranteed to operate
//! synchronously and for which hardware can guarantee compound atomic
//! operations on local data elements … Within a locality, all
//! functionality is bounded in space and time."
//!
//! Here a locality owns
//!
//! * an **object store** mapping GIDs to local first-class objects (data,
//!   LCOs, echo nodes, processes) — compound atomic operations are
//!   per-object locks, valid precisely because the objects never escape
//!   the locality except by explicit migration;
//! * **run queues**: a general injector, a percolation staging queue, and
//!   one work-stealing deque per worker;
//! * a pool of **worker threads** executing ephemeral PX-threads;
//! * the locality's GID allocator and instrumentation counters.
//!
//! Localities interact only through parcels; nothing in this module hands
//! out references to another locality's store.

use crate::error::{PxError, PxResult};
use crate::fxmap::FxHashMap;
use crate::gid::{Gid, GidAllocator, GidKind, LocalityId};
use crate::lco::LcoCore;
use crate::sched::Task;
use crate::stats::LocalityCounters;
use crossbeam::deque::{Injector, Stealer};
use parking_lot::{Condvar, Mutex, RwLock};
use px_balance::{LoadMonitor, PeerView};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A first-class object resident in a locality's store.
#[derive(Clone)]
pub enum Stored {
    /// Local control object.
    Lco(Arc<Mutex<LcoCore>>),
    /// Raw data object (migratable).
    Data(Arc<RwLock<DataObject>>),
    /// Echo replica-tree node.
    Echo(Arc<Mutex<crate::echo::EchoNode>>),
    /// Parallel-process record.
    Process(Arc<crate::process::ProcessInner>),
}

impl std::fmt::Debug for Stored {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stored::Lco(_) => f.write_str("Stored::Lco"),
            Stored::Data(_) => f.write_str("Stored::Data"),
            Stored::Echo(_) => f.write_str("Stored::Echo"),
            Stored::Process(_) => f.write_str("Stored::Process"),
        }
    }
}

/// A mutable byte object with a version counter (bumped on every write, so
/// experiments can detect lost updates).
#[derive(Debug, Default, Clone)]
pub struct DataObject {
    /// Object payload.
    pub bytes: Vec<u8>,
    /// Write count.
    pub version: u64,
}

/// Sleep/wake control for a locality's workers.
#[derive(Debug, Default)]
pub(crate) struct SleepCtl {
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SleepCtl {
    /// Park the calling worker until notified or `timeout` elapses.
    pub(crate) fn park(&self, timeout: Duration) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let mut g = self.lock.lock();
            // Re-check is the caller's job (they loop); bounded park keeps
            // shutdown and racy pushes safe without a wake protocol.
            self.cv.wait_for(&mut g, timeout);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake one parked worker, if any.
    #[inline]
    pub(crate) fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock();
            self.cv.notify_one();
        }
    }

    /// Wake every parked worker (shutdown).
    pub(crate) fn wake_all(&self) {
        let _g = self.lock.lock();
        self.cv.notify_all();
    }
}

/// Per-locality balancer state (present only when `Config::balance` is
/// set, so the balanced and un-balanced runtimes differ by one `Option`
/// check on the hot paths).
pub(crate) struct BalanceState {
    /// Control-plane queue: gossip parcels land here and are drained
    /// ahead of all other work. Without this, a saturated locality would
    /// execute gossip only after its entire data backlog — exactly the
    /// moment it most needs to learn its peers are idle.
    pub(crate) control: Injector<Task>,
    /// Sliding-window load monitor, sampled by the balancer pulse.
    pub(crate) monitor: Mutex<LoadMonitor>,
    /// What this locality believes about every locality's load (filled by
    /// gossip parcels; decisions read only this view, never another
    /// locality's state directly).
    pub(crate) peers: Mutex<PeerView>,
    /// Spawn-redirect target for the current round (`u32::MAX` = none):
    /// the balancer publishes the least-loaded peer here when the policy
    /// wants fresh local spawns diffused.
    pub(crate) spawn_target: AtomicU32,
    /// Round-robin counter so only every other spawn is redirected
    /// (full redirection would just move the hotspot).
    pub(crate) spawn_seq: AtomicU64,
}

/// Sentinel for "no spawn redirect this round".
pub(crate) const NO_SPAWN_TARGET: u32 = u32::MAX;

impl BalanceState {
    pub(crate) fn new(n_localities: usize, window: usize) -> BalanceState {
        BalanceState {
            control: Injector::new(),
            monitor: Mutex::new(LoadMonitor::new(window)),
            peers: Mutex::new(PeerView::new(n_localities)),
            spawn_target: AtomicU32::new(NO_SPAWN_TARGET),
            spawn_seq: AtomicU64::new(0),
        }
    }
}

/// One ParalleX locality.
pub struct Locality {
    /// This locality's id.
    pub id: LocalityId,
    /// General run queue (parcels, injected threads).
    pub(crate) injector: Injector<Task>,
    /// Percolation staging buffer: prestaged tasks whose data travelled
    /// with them; drained at higher priority than the injector.
    pub(crate) staging: Injector<Task>,
    /// Stealers for each worker's deque (fixed after boot).
    pub(crate) stealers: RwLock<Vec<Stealer<Task>>>,
    store: RwLock<FxHashMap<Gid, Stored>>,
    /// GID allocator for objects born here.
    pub alloc: GidAllocator,
    /// Instrumentation.
    pub counters: LocalityCounters,
    pub(crate) sleep: SleepCtl,
    /// Workers prefer the staging queue (precious-resource policy, E4).
    pub staged_priority: bool,
    /// Balancer state; `None` unless `Config::balance` is set.
    pub(crate) balance: Option<BalanceState>,
    /// Causal-trace event ring; `None` unless `Config::trace` is enabled,
    /// so untraced runs pay one `Option` check per hook.
    pub(crate) trace: Option<Arc<crate::trace::TraceRing>>,
    /// Latency-histogram registry; `None` unless `Config::with_metrics`
    /// enabled metrics, so unmetered runs pay one `Option` check per hook.
    pub(crate) metrics: Option<Arc<crate::metrics::MetricsRegistry>>,
    /// This locality's workers run in another OS process (TCP transport):
    /// the local struct is a routing stub and must not mint GIDs — two
    /// processes allocating from the same locality id would collide.
    pub(crate) remote_stub: bool,
}

impl std::fmt::Debug for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locality")
            .field("id", &self.id)
            .field("objects", &self.store.read().len())
            .finish()
    }
}

impl Locality {
    /// Create an empty locality.
    pub fn new(id: LocalityId, staged_priority: bool) -> Self {
        Locality {
            id,
            injector: Injector::new(),
            staging: Injector::new(),
            stealers: RwLock::new(Vec::new()),
            store: RwLock::new(FxHashMap::default()),
            alloc: GidAllocator::new(id),
            counters: LocalityCounters::default(),
            sleep: SleepCtl::default(),
            staged_priority,
            balance: None,
            trace: None,
            metrics: None,
            remote_stub: false,
        }
    }

    /// Attach balancer state (called by the builder, before the locality
    /// is shared).
    pub(crate) fn enable_balance(&mut self, n_localities: usize, window: usize) {
        self.balance = Some(BalanceState::new(n_localities, window));
    }

    /// Mark this struct as a stub for a locality owned by another OS
    /// process (called by the builder, before the locality is shared).
    pub(crate) fn mark_remote_stub(&mut self) {
        self.remote_stub = true;
    }

    /// Attach a causal-trace event ring (called by the builder, before
    /// the locality is shared).
    pub(crate) fn enable_trace(&mut self, ring: Arc<crate::trace::TraceRing>) {
        self.trace = Some(ring);
    }

    /// Attach a latency-histogram registry (called by the builder, before
    /// the locality is shared).
    pub(crate) fn enable_metrics(&mut self, reg: Arc<crate::metrics::MetricsRegistry>) {
        self.metrics = Some(reg);
    }

    /// `Some(now)` when metrics are on — the enqueue/submit stamp taken by
    /// the producing side of a latency measurement. One pointer check when
    /// metrics are off.
    #[inline]
    pub(crate) fn metrics_now(&self) -> Option<std::time::Instant> {
        self.metrics.as_ref().map(|_| std::time::Instant::now())
    }

    /// Record the elapsed time since a [`Self::metrics_now`] stamp against
    /// `inst`, if metrics are on and the stamp was taken. Both stamps come
    /// from this process's monotonic clock — cross-rank spans are never
    /// measured this way.
    #[inline]
    pub(crate) fn metric_elapsed(
        &self,
        inst: crate::metrics::Instrument,
        since: Option<std::time::Instant>,
    ) {
        if let (Some(reg), Some(t)) = (&self.metrics, since) {
            reg.record_elapsed(inst, t.elapsed());
        }
    }

    /// Record one trace event here, if tracing is on and the parcel/task
    /// is traced (`trace != None`). Bumps the recorded/dropped counters.
    #[inline]
    pub(crate) fn trace_event(
        &self,
        trace: Option<u64>,
        kind: crate::trace::TraceEventKind,
        gid: u64,
        aux: u64,
    ) {
        if let (Some(ring), Some(t)) = (&self.trace, trace) {
            let dropped = ring.record(t, kind, gid, aux);
            crate::stats::bump!(self.counters.trace_events_recorded);
            if dropped {
                crate::stats::bump!(self.counters.trace_events_dropped);
            }
        }
    }

    /// Tasks waiting in the general run queue (balancer telemetry; the
    /// per-worker deques are not observable from outside, which is fine —
    /// a deep deque implies a busy worker feeding it).
    pub fn queue_depth(&self) -> usize {
        self.injector.len()
    }

    /// Prestaged tasks waiting in the staging buffer.
    pub fn staging_depth(&self) -> usize {
        self.staging.len()
    }

    // ---- task ingress ----------------------------------------------------

    /// Enqueue a task on the general run queue and wake a worker.
    pub(crate) fn push_task(&self, mut task: Task) {
        task.enqueued = self.metrics_now();
        self.injector.push(task);
        self.sleep.wake_one();
    }

    /// Enqueue a prestaged task on the staging buffer.
    pub(crate) fn push_staged(&self, mut task: Task) {
        task.enqueued = self.metrics_now();
        self.staging.push(task);
        self.sleep.wake_one();
    }

    /// Enqueue a control-plane task (balancer gossip, metrics pulls),
    /// drained ahead of all other queues. Falls back to the general queue
    /// if balancing is off here (then its wait is accounted to the
    /// queue-wait instrument rather than the control lane, matching the
    /// queue it actually waited in).
    pub(crate) fn push_control(&self, task: Task) {
        match &self.balance {
            Some(b) => {
                let mut task = task;
                task.enqueued = self.metrics_now();
                b.control.push(task);
                self.sleep.wake_one();
            }
            None => self.push_task(task),
        }
    }

    // ---- object store ----------------------------------------------------

    /// Insert a pre-built object under a fresh GID of `kind`.
    ///
    /// # Panics
    ///
    /// In a multi-process (TCP) runtime, panics when called on a
    /// locality owned by another OS process: the allocator here would
    /// mint GIDs the owning process also mints. Create objects at your
    /// own locality and share their GIDs via parcels.
    pub fn insert(&self, kind: GidKind, build: impl FnOnce(Gid) -> Stored) -> Gid {
        assert!(
            !self.remote_stub,
            "locality {} is owned by another OS process; objects must be created at the owning rank",
            self.id
        );
        let gid = self.alloc.alloc(kind);
        let obj = build(gid);
        // Every LCO creation funnels through here, so this single stamp
        // feeds the spawn→resolution instrument for all constructors.
        if self.metrics.is_some() {
            if let Stored::Lco(l) = &obj {
                l.lock().set_born(std::time::Instant::now());
            }
        }
        self.store.write().insert(gid, obj);
        gid
    }

    /// Insert an object under a caller-chosen GID (migration arrivals).
    pub fn insert_at(&self, gid: Gid, obj: Stored) {
        self.store.write().insert(gid, obj);
    }

    /// Look up any object.
    pub fn get(&self, gid: Gid) -> Option<Stored> {
        self.store.read().get(&gid).cloned()
    }

    /// True if the object is resident here.
    pub fn contains(&self, gid: Gid) -> bool {
        self.store.read().contains_key(&gid)
    }

    /// Remove an object (migration departure or explicit free).
    pub fn remove(&self, gid: Gid) -> Option<Stored> {
        self.store.write().remove(&gid)
    }

    /// Number of resident objects.
    pub fn object_count(&self) -> usize {
        self.store.read().len()
    }

    /// Create a future LCO here.
    pub fn new_future_lco(&self) -> Gid {
        self.insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_future(gid))))
        })
    }

    /// Look up an LCO, with kind checking.
    pub fn get_lco(&self, gid: Gid) -> PxResult<Arc<Mutex<LcoCore>>> {
        match self.get(gid) {
            Some(Stored::Lco(l)) => Ok(l),
            Some(_) => Err(PxError::WrongObjectKind(gid)),
            None => Err(PxError::NoSuchObject(gid)),
        }
    }

    /// Look up a data object, with kind checking.
    pub fn get_data(&self, gid: Gid) -> PxResult<Arc<RwLock<DataObject>>> {
        match self.get(gid) {
            Some(Stored::Data(d)) => Ok(d),
            Some(_) => Err(PxError::WrongObjectKind(gid)),
            None => Err(PxError::NoSuchObject(gid)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_insert_get_remove() {
        let loc = Locality::new(LocalityId(0), false);
        let gid = loc.insert(GidKind::Data, |_| {
            Stored::Data(Arc::new(RwLock::new(DataObject {
                bytes: vec![1, 2, 3],
                version: 0,
            })))
        });
        assert!(loc.contains(gid));
        assert_eq!(loc.object_count(), 1);
        let d = loc.get_data(gid).unwrap();
        assert_eq!(d.read().bytes, vec![1, 2, 3]);
        assert!(loc.remove(gid).is_some());
        assert!(!loc.contains(gid));
    }

    #[test]
    fn kind_mismatch_is_error() {
        let loc = Locality::new(LocalityId(0), false);
        let gid = loc.new_future_lco();
        assert!(matches!(
            loc.get_data(gid),
            Err(PxError::WrongObjectKind(_))
        ));
        assert!(loc.get_lco(gid).is_ok());
    }

    #[test]
    fn missing_object_is_error() {
        let loc = Locality::new(LocalityId(0), false);
        let bogus = Gid::new(LocalityId(0), GidKind::Lco, 12345);
        assert!(matches!(loc.get_lco(bogus), Err(PxError::NoSuchObject(_))));
    }

    #[test]
    fn gids_are_born_here() {
        let loc = Locality::new(LocalityId(9), false);
        let gid = loc.new_future_lco();
        assert_eq!(gid.birthplace(), LocalityId(9));
        assert_eq!(gid.kind(), GidKind::Lco);
    }

    #[test]
    fn sleep_ctl_wakes_parked_worker() {
        let ctl = Arc::new(SleepCtl::default());
        let c2 = ctl.clone();
        let start = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            c2.park(Duration::from_secs(5));
        });
        // Give the thread time to park, then wake it well before timeout.
        std::thread::sleep(Duration::from_millis(20));
        ctl.wake_all();
        h.join().unwrap();
        assert!(start.elapsed() < Duration::from_secs(4));
    }
}
