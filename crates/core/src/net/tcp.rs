//! The TCP transport backend: localities as separate OS processes.
//!
//! Each process owns exactly one locality (its *rank*) and peers with
//! every other over plain `std::net` sockets — no async runtime, no new
//! dependencies. The byte protocol is [`px_wire::stream`]: a fixed
//! handshake (`magic ++ version ++ locality id`), then length-prefixed
//! messages whose bodies are the *same* encoded parcels and
//! (checksummed, version-2) frames the in-process wire carries. The
//! coalescing ports, batching policy, and control-plane lane all sit
//! above the `Transport` seam and work unchanged.
//!
//! ## Topology and bootstrap barrier
//!
//! The mesh uses one **simplex** connection per ordered peer pair:
//! process `i`'s outgoing connection to `j` carries only `i → j`
//! traffic (written by a per-peer writer thread), and `j` reads it on a
//! per-connection reader thread spawned by its acceptor. No multiplexing
//! and no duplex framing races — same-peer traffic rides one ordered
//! byte stream.
//!
//! `TcpTransport::bootstrap` returns only once this process has
//! connected *to* every peer **and** accepted a handshake *from* every
//! peer — so when every rank's `RuntimeBuilder::build` returns, the
//! full N-process mesh exists: a barrier, without a coordinator.
//!
//! ## Failure semantics
//!
//! A dropped peer connection is detected by the reader (EOF/error) or
//! the writer (write failure after the configured reconnect attempts).
//! The peer is marked **dead**, the dead-letter hook observes a
//! `FaultCause::Transport` fault, and every undeliverable message —
//! queued, buffered, or submitted later — is killed *loudly* in
//! `kill_parcel` style: counted under `dead_transport`, with the fault
//! delivered to each parcel's continuation so waiters resolve with
//! `PxError::Fault` in bounded time instead of hanging. Fault delivery
//! is deferred to a scheduler task on the own locality because `submit`
//! may be called under a coalescing-port lock that a fault continuation
//! would need to re-take.
//!
//! Reconnection is the *writer's* job and bounded: on a write failure it
//! re-dials up to `TcpConfig::reconnect_attempts` times (counted per
//! peer) and re-sends its unacknowledged write buffer — **at-least-once
//! across a reconnect**: messages the peer had already consumed from the
//! failed connection can be delivered twice, so actions crossing TCP
//! should be idempotent, or set `reconnect_attempts = 0` for
//! at-most-once (failed buffers are then killed loudly instead).
//! Once the writer gives up, the peer is permanently dead to this
//! process — a later inbound connection from it is still *read* (its
//! parcels execute), but nothing is sent back; rejoin-after-restart
//! needs the distributed AGAS first (see ROADMAP).
//!
//! Process accounting: activity tokens never cross an OS-process
//! boundary (see `route_parcel`), so a cross-rank parcel carries its
//! owning pid for cancellation context only; hierarchical quiescence
//! meters work within each process.
//!
//! What this backend **cannot** do is deliver `WireMsg::Task` closures
//! to another process — closures do not serialize. Those die loudly at
//! submission with the same transport fault; distributed work moves via
//! action parcels, as the model intends.

use super::{Transport, TransportSubmitter, WireModel, WireMsg};
use crate::action::ActionId;
use crate::error::{Fault, FaultCause, PxError, PxResult};
use crate::gid::{Gid, LocalityId};
use crate::locality::Locality;
use crate::parcel::Parcel;
use crate::runtime::RuntimeInner;
use crate::sched::Task;
use crate::stats::{PeerStats, TransportStats};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use px_wire::stream::{self, msg_kind};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outgoing per-peer queue depth (backpressure bound).
const PEER_QUEUE: usize = 8192;
/// Writer-side aggregation buffer: messages are coalesced into one
/// `write_all` up to this size when the queue has backlog.
const WRITE_BUF_MAX: usize = 64 * 1024;
/// Socket write timeout — bounds how long a writer can wedge on a peer
/// that stopped reading (shutdown or death), turning it into a loud
/// failure instead of a hang.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Read timeout while waiting for a connection handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Acceptor poll interval (the listener is non-blocking so shutdown can
/// stop it without a wake-up connection).
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Delay between bootstrap connection attempts.
const CONNECT_RETRY: Duration = Duration::from_millis(25);

/// Configuration of the TCP backend: which locality this process *is*
/// and where every locality listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// The locality id owned by this OS process.
    pub rank: u16,
    /// Listen address of every locality, indexed by locality id
    /// (`addrs[rank]` is this process's bind address). Length must equal
    /// `Config::localities`.
    pub addrs: Vec<String>,
    /// How long `RuntimeBuilder::build` may wait for the full mesh
    /// (connects out + handshakes in) before failing loudly.
    pub bootstrap_timeout: Duration,
    /// Reconnection attempts a writer makes after a write failure before
    /// declaring the peer dead.
    pub reconnect_attempts: u32,
}

impl TcpConfig {
    /// Config for `rank` in a system whose localities listen at `addrs`
    /// (default 30 s bootstrap timeout, 1 reconnect attempt).
    pub fn new(rank: u16, addrs: Vec<String>) -> TcpConfig {
        TcpConfig {
            rank,
            addrs,
            bootstrap_timeout: Duration::from_secs(30),
            reconnect_attempts: 1,
        }
    }
}

/// Send/receive counters for one peer.
#[derive(Default)]
struct PeerCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    reconnects: AtomicU64,
}

/// One message queued toward a peer's writer thread.
struct OutMsg {
    kind: u8,
    bytes: Vec<u8>,
}

/// Per-peer send state.
struct PeerSlot {
    /// Queue into the writer thread; `None` once shutdown closed it.
    tx: Mutex<Option<Sender<OutMsg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    /// Peer declared unreachable (reader EOF or writer give-up).
    dead: AtomicBool,
    counters: PeerCounters,
}

/// State shared between submitters, writer/reader threads, and the
/// acceptor.
struct TcpShared {
    rank: u16,
    addrs: Vec<String>,
    reconnect_attempts: u32,
    localities: Arc<Vec<Arc<Locality>>>,
    /// Indexed by locality id; `None` at `rank` (no self-peering).
    peers: Vec<Option<PeerSlot>>,
    /// Late-bound runtime for fault delivery.
    rt: OnceLock<Weak<RuntimeInner>>,
    shutting_down: AtomicBool,
    /// Accepted inbound connections: a clone for shutdown plus the
    /// reader's join handle.
    readers: Mutex<Vec<(Option<TcpStream>, JoinHandle<()>)>>,
}

impl TcpShared {
    #[inline]
    fn own(&self) -> &Arc<Locality> {
        &self.localities[self.rank as usize]
    }

    #[inline]
    fn peer(&self, id: u16) -> &PeerSlot {
        self.peers[id as usize]
            .as_ref()
            .expect("peer slot exists for every non-self locality")
    }

    fn rt(&self) -> Option<Arc<RuntimeInner>> {
        self.rt.get().and_then(Weak::upgrade)
    }

    /// Deliver a received (or locally-addressed) stream message into the
    /// own locality's queues, honoring the control-plane priority lane.
    fn deliver_local(&self, kind: u8, body: Vec<u8>) {
        let loc = self.own();
        match kind {
            msg_kind::PARCEL => loc.push_task(Task::parcel_bytes(body)),
            msg_kind::PARCEL_STAGED => loc.push_staged(Task::parcel_bytes(body)),
            msg_kind::FRAME => loc.push_task(Task::parcel_frame(body)),
            msg_kind::FRAME_STAGED => loc.push_staged(Task::parcel_frame(body)),
            msg_kind::CONTROL => loc.push_control(Task::parcel_bytes(body)),
            // StreamAssembler rejects unknown kinds before this point.
            _ => loc.counters.count_death(FaultCause::Decode, 1),
        }
    }

    fn submit(&self, msg: WireMsg) {
        if self.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match msg {
            WireMsg::Task { dest, task } => {
                if dest.0 == self.rank {
                    self.own().push_task(task);
                    return;
                }
                // Closures do not serialize: this is work the transport
                // cannot carry. Die loudly (counted + dead-letter) so the
                // mistake is visible instead of a silent hang.
                self.own().counters.count_death(FaultCause::Transport, 1);
                if let Some(rt) = self.rt() {
                    rt.notify_dead_letter(&Fault::new(
                        FaultCause::Transport,
                        ActionId(0),
                        Gid::locality_root(dest),
                        "closure task cannot cross an OS-process boundary; use action parcels",
                    ));
                }
            }
            WireMsg::Parcel {
                dest,
                staged,
                bytes,
            } => {
                let kind = if staged {
                    msg_kind::PARCEL_STAGED
                } else {
                    msg_kind::PARCEL
                };
                self.send_to_peer(dest, kind, bytes);
            }
            WireMsg::Frame {
                dest,
                staged,
                bytes,
            } => {
                let kind = if staged {
                    msg_kind::FRAME_STAGED
                } else {
                    msg_kind::FRAME
                };
                self.send_to_peer(dest, kind, bytes);
            }
            WireMsg::Control { dest, bytes } => {
                self.send_to_peer(dest, msg_kind::CONTROL, bytes);
            }
        }
    }

    fn send_to_peer(&self, dest: LocalityId, kind: u8, bytes: Vec<u8>) {
        if dest.0 == self.rank {
            // Defensive: same-locality traffic short-circuits upstream.
            self.deliver_local(kind, bytes);
            return;
        }
        let slot = self.peer(dest.0);
        if slot.dead.load(Ordering::Acquire) {
            self.kill_undeliverable(dest.0, vec![(kind, bytes)]);
            return;
        }
        let res = {
            let guard = slot.tx.lock();
            match &*guard {
                Some(tx) => tx.send(OutMsg { kind, bytes }),
                None => return, // shutdown race: teardown drains honestly
            }
        };
        if let Err(e) = res {
            // Writer exited (peer declared dead between our check and the
            // send): the message comes back in the error — kill it loudly.
            self.kill_undeliverable(dest.0, vec![(e.0.kind, e.0.bytes)]);
        }
    }

    /// Mark `peer` unreachable and tell the dead-letter hook (once per
    /// transition). Per-message deaths are counted where the messages
    /// are killed.
    fn peer_down(&self, peer: u16, why: &str) {
        if self.shutting_down.load(Ordering::Acquire) {
            return;
        }
        if self.peer(peer).dead.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(rt) = self.rt() {
            rt.notify_dead_letter(&Fault::new(
                FaultCause::Transport,
                ActionId(0),
                Gid::locality_root(LocalityId(peer)),
                format!("peer locality {peer} unreachable: {why}"),
            ));
        }
    }

    /// Kill undeliverable stream messages loudly. With a bound runtime
    /// the kill is deferred to a scheduler task on the own locality —
    /// `submit` may hold a coalescing-port lock that the fault
    /// continuations need — where each parcel dies via `kill_parcel`
    /// (counted, dead-letter, fault to continuation, process token
    /// released). Without one (tests, boot races) the deaths are counted
    /// directly.
    fn kill_undeliverable(&self, peer: u16, msgs: Vec<(u8, Vec<u8>)>) {
        if msgs.is_empty() {
            return;
        }
        let why = format!("transport to locality {peer} lost");
        match self.rt() {
            None => {
                let loc = self.own();
                for (kind, body) in &msgs {
                    loc.counters
                        .count_death(FaultCause::Transport, count_records(*kind, body));
                }
            }
            Some(_) => {
                self.own().push_task(Task::thread(move |ctx| {
                    let rt = ctx.rt_inner().clone();
                    let loc = ctx.locality().clone();
                    for (kind, body) in msgs {
                        kill_stream_msg(&rt, &loc, kind, &body, &why);
                    }
                }));
            }
        }
    }

    /// Try to re-establish the outgoing connection to `peer`.
    fn reconnect(&self, peer: u16) -> Option<TcpStream> {
        let addr = &self.addrs[peer as usize];
        for _ in 0..self.reconnect_attempts {
            if self.shutting_down.load(Ordering::Acquire) {
                return None;
            }
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.set_nodelay(true);
                let _ = s.set_write_timeout(Some(WRITE_TIMEOUT));
                if s.write_all(&stream::encode_handshake(self.rank)).is_ok() {
                    let slot = self.peer(peer);
                    slot.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    slot.dead.store(false, Ordering::Release);
                    return Some(s);
                }
            }
            std::thread::sleep(CONNECT_RETRY);
        }
        None
    }
}

/// Parcel records inside one stream message (for counting deaths when no
/// runtime is bound).
fn count_records(kind: u8, body: &[u8]) -> u64 {
    match kind {
        msg_kind::FRAME | msg_kind::FRAME_STAGED => px_wire::FrameView::parse(body)
            .map(|v| u64::from(v.record_count()))
            .unwrap_or(1),
        _ => 1,
    }
}

/// Kill every parcel inside one undeliverable stream message.
fn kill_stream_msg(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, kind: u8, body: &[u8], why: &str) {
    match kind {
        msg_kind::FRAME | msg_kind::FRAME_STAGED => match px_wire::FrameView::parse(body) {
            Ok(view) => {
                for rec in view.records() {
                    match rec {
                        Ok(bytes) => kill_record(rt, loc, bytes, why),
                        Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
                    }
                }
            }
            Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
        },
        _ => kill_record(rt, loc, body, why),
    }
}

fn kill_record(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, bytes: &[u8], why: &str) {
    match Parcel::decode(bytes) {
        Ok(p) => {
            // No activity token to release: cross-rank parcels are not
            // accounted to their process at the sender (tokens never
            // cross an OS-process boundary — see `route_parcel`), and
            // every message this transport kills was bound for another
            // rank.
            crate::sched::kill_parcel(rt, loc, p, FaultCause::Transport, why.to_string());
        }
        Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
    }
}

/// The socket-backed `Transport`. Built by
/// `TcpTransport::bootstrap`; see the module docs for topology and
/// failure semantics.
pub(crate) struct TcpTransport {
    shared: Arc<TcpShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Bind, connect the outgoing mesh, and block until every peer has
    /// also connected to us (the bootstrap barrier). Fails loudly after
    /// `cfg.bootstrap_timeout`.
    pub(crate) fn bootstrap(
        cfg: &TcpConfig,
        localities: Arc<Vec<Arc<Locality>>>,
    ) -> PxResult<TcpTransport> {
        let n = localities.len();
        let rank = cfg.rank;
        let listen_addr = &cfg.addrs[rank as usize];
        let listener = TcpListener::bind(listen_addr)
            .map_err(|e| PxError::BadConfig(format!("tcp: bind {listen_addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| PxError::BadConfig(format!("tcp: nonblocking listener: {e}")))?;
        let deadline = Instant::now() + cfg.bootstrap_timeout;

        // Outgoing half of the mesh: one connection + writer per peer.
        let mut peers: Vec<Option<PeerSlot>> = Vec::with_capacity(n);
        let mut outgoing: Vec<Option<(TcpStream, Receiver<OutMsg>)>> = Vec::with_capacity(n);
        for j in 0..n as u16 {
            if j == rank {
                peers.push(None);
                outgoing.push(None);
                continue;
            }
            let addr = &cfg.addrs[j as usize];
            let mut s = connect_until(addr, deadline).ok_or_else(|| {
                PxError::BadConfig(format!(
                    "tcp bootstrap: locality {j} at {addr} unreachable within {:?}",
                    cfg.bootstrap_timeout
                ))
            })?;
            let _ = s.set_nodelay(true);
            let _ = s.set_write_timeout(Some(WRITE_TIMEOUT));
            s.write_all(&stream::encode_handshake(rank))
                .map_err(|e| PxError::BadConfig(format!("tcp bootstrap: hello to {addr}: {e}")))?;
            let (tx, rx) = bounded::<OutMsg>(PEER_QUEUE);
            peers.push(Some(PeerSlot {
                tx: Mutex::new(Some(tx)),
                writer: Mutex::new(None),
                dead: AtomicBool::new(false),
                counters: PeerCounters::default(),
            }));
            outgoing.push(Some((s, rx)));
        }

        let shared = Arc::new(TcpShared {
            rank,
            addrs: cfg.addrs.clone(),
            reconnect_attempts: cfg.reconnect_attempts,
            localities,
            peers,
            rt: OnceLock::new(),
            shutting_down: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
        });
        for (j, slot) in outgoing.into_iter().enumerate() {
            let Some((stream, rx)) = slot else { continue };
            let sh = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("px-tcp-tx-{j}"))
                .spawn(move || writer_loop(sh, j as u16, stream, rx))
                .expect("spawn tcp writer thread");
            *shared.peer(j as u16).writer.lock() = Some(handle);
        }
        let (ready_tx, ready_rx) = crossbeam::channel::unbounded::<u16>();
        let acceptor = {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name("px-tcp-accept".into())
                .spawn(move || acceptor_loop(sh, listener, ready_tx))
                .expect("spawn tcp acceptor thread")
        };
        let mut transport = TcpTransport {
            shared,
            acceptor: Some(acceptor),
        };

        // Barrier: wait until all n-1 peers have handshaked in.
        let mut seen = vec![false; n];
        let mut heard = 0usize;
        while heard < n - 1 {
            let left = deadline.saturating_duration_since(Instant::now());
            match ready_rx.recv_timeout(left.max(Duration::from_millis(1))) {
                Ok(p) => {
                    if let Some(s) = seen.get_mut(p as usize) {
                        if !*s {
                            *s = true;
                            heard += 1;
                        }
                    }
                }
                Err(_) => {
                    transport.shutdown();
                    return Err(PxError::BadConfig(format!(
                        "tcp bootstrap barrier timed out: {heard} of {} peers handshaked",
                        n - 1
                    )));
                }
            }
        }
        Ok(transport)
    }
}

impl Transport for TcpTransport {
    fn submit(&self, msg: WireMsg, _bytes: usize) {
        self.shared.submit(msg);
    }

    fn submitter(&self) -> TransportSubmitter {
        let shared = self.shared.clone();
        Arc::new(move |msg, _bytes| shared.submit(msg))
    }

    fn model(&self) -> WireModel {
        // The network's physics are real; nothing is injected.
        WireModel::instant()
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn frame_version(&self) -> u8 {
        px_wire::FRAME_VERSION_CHECKSUM
    }

    fn bind(&self, rt: &Arc<RuntimeInner>) {
        let _ = self.shared.rt.set(Arc::downgrade(rt));
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            peers: self
                .shared
                .peers
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| {
                    let c = &slot.as_ref()?.counters;
                    Some(PeerStats {
                        peer: id as u16,
                        msgs_sent: c.msgs_sent.load(Ordering::Relaxed),
                        bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
                        frames_sent: c.frames_sent.load(Ordering::Relaxed),
                        msgs_recv: c.msgs_recv.load(Ordering::Relaxed),
                        bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
                        reconnects: c.reconnects.load(Ordering::Relaxed),
                    })
                })
                .collect(),
        }
    }

    fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Close the writer queues: writers drain what was already queued,
        // then exit; join so pending bytes hit the kernel before sockets
        // close.
        for slot in self.shared.peers.iter().flatten() {
            *slot.tx.lock() = None;
        }
        for slot in self.shared.peers.iter().flatten() {
            if let Some(h) = slot.writer.lock().take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for (stream, handle) in readers {
            if let Some(s) = stream {
                let _ = s.shutdown(Shutdown::Both);
            }
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connect with retries until `deadline` (peers boot in any order).
fn connect_until(addr: &str, deadline: Instant) -> Option<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            Err(_) if Instant::now() < deadline => std::thread::sleep(CONNECT_RETRY),
            Err(_) => return None,
        }
    }
}

/// Writer thread: drain the peer queue, coalescing backlog into one
/// buffered `write_all`. On failure: reconnect (bounded), else declare
/// the peer dead and kill everything buffered or queued.
fn writer_loop(shared: Arc<TcpShared>, peer: u16, mut stream: TcpStream, rx: Receiver<OutMsg>) {
    let mut buf: Vec<u8> = Vec::with_capacity(WRITE_BUF_MAX);
    loop {
        let first = match rx.recv() {
            Ok(m) => m,
            // Channel closed and fully drained: clean shutdown.
            Err(_) => return,
        };
        buf.clear();
        let mut msgs = 0u64;
        let mut frames = 0u64;
        append_msg(&mut buf, &first, &mut msgs, &mut frames);
        while buf.len() < WRITE_BUF_MAX {
            match rx.try_recv() {
                Ok(m) => append_msg(&mut buf, &m, &mut msgs, &mut frames),
                Err(_) => break,
            }
        }
        if stream.write_all(&buf).is_err() {
            let recovered = match shared.reconnect(peer) {
                Some(mut s2) => {
                    let ok = s2.write_all(&buf).is_ok();
                    if ok {
                        stream = s2;
                    }
                    ok
                }
                None => false,
            };
            if !recovered {
                shared.peer_down(peer, "write failed");
                let mut dead = reparse_buffer(&buf);
                while let Ok(m) = rx.try_recv() {
                    dead.push((m.kind, m.bytes));
                }
                shared.kill_undeliverable(peer, dead);
                return;
            }
        }
        let c = &shared.peer(peer).counters;
        c.msgs_sent.fetch_add(msgs, Ordering::Relaxed);
        c.frames_sent.fetch_add(frames, Ordering::Relaxed);
        c.bytes_sent.fetch_add(buf.len() as u64, Ordering::Relaxed);
    }
}

fn append_msg(buf: &mut Vec<u8>, msg: &OutMsg, msgs: &mut u64, frames: &mut u64) {
    buf.extend_from_slice(&stream::encode_msg_header(msg.kind, msg.bytes.len() as u32));
    buf.extend_from_slice(&msg.bytes);
    *msgs += 1;
    if msg.kind == msg_kind::FRAME || msg.kind == msg_kind::FRAME_STAGED {
        *frames += 1;
    }
}

/// Recover the `(kind, body)` messages from a write buffer we built
/// ourselves (used to kill them individually after a failed write).
fn reparse_buffer(buf: &[u8]) -> Vec<(u8, Vec<u8>)> {
    let mut asm = stream::StreamAssembler::new();
    asm.feed(buf);
    let mut out = Vec::new();
    while let Ok(Some(msg)) = asm.next_msg() {
        out.push(msg);
    }
    out
}

/// Acceptor thread: accept inbound connections and hand each to its own
/// thread immediately — the handshake read happens *off* this thread, so
/// a silent stranger (port scanner, health checker) cannot head-of-line
/// block legitimate peers for its timeout. Runs for the transport's
/// lifetime so peers can reconnect.
fn acceptor_loop(shared: Arc<TcpShared>, listener: TcpListener, ready_tx: Sender<u16>) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let clone = stream.try_clone().ok();
                let sh = shared.clone();
                let tx = ready_tx.clone();
                let handle = std::thread::Builder::new()
                    .name("px-tcp-rx".into())
                    .spawn(move || inbound_loop(sh, stream, tx))
                    .expect("spawn tcp reader thread");
                let mut readers = shared.readers.lock();
                // Reap finished readers so a flapping peer does not grow
                // this vec (and its cloned fds) without bound.
                readers.retain(|(_, h)| !h.is_finished());
                readers.push((clone, handle));
                // `retain` dropped finished handles without joining;
                // that's fine — an exited thread needs no join for
                // resource reclamation beyond the handle itself.
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Per-inbound-connection body: validate the handshake (bounded read),
/// then read messages until the stream dies.
fn inbound_loop(shared: Arc<TcpShared>, mut stream: TcpStream, ready_tx: Sender<u16>) {
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let mut hello = [0u8; stream::HANDSHAKE_LEN];
    let peer = match stream
        .read_exact(&mut hello)
        .ok()
        .and_then(|()| stream::decode_handshake(&hello).ok())
    {
        Some(p) if (p as usize) < shared.localities.len() && p != shared.rank => p,
        // Stranger, bad hello, or impossible id: drop it before it
        // touches any runtime state (and without declaring any peer
        // down — we never learned who this was).
        _ => return,
    };
    let _ = stream.set_read_timeout(None);
    // Bootstrap barrier signal; ignored once bootstrap ended.
    let _ = ready_tx.send(peer);
    reader_loop(shared, peer, stream);
}

/// Reader thread: reassemble stream messages from arbitrary read chunks
/// and deliver them into the own locality's queues. EOF or a stream
/// error outside shutdown declares the peer down.
fn reader_loop(shared: Arc<TcpShared>, peer: u16, mut stream: TcpStream) {
    let mut asm = stream::StreamAssembler::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let why: &str;
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                why = "connection closed";
                break 'conn;
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                why = "read failed";
                break 'conn;
            }
        };
        let c = &shared.peer(peer).counters;
        c.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
        asm.feed(&chunk[..n]);
        loop {
            match asm.next_msg() {
                Ok(Some((kind, body))) => {
                    c.msgs_recv.fetch_add(1, Ordering::Relaxed);
                    shared.deliver_local(kind, body);
                }
                Ok(None) => break,
                Err(_) => {
                    // Desynchronized stream: unrecoverable for a
                    // length-prefixed protocol. Count it and drop the
                    // connection; the peer's writer will reconnect.
                    shared.own().counters.count_death(FaultCause::Decode, 1);
                    why = "stream desynchronized";
                    break 'conn;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    if !shared.shutting_down.load(Ordering::Acquire) {
        shared.peer_down(peer, why);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Value;
    use crate::parcel::Continuation;
    use crossbeam::deque::Steal;

    fn test_localities(n: usize) -> Arc<Vec<Arc<Locality>>> {
        Arc::new(
            (0..n)
                .map(|i| Arc::new(Locality::new(LocalityId(i as u16), false)))
                .collect(),
        )
    }

    /// Reserve two loopback addresses. (Bind-then-drop: the tiny reuse
    /// race is acceptable in tests.)
    fn free_addrs(n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", l.local_addr().unwrap().port())
            })
            .collect()
    }

    fn boot_pair() -> (TcpTransport, TcpTransport, Arc<Vec<Arc<Locality>>>) {
        let addrs = free_addrs(2);
        let locs_a = test_localities(2);
        let locs_b = test_localities(2);
        let cfg_a = TcpConfig::new(0, addrs.clone());
        let cfg_b = TcpConfig::new(1, addrs);
        // Bootstrap blocks until both sides are up: run one side on a
        // helper thread.
        let b = std::thread::spawn({
            let locs_b = locs_b.clone();
            move || TcpTransport::bootstrap(&cfg_b, locs_b).unwrap()
        });
        let a = TcpTransport::bootstrap(&cfg_a, locs_a).unwrap();
        let b = b.join().unwrap();
        (a, b, locs_b)
    }

    fn noop_parcel(dest: LocalityId) -> Vec<u8> {
        Parcel::new(
            Gid::locality_root(dest),
            crate::sched::sys::NOOP,
            Value::unit(),
            Continuation::none(),
        )
        .encode()
    }

    fn wait_for<T>(mut poll: impl FnMut() -> Option<T>, what: &str) -> T {
        let t0 = Instant::now();
        loop {
            if let Some(v) = poll() {
                return v;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "timed out: {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn mesh_delivers_parcels_frames_and_control() {
        let (a, mut b, locs_b) = boot_pair();
        let bytes = noop_parcel(LocalityId(1));
        a.submit(
            WireMsg::Parcel {
                dest: LocalityId(1),
                staged: false,
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        let mut frame = px_wire::FrameBuf::with_version(px_wire::FRAME_VERSION_CHECKSUM);
        frame.push_record(&bytes);
        frame.push_record(&bytes);
        let fb = frame.take();
        a.submit(
            WireMsg::Frame {
                dest: LocalityId(1),
                staged: false,
                bytes: fb.clone(),
            },
            fb.len(),
        );
        a.submit(
            WireMsg::Control {
                dest: LocalityId(1),
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        a.submit(
            WireMsg::Parcel {
                dest: LocalityId(1),
                staged: true,
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        // No balance state on the test locality: control falls back to
        // the general queue, so injector expects parcel + frame + control.
        let own = &locs_b[1];
        let mut records = 0usize;
        let mut tasks = 0usize;
        wait_for(
            || {
                while let Steal::Success(t) = own.injector.steal() {
                    tasks += 1;
                    records += t.parcel_records();
                }
                (tasks >= 3 && records >= 4).then_some(())
            },
            "general-queue messages",
        );
        assert_eq!(tasks, 3, "parcel + frame + control");
        assert_eq!(records, 4, "1 + 2 + 1 records");
        wait_for(
            || matches!(own.staging.steal(), Steal::Success(_)).then_some(()),
            "staged parcel",
        );
        let stats = a.transport_stats();
        let p1 = stats.peers.iter().find(|p| p.peer == 1).unwrap();
        assert_eq!(p1.msgs_sent, 4);
        assert_eq!(p1.frames_sent, 1);
        assert!(p1.bytes_sent > 0);
        // Receive-side counters live on B.
        let bstats = b.transport_stats();
        let p0 = bstats.peers.iter().find(|p| p.peer == 0).unwrap();
        wait_for(
            || (b.transport_stats().peers[0].msgs_recv == 4).then_some(()),
            "recv counters",
        );
        assert!(p0.reconnects == 0);
        b.shutdown();
        drop(a);
    }

    #[test]
    fn dead_peer_kills_submissions_loudly() {
        let (a, mut b, _locs_b) = boot_pair();
        b.shutdown();
        drop(b);
        // A's reader observes the EOF and marks peer 1 dead; submissions
        // are then killed loudly (counted inline: no runtime is bound in
        // this unit test).
        let own = a.shared.own().clone();
        let t0 = Instant::now();
        loop {
            let bytes = noop_parcel(LocalityId(1));
            let n = bytes.len();
            a.submit(
                WireMsg::Parcel {
                    dest: LocalityId(1),
                    staged: false,
                    bytes,
                },
                n,
            );
            if own
                .counters
                .dead_transport
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
            {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "peer death never resolved submissions"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(a);
    }

    #[test]
    fn bootstrap_times_out_without_peer() {
        let addrs = free_addrs(2);
        let mut cfg = TcpConfig::new(0, addrs);
        cfg.bootstrap_timeout = Duration::from_millis(300);
        let locs = test_localities(2);
        let Err(err) = TcpTransport::bootstrap(&cfg, locs) else {
            panic!("bootstrap without a peer must time out");
        };
        assert!(matches!(err, PxError::BadConfig(_)));
    }

    #[test]
    fn closure_tasks_cannot_cross_processes() {
        let (a, b, _locs_b) = boot_pair();
        a.submit(
            WireMsg::Task {
                dest: LocalityId(1),
                task: Task::thread(|_| {}),
            },
            64,
        );
        assert_eq!(
            a.shared
                .own()
                .counters
                .dead_transport
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "closure transfer must die loudly"
        );
        drop(a);
        drop(b);
    }
}
