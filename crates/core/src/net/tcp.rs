//! The TCP transport backend: localities as separate OS processes,
//! driven by **one readiness-driven I/O thread per rank**.
//!
//! Each process owns exactly one locality (its *rank*) and peers with
//! every other over plain TCP sockets. The byte protocol is
//! [`px_wire::stream`]: a fixed handshake (`magic ++ version ++
//! locality id`), then length-prefixed messages whose bodies are the
//! *same* encoded parcels and (checksummed, version-2) frames the
//! in-process wire carries. The coalescing ports, batching policy, and
//! control-plane lane all sit above the `Transport` seam and work
//! unchanged.
//!
//! ## Thread model: flat in peer count
//!
//! The whole backend runs on **one** I/O thread (`px-tcp-io`),
//! regardless of mesh size: every socket is nonblocking and registered
//! with an epoll-based poller ([`px_poll::Poller`] — vendored direct
//! libc declarations, like the other offline stand-ins). The listener,
//! all outbound connections, all inbound connections, connect/reconnect
//! retries, and handshake deadlines are all multiplexed in the same
//! `epoll_wait` loop; retries are *timers* (poll timeouts), not
//! sleep-loops, so an idle mesh makes zero wakeups. A 64-rank mesh
//! costs this process exactly the same thread count as a 2-rank mesh —
//! thread cost scales with *ranks you run*, never with *peers you
//! have* (asserted by integration test; the predecessor spawned a
//! writer plus a reader thread per peer, capping mesh size at 2N+
//! threads per rank).
//!
//! Senders never touch sockets: `submit` appends to a per-peer
//! `SendQueue` (control lane ahead of data, bounded bytes for
//! backpressure) and wakes the poller via its eventfd. The I/O thread
//! drains queues into a [`px_wire::stream::WriteBatch`] per peer and
//! ships it with **vectored writes** (`write_vectored` over
//! header/body slices) with explicit partial-write carry-over — the
//! kernel can cut a write mid-header or mid-body and the batch resumes
//! at exactly that byte (proptested in
//! `crates/wire/tests/write_proptest.rs`).
//!
//! ## Topology and bootstrap barrier
//!
//! The mesh uses one **simplex** connection per ordered peer pair:
//! process `i`'s outgoing connection to `j` carries only `i → j`
//! traffic; `j` reads it as one of its inbound connections. No
//! multiplexing and no duplex framing races — same-peer traffic rides
//! one ordered byte stream.
//!
//! `TcpTransport::bootstrap` returns only once this process has
//! connected *to* every peer (handshake flushed) **and** accepted a
//! handshake *from* every peer — so when every rank's
//! `RuntimeBuilder::build` returns, the full N-process mesh exists: a
//! barrier, without a coordinator. Connect attempts retry on a timer
//! until `TcpConfig::bootstrap_timeout` (peers boot in any order).
//!
//! ## Failure semantics
//!
//! A dropped peer connection is detected by readiness: EOF/error on an
//! inbound connection, or error/hang-up on the outbound one. The peer
//! is marked **dead**, the dead-letter hook observes a
//! `FaultCause::Transport` fault, and every undeliverable message —
//! queued, batched, or submitted later — is killed *loudly* in
//! `kill_parcel` style: counted under `dead_transport`, with the fault
//! delivered to each parcel's continuation so waiters resolve with
//! `PxError::Fault` in bounded time instead of hanging. Fault delivery
//! is deferred to a scheduler task on the own locality because `submit`
//! may be called under a coalescing-port lock that a fault continuation
//! would need to re-take.
//!
//! Reconnection is an I/O-loop timer and bounded: on an outbound
//! connection failure the loop re-dials up to
//! `TcpConfig::reconnect_attempts` times (spaced by a retry timer) and
//! re-sends the unacknowledged write batch from the front message's
//! first byte — **at-least-once across a reconnect**: messages the peer
//! had already consumed from the failed connection can be delivered
//! twice, so actions crossing TCP should be idempotent, or set
//! `reconnect_attempts = 0` for at-most-once (failed batches are then
//! killed loudly instead). Once the attempts are spent, the peer is
//! permanently dead to this process — a later inbound connection from
//! it is still *read* (its parcels execute), but nothing is sent back;
//! rejoin-after-restart needs the distributed AGAS first (see ROADMAP).
//!
//! Process accounting: activity tokens never cross an OS-process
//! boundary (see `route_parcel`), so a cross-rank parcel carries its
//! owning pid for cancellation context only; hierarchical quiescence
//! meters work within each process.
//!
//! What this backend **cannot** do is deliver `WireMsg::Task` closures
//! to another process — closures do not serialize. Those die loudly at
//! submission with the same transport fault; distributed work moves via
//! action parcels, as the model intends.

use super::{Transport, TransportSubmitter, WireModel, WireMsg};
use crate::action::ActionId;
use crate::error::{Fault, FaultCause, PxError, PxResult};
use crate::gid::{Gid, LocalityId};
use crate::locality::Locality;
use crate::parcel::Parcel;
use crate::runtime::RuntimeInner;
use crate::sched::Task;
use crate::stats::{PeerStats, TransportStats};
use parking_lot::{Condvar, Mutex};
use px_poll::{Interest, Poller, WAKE_TOKEN};
use px_wire::stream::{self, msg_kind, StreamAssembler, WriteBatch};
use std::collections::{BinaryHeap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-peer outbound queue bound in bytes: a data-lane submit toward a
/// peer with this much already queued blocks (briefly, re-checked) until
/// the I/O thread drains room — backpressure instead of unbounded
/// memory. The control lane is exempt: gossip must never wait behind
/// the backlog it reports.
const SEND_QUEUE_BYTES: usize = 4 * 1024 * 1024;
/// I/O slices per `write_vectored` call (well under any `IOV_MAX`).
const MAX_WRITE_SLICES: usize = 64;
/// Read chunk size for inbound connections.
const READ_CHUNK: usize = 64 * 1024;
/// Spacing between connect attempts (a poller timer, never a sleep).
const CONNECT_RETRY: Duration = Duration::from_millis(25);
/// Deadline for one nonblocking connect attempt to become writable.
const CONNECT_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(5);
/// Deadline for an accepted connection to produce its handshake — a
/// silent stranger (port scanner, health checker) is dropped then.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long shutdown keeps the loop alive to flush pending writes
/// before counting the leftovers as transport deaths.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// Configuration of the TCP backend: which locality this process *is*
/// and where every locality listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// The locality id owned by this OS process.
    pub rank: u16,
    /// Listen address of every locality, indexed by locality id
    /// (`addrs[rank]` is this process's bind address). Length must equal
    /// `Config::localities`.
    pub addrs: Vec<String>,
    /// How long `RuntimeBuilder::build` may wait for the full mesh
    /// (connects out + handshakes in) before failing loudly.
    pub bootstrap_timeout: Duration,
    /// Reconnection attempts the I/O loop makes after an outbound
    /// connection failure before declaring the peer dead.
    pub reconnect_attempts: u32,
}

impl TcpConfig {
    /// Config for `rank` in a system whose localities listen at `addrs`
    /// (default 30 s bootstrap timeout, 1 reconnect attempt).
    pub fn new(rank: u16, addrs: Vec<String>) -> TcpConfig {
        TcpConfig {
            rank,
            addrs,
            bootstrap_timeout: Duration::from_secs(30),
            reconnect_attempts: 1,
        }
    }
}

/// Send/receive counters for one peer.
#[derive(Default)]
struct PeerCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    reconnects: AtomicU64,
}

/// One message queued toward a peer.
struct OutMsg {
    kind: u8,
    bytes: Vec<u8>,
    /// Submit-time stamp feeding the `NetRtt` instrument — `None` when
    /// metrics are off. Taken and read on this rank only (the stamp
    /// never crosses the wire).
    submitted: Option<Instant>,
}

/// The submit-side half of a peer: two queue lanes plus backpressure
/// accounting, drained by the I/O thread.
#[derive(Default)]
struct SendQueue {
    /// Control lane: drained ahead of data, never backpressured.
    control: VecDeque<OutMsg>,
    /// Data lane: parcels and frames, in submission order.
    data: VecDeque<OutMsg>,
    /// Bytes across both lanes (bodies only; headers are a fixed tax).
    queued_bytes: usize,
    /// High-watermark of `queued_bytes` (backpressure visibility).
    bytes_hwm: u64,
    /// Closed: peer declared dead or transport shutting down. Submits
    /// must not enqueue — the closing code drained the queues already.
    closed: bool,
}

/// Per-peer send state shared between submitters and the I/O thread.
struct PeerSlot {
    queue: Mutex<SendQueue>,
    /// Signalled when the I/O thread drains room (or closes the queue).
    room: Condvar,
    /// Peer declared unreachable (fast-path mirror of `queue.closed`
    /// outside shutdown).
    dead: AtomicBool,
    counters: PeerCounters,
}

/// State shared between submitters and the I/O thread.
struct TcpShared {
    rank: u16,
    resolved: Vec<Option<SocketAddr>>,
    reconnect_attempts: u32,
    localities: Arc<Vec<Arc<Locality>>>,
    /// Indexed by locality id; `None` at `rank` (no self-peering).
    peers: Vec<Option<PeerSlot>>,
    /// Late-bound runtime for fault delivery.
    rt: OnceLock<Weak<RuntimeInner>>,
    shutting_down: AtomicBool,
    /// The I/O thread's poller; submitters only `wake` it.
    poller: Poller,
}

impl TcpShared {
    #[inline]
    fn own(&self) -> &Arc<Locality> {
        &self.localities[self.rank as usize]
    }

    #[inline]
    fn peer(&self, id: u16) -> &PeerSlot {
        self.peers[id as usize]
            .as_ref()
            .expect("peer slot exists for every non-self locality")
    }

    fn rt(&self) -> Option<Arc<RuntimeInner>> {
        self.rt.get().and_then(Weak::upgrade)
    }

    /// Deliver a received (or locally-addressed) stream message into the
    /// own locality's queues, honoring the control-plane priority lane.
    fn deliver_local(&self, kind: u8, body: Vec<u8>) {
        let loc = self.own();
        match kind {
            msg_kind::PARCEL => loc.push_task(Task::parcel_bytes(body)),
            msg_kind::PARCEL_STAGED => loc.push_staged(Task::parcel_bytes(body)),
            msg_kind::FRAME => loc.push_task(Task::parcel_frame(body)),
            msg_kind::FRAME_STAGED => loc.push_staged(Task::parcel_frame(body)),
            msg_kind::CONTROL => loc.push_control(Task::parcel_bytes(body)),
            // StreamAssembler rejects unknown kinds before this point.
            _ => loc.counters.count_death(FaultCause::Decode, 1),
        }
    }

    /// Record a transport trace event for every traced parcel record
    /// inside one stream message. Gated on the owned locality having a
    /// trace ring, so the untraced path pays one pointer check; a frame
    /// is walked only when tracing is live, reusing the record
    /// boundaries the frame already carries — no parcel decode.
    fn trace_stream_msg(
        &self,
        kind: crate::trace::TraceEventKind,
        msg: u8,
        body: &[u8],
        peer: u16,
    ) {
        let loc = self.own();
        if loc.trace.is_none() {
            return;
        }
        match msg {
            msg_kind::FRAME | msg_kind::FRAME_STAGED => {
                if let Ok(view) = px_wire::FrameView::parse(body) {
                    for rec in view.records().flatten() {
                        trace_record(loc, kind, rec, peer);
                    }
                }
            }
            msg_kind::CONTROL => {} // gossip is never traced
            _ => trace_record(loc, kind, body, peer),
        }
    }

    fn submit(&self, msg: WireMsg) {
        if self.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match msg {
            WireMsg::Task { dest, task } => {
                if dest.0 == self.rank {
                    self.own().push_task(task);
                    return;
                }
                // Closures do not serialize: this is work the transport
                // cannot carry. Die loudly (counted + dead-letter) so the
                // mistake is visible instead of a silent hang.
                self.own().counters.count_death(FaultCause::Transport, 1);
                if let Some(rt) = self.rt() {
                    rt.notify_dead_letter(&Fault::new(
                        FaultCause::Transport,
                        ActionId(0),
                        Gid::locality_root(dest),
                        "closure task cannot cross an OS-process boundary; use action parcels",
                    ));
                }
            }
            WireMsg::Parcel {
                dest,
                staged,
                bytes,
            } => {
                let kind = if staged {
                    msg_kind::PARCEL_STAGED
                } else {
                    msg_kind::PARCEL
                };
                self.send_to_peer(dest, kind, bytes);
            }
            WireMsg::Frame {
                dest,
                staged,
                bytes,
            } => {
                let kind = if staged {
                    msg_kind::FRAME_STAGED
                } else {
                    msg_kind::FRAME
                };
                self.send_to_peer(dest, kind, bytes);
            }
            WireMsg::Control { dest, bytes } => {
                self.send_to_peer(dest, msg_kind::CONTROL, bytes);
            }
        }
    }

    /// Queue one message toward `dest` and wake the I/O thread. The data
    /// lane blocks (bounded re-check) when the peer's queue is at its
    /// byte bound; the control lane never does.
    fn send_to_peer(&self, dest: LocalityId, kind: u8, bytes: Vec<u8>) {
        if dest.0 == self.rank {
            // Defensive: same-locality traffic short-circuits upstream.
            self.deliver_local(kind, bytes);
            return;
        }
        // Submission intent is recorded before the dead check: a message
        // toward a lost peer shows NetSubmit followed by its NetFault.
        self.trace_stream_msg(
            crate::trace::TraceEventKind::NetSubmit,
            kind,
            &bytes,
            dest.0,
        );
        let slot = self.peer(dest.0);
        if slot.dead.load(Ordering::Acquire) {
            self.kill_undeliverable(dest.0, vec![(kind, bytes)]);
            return;
        }
        let control = kind == msg_kind::CONTROL;
        // Stamped before the backpressure wait so NetRtt charges the
        // full submit→drain latency, including time spent blocked on a
        // slow peer's queue bound.
        let submitted = self.own().metrics_now();
        let was_empty = {
            let mut q = slot.queue.lock();
            if !control {
                while !q.closed && q.queued_bytes >= SEND_QUEUE_BYTES {
                    slot.room.wait_for(&mut q, Duration::from_millis(100));
                }
            }
            if q.closed {
                // Peer died (or shutdown raced) between the dead check
                // and the lock: the closer already drained the queues, so
                // this message is ours to kill (silently during
                // shutdown — teardown races stay benign).
                drop(q);
                if !self.shutting_down.load(Ordering::Acquire) {
                    self.kill_undeliverable(dest.0, vec![(kind, bytes)]);
                }
                return;
            }
            let was_empty = q.control.is_empty() && q.data.is_empty();
            q.queued_bytes += bytes.len();
            q.bytes_hwm = q.bytes_hwm.max(q.queued_bytes as u64);
            let lane = if control { &mut q.control } else { &mut q.data };
            lane.push_back(OutMsg {
                kind,
                bytes,
                submitted,
            });
            was_empty
        };
        // One wake per empty→non-empty transition, not per message: the
        // I/O thread drains whole queues per iteration, so a non-empty
        // queue already has a wake in flight (the eventfd coalesces) or
        // is being pulled under this same lock right now.
        if was_empty {
            self.poller.wake();
        }
    }

    /// Mark `peer` unreachable: close its queue (draining is the
    /// caller's job — under the same lock, so no submit can slip
    /// between), release blocked submitters, and tell the dead-letter
    /// hook (once per transition). Per-message deaths are counted where
    /// the messages are killed. Returns the drained queue contents.
    fn close_peer(&self, peer: u16, why: &str) -> Vec<(u8, Vec<u8>)> {
        let slot = self.peer(peer);
        let drained: Vec<(u8, Vec<u8>)> = {
            let mut q = slot.queue.lock();
            q.closed = true;
            q.queued_bytes = 0;
            let control = q.control.drain(..);
            // Field-split borrow: collect both lanes in priority order.
            let mut out: Vec<(u8, Vec<u8>)> = control.map(|m| (m.kind, m.bytes)).collect();
            out.extend(q.data.drain(..).map(|m| (m.kind, m.bytes)));
            out
        };
        slot.room.notify_all();
        let newly_dead = !slot.dead.swap(true, Ordering::AcqRel);
        if newly_dead && !self.shutting_down.load(Ordering::Acquire) {
            // Peer-death transition under the never-sampled id 0: visible
            // in full dumps even when no traced parcel was in flight.
            self.own().trace_event(
                Some(0),
                crate::trace::TraceEventKind::NetFault,
                0,
                u64::from(peer),
            );
            if let Some(rt) = self.rt() {
                rt.notify_dead_letter(&Fault::new(
                    FaultCause::Transport,
                    ActionId(0),
                    Gid::locality_root(LocalityId(peer)),
                    format!("peer locality {peer} unreachable: {why}"),
                ));
            }
        }
        drained
    }

    /// Kill undeliverable stream messages loudly. With a bound runtime
    /// the kill is deferred to a scheduler task on the own locality —
    /// `submit` may hold a coalescing-port lock that the fault
    /// continuations need — where each parcel dies via `kill_parcel`
    /// (counted, dead-letter, fault to continuation, process token
    /// released). Without one (tests, boot races) the deaths are counted
    /// directly.
    fn kill_undeliverable(&self, peer: u16, msgs: Vec<(u8, Vec<u8>)>) {
        if msgs.is_empty() {
            return;
        }
        let why = format!("transport to locality {peer} lost");
        match self.rt() {
            None => self.count_deaths(&msgs),
            Some(_) => {
                self.own().push_task(Task::thread(move |ctx| {
                    let rt = ctx.rt_inner().clone();
                    let loc = ctx.locality().clone();
                    for (kind, body) in msgs {
                        kill_stream_msg(&rt, &loc, kind, &body, &why);
                    }
                }));
            }
        }
    }

    /// Count per-parcel transport deaths without a runtime (no
    /// continuations to fault).
    fn count_deaths(&self, msgs: &[(u8, Vec<u8>)]) {
        let loc = self.own();
        for (kind, body) in msgs {
            loc.counters
                .count_death(FaultCause::Transport, count_records(*kind, body));
        }
    }
}

/// Record one transport event for a single encoded parcel record, if the
/// record carries a trace id. The destination gid doubles as the event's
/// subject; `aux` names the peer rank on the far side of the hop.
fn trace_record(loc: &Locality, kind: crate::trace::TraceEventKind, bytes: &[u8], peer: u16) {
    if let Some(t) = Parcel::peek_trace(bytes) {
        let dest = bytes
            .get(..8)
            .map_or(0, |b| u64::from_le_bytes(b.try_into().expect("8 bytes")));
        loc.trace_event(Some(t), kind, dest, u64::from(peer));
    }
}

/// Parcel records inside one stream message (for counting deaths when no
/// runtime is bound).
fn count_records(kind: u8, body: &[u8]) -> u64 {
    match kind {
        msg_kind::FRAME | msg_kind::FRAME_STAGED => px_wire::FrameView::parse(body)
            .map(|v| u64::from(v.record_count()))
            .unwrap_or(1),
        _ => 1,
    }
}

/// Kill every parcel inside one undeliverable stream message.
fn kill_stream_msg(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, kind: u8, body: &[u8], why: &str) {
    match kind {
        msg_kind::FRAME | msg_kind::FRAME_STAGED => match px_wire::FrameView::parse(body) {
            Ok(view) => {
                for rec in view.records() {
                    match rec {
                        Ok(bytes) => kill_record(rt, loc, bytes, why),
                        Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
                    }
                }
            }
            Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
        },
        _ => kill_record(rt, loc, body, why),
    }
}

fn kill_record(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, bytes: &[u8], why: &str) {
    match Parcel::decode(bytes) {
        Ok(p) => {
            // The transport flavor of this death, under the parcel's own
            // trace id (kill_parcel adds the ParcelKill right after).
            loc.trace_event(p.trace, crate::trace::TraceEventKind::NetFault, p.dest.0, 0);
            // No activity token to release: cross-rank parcels are not
            // accounted to their process at the sender (tokens never
            // cross an OS-process boundary — see `route_parcel`), and
            // every message this transport kills was bound for another
            // rank.
            crate::sched::kill_parcel(rt, loc, p, FaultCause::Transport, why.to_string());
        }
        Err(_) => loc.counters.count_death(FaultCause::Decode, 1),
    }
}

/// The socket-backed `Transport`. Built by
/// `TcpTransport::bootstrap`; see the module docs for the thread model
/// and failure semantics.
pub(crate) struct TcpTransport {
    shared: Arc<TcpShared>,
    io: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Bind, spawn the I/O thread, and block until the full mesh exists
    /// (connected + handshake flushed to every peer, handshake accepted
    /// from every peer). Fails loudly after `cfg.bootstrap_timeout`.
    pub(crate) fn bootstrap(
        cfg: &TcpConfig,
        localities: Arc<Vec<Arc<Locality>>>,
    ) -> PxResult<TcpTransport> {
        let n = localities.len();
        let rank = cfg.rank;
        let mut resolved: Vec<Option<SocketAddr>> = Vec::with_capacity(n);
        for (j, addr) in cfg.addrs.iter().enumerate() {
            if j == rank as usize {
                resolved.push(None);
                continue;
            }
            let sa = addr
                .to_socket_addrs()
                .map_err(|e| PxError::BadConfig(format!("tcp: resolve {addr}: {e}")))?
                .next()
                .ok_or_else(|| PxError::BadConfig(format!("tcp: {addr} resolves to no address")))?;
            resolved.push(Some(sa));
        }
        let listen_addr = &cfg.addrs[rank as usize];
        let listener = TcpListener::bind(listen_addr)
            .map_err(|e| PxError::BadConfig(format!("tcp: bind {listen_addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| PxError::BadConfig(format!("tcp: nonblocking listener: {e}")))?;
        let poller =
            Poller::new().map_err(|e| PxError::BadConfig(format!("tcp: readiness poller: {e}")))?;

        let peers: Vec<Option<PeerSlot>> = (0..n as u16)
            .map(|j| {
                (j != rank).then(|| PeerSlot {
                    queue: Mutex::new(SendQueue::default()),
                    room: Condvar::new(),
                    dead: AtomicBool::new(false),
                    counters: PeerCounters::default(),
                })
            })
            .collect();
        let shared = Arc::new(TcpShared {
            rank,
            resolved,
            reconnect_attempts: cfg.reconnect_attempts,
            localities,
            peers,
            rt: OnceLock::new(),
            shutting_down: AtomicBool::new(false),
            poller,
        });

        let (barrier_tx, barrier_rx) = crossbeam::channel::bounded::<Result<(), String>>(1);
        let io = {
            let sh = shared.clone();
            let deadline = Instant::now() + cfg.bootstrap_timeout;
            std::thread::Builder::new()
                .name("px-tcp-io".into())
                .spawn(move || IoLoop::new(sh, listener, deadline, barrier_tx).run())
                .expect("spawn tcp I/O thread")
        };
        let mut transport = TcpTransport {
            shared,
            io: Some(io),
        };
        // The loop enforces the deadline itself; the grace covers a
        // wedged thread, not a slow peer.
        let grace = cfg.bootstrap_timeout + Duration::from_secs(5);
        match barrier_rx.recv_timeout(grace) {
            Ok(Ok(())) => Ok(transport),
            Ok(Err(why)) => {
                transport.shutdown();
                Err(PxError::BadConfig(why))
            }
            Err(_) => {
                transport.shutdown();
                Err(PxError::BadConfig(
                    "tcp bootstrap: I/O thread unresponsive".into(),
                ))
            }
        }
    }
}

impl Transport for TcpTransport {
    fn submit(&self, msg: WireMsg, _bytes: usize) {
        self.shared.submit(msg);
    }

    fn submitter(&self) -> TransportSubmitter {
        let shared = self.shared.clone();
        Arc::new(move |msg, _bytes| shared.submit(msg))
    }

    fn model(&self) -> WireModel {
        // The network's physics are real; nothing is injected.
        WireModel::instant()
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn frame_version(&self) -> u8 {
        px_wire::FRAME_VERSION_CHECKSUM
    }

    fn bind(&self, rt: &Arc<RuntimeInner>) {
        let _ = self.shared.rt.set(Arc::downgrade(rt));
    }

    fn transport_stats(&self) -> TransportStats {
        TransportStats {
            peers: self
                .shared
                .peers
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| {
                    let slot = slot.as_ref()?;
                    let c = &slot.counters;
                    let (depth, bytes_hwm) = {
                        let q = slot.queue.lock();
                        ((q.control.len() + q.data.len()) as u64, q.bytes_hwm)
                    };
                    Some(PeerStats {
                        peer: id as u16,
                        msgs_sent: c.msgs_sent.load(Ordering::Relaxed),
                        bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
                        frames_sent: c.frames_sent.load(Ordering::Relaxed),
                        msgs_recv: c.msgs_recv.load(Ordering::Relaxed),
                        bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
                        reconnects: c.reconnects.load(Ordering::Relaxed),
                        queue_depth: depth,
                        queue_bytes_hwm: bytes_hwm,
                    })
                })
                .collect(),
        }
    }

    fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Close the queues so blocked submitters exit; messages already
        // queued are drained by the I/O loop before it stops.
        for slot in self.shared.peers.iter().flatten() {
            slot.queue.lock().closed = true;
            slot.room.notify_all();
        }
        self.shared.poller.wake();
        if let Some(h) = self.io.take() {
            // The I/O thread itself can be the one tearing the runtime
            // down: `kill_undeliverable` upgrades the runtime weak, and
            // when a peer dies during shutdown that temporary can be the
            // *last* strong reference — its drop runs `Wire::drop` (and
            // this shutdown) on the I/O thread. Joining would self-join
            // and panic; skip it — the loop observes `shutting_down` and
            // exits on its own (it only borrows `TcpShared`, which the
            // detached thread keeps alive).
            if h.thread().id() == std::thread::current().id() {
                return;
            }
            let _ = h.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// The I/O loop: everything below runs on the single px-tcp-io thread.
// ---------------------------------------------------------------------------

/// Poll token namespaces (`u64::MAX` is the poller's wake token).
const TOKEN_LISTENER: u64 = u64::MAX - 1;
const TOKEN_OUT_BASE: u64 = 1 << 32;
const TOKEN_IN_BASE: u64 = 2 << 32;

/// Outbound connection state for one peer.
enum Conn {
    /// Nonblocking connect in flight (completion = writability).
    Connecting(TcpStream),
    /// Connected; handshake and queued messages flow.
    Up(TcpStream),
    /// Retry timer pending.
    Backoff,
    /// Permanently dead (attempts spent) — or torn down at shutdown.
    Down,
}

/// Loop-owned per-peer state (the submit side lives in [`PeerSlot`]).
struct PeerIo {
    conn: Conn,
    /// Queued wire bytes with partial-write carry-over.
    batch: WriteBatch,
    /// Unsent prefix of the connection handshake (empty once flushed).
    hello: Vec<u8>,
    /// Interest currently registered for the outbound socket.
    registered: Option<Interest>,
    /// Reconnect attempts left in the current failure episode
    /// (unlimited during bootstrap — the barrier deadline bounds it).
    attempts_left: u32,
    /// Guards stale `ConnectTimeout` timers across attempts.
    attempt_seq: u64,
    /// Outbound half of the bootstrap barrier: hello fully flushed once.
    hello_done: bool,
}

/// One accepted inbound connection (peer unknown until its handshake).
struct InConn {
    stream: TcpStream,
    peer: Option<u16>,
    asm: StreamAssembler,
    hello: [u8; stream::HANDSHAKE_LEN],
    hello_got: usize,
    /// Guards stale `HelloTimeout` timers across slab-slot reuse.
    seq: u64,
}

/// Timed work folded into the poll timeout (never a sleep).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    /// Retry the outbound connect to a peer.
    Retry(u16),
    /// A connect attempt (identified by seq) ran out of time.
    ConnectTimeout(u16, u64),
    /// An inbound connection (slab idx, seq) never sent its handshake.
    HelloTimeout(usize, u64),
    /// The bootstrap barrier ran out of time.
    Bootstrap,
    /// Shutdown stops draining and counts the leftovers.
    Drain,
}

struct IoLoop {
    shared: Arc<TcpShared>,
    listener: TcpListener,
    peers: Vec<Option<PeerIo>>,
    inbound: Vec<Option<InConn>>,
    inbound_seq: u64,
    timers: BinaryHeap<std::cmp::Reverse<(Instant, TimerKind)>>,
    /// Barrier state: which peers have handshaked in.
    seen_in: Vec<bool>,
    heard: usize,
    barrier_tx: Option<crossbeam::channel::Sender<Result<(), String>>>,
    bootstrap_deadline: Instant,
    /// Until the barrier resolves, connect retries are unlimited.
    bootstrapping: bool,
    drain_deadline: Option<Instant>,
}

impl IoLoop {
    fn new(
        shared: Arc<TcpShared>,
        listener: TcpListener,
        bootstrap_deadline: Instant,
        barrier_tx: crossbeam::channel::Sender<Result<(), String>>,
    ) -> IoLoop {
        let n = shared.localities.len();
        let peers = (0..n as u16)
            .map(|j| {
                (j != shared.rank).then(|| PeerIo {
                    conn: Conn::Backoff,
                    batch: WriteBatch::new(),
                    hello: Vec::new(),
                    registered: None,
                    attempts_left: 0,
                    attempt_seq: 0,
                    hello_done: false,
                })
            })
            .collect();
        IoLoop {
            shared,
            listener,
            peers,
            inbound: Vec::new(),
            inbound_seq: 0,
            timers: BinaryHeap::new(),
            seen_in: vec![false; n],
            heard: 0,
            barrier_tx: Some(barrier_tx),
            bootstrap_deadline,
            bootstrapping: true,
            drain_deadline: None,
        }
    }

    fn run(mut self) {
        if self
            .shared
            .poller
            .register(
                self.listener.as_raw_fd(),
                TOKEN_LISTENER,
                Interest::READABLE,
            )
            .is_err()
        {
            self.fail_bootstrap("tcp: registering the listener failed".into());
            return;
        }
        self.arm_timer(self.bootstrap_deadline, TimerKind::Bootstrap);
        // Kick off the outbound mesh: every peer starts connecting now.
        for j in 0..self.peers.len() as u16 {
            if self.peers[j as usize].is_some() {
                self.start_connect(j);
            }
        }
        self.check_barrier();

        let mut events = Vec::new();
        loop {
            if self.observe_shutdown() {
                return;
            }
            let timeout = self
                .timers
                .peek()
                .map(|std::cmp::Reverse((at, _))| at.saturating_duration_since(Instant::now()));
            if self.shared.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot make progress; fail loudly if
                // the barrier still waits, then stop.
                self.fail_bootstrap("tcp: poller wait failed".into());
                return;
            }
            for ev in &events {
                match ev.token {
                    WAKE_TOKEN => {} // queues scanned below
                    TOKEN_LISTENER => self.accept_ready(),
                    t if t >= TOKEN_IN_BASE => self.inbound_ready((t - TOKEN_IN_BASE) as usize),
                    t if t >= TOKEN_OUT_BASE => {
                        self.outbound_ready((t - TOKEN_OUT_BASE) as u16, ev.writable())
                    }
                    _ => {}
                }
            }
            self.fire_due_timers();
            self.pump_sends();
        }
    }

    // -- timers -------------------------------------------------------------

    fn arm_timer(&mut self, at: Instant, kind: TimerKind) {
        self.timers.push(std::cmp::Reverse((at, kind)));
    }

    fn fire_due_timers(&mut self) {
        let now = Instant::now();
        while let Some(std::cmp::Reverse((at, _))) = self.timers.peek() {
            if *at > now {
                break;
            }
            let std::cmp::Reverse((_, kind)) = self.timers.pop().expect("peeked");
            match kind {
                TimerKind::Retry(j) => {
                    if matches!(self.peer_io(j).conn, Conn::Backoff) {
                        self.start_connect(j);
                    }
                }
                TimerKind::ConnectTimeout(j, seq) => {
                    let io = self.peer_io(j);
                    if io.attempt_seq == seq && matches!(io.conn, Conn::Connecting(_)) {
                        self.connect_attempt_failed(j, "connect timed out");
                    }
                }
                TimerKind::HelloTimeout(idx, seq) => {
                    let stale = match self.inbound.get(idx).and_then(Option::as_ref) {
                        Some(c) => c.seq != seq || c.peer.is_some(),
                        None => true,
                    };
                    if !stale {
                        // Silent stranger: drop before it touches any
                        // runtime state (we never learned who it was).
                        self.drop_inbound(idx);
                    }
                }
                TimerKind::Bootstrap => {
                    if self.barrier_tx.is_some() {
                        let n = self.shared.localities.len();
                        self.fail_bootstrap(format!(
                            "tcp bootstrap barrier timed out: {} of {} peers handshaked",
                            self.heard,
                            n - 1
                        ));
                    }
                }
                TimerKind::Drain => {
                    // Handled by observe_shutdown on the next iteration.
                }
            }
        }
    }

    // -- bootstrap barrier --------------------------------------------------

    fn fail_bootstrap(&mut self, why: String) {
        if let Some(tx) = self.barrier_tx.take() {
            let _ = tx.send(Err(why));
        }
        self.bootstrapping = false;
    }

    fn check_barrier(&mut self) {
        if self.barrier_tx.is_none() {
            return;
        }
        let n = self.shared.localities.len();
        let out_ready = self.peers.iter().flatten().filter(|p| p.hello_done).count();
        if self.heard == n - 1 && out_ready == n - 1 {
            if let Some(tx) = self.barrier_tx.take() {
                let _ = tx.send(Ok(()));
            }
            self.bootstrapping = false;
        }
    }

    // -- outbound -----------------------------------------------------------

    fn peer_io(&mut self, j: u16) -> &mut PeerIo {
        self.peers[j as usize]
            .as_mut()
            .expect("peer io exists for every non-self locality")
    }

    fn out_token(j: u16) -> u64 {
        TOKEN_OUT_BASE + u64::from(j)
    }

    /// Begin a nonblocking connect attempt toward `j`.
    fn start_connect(&mut self, j: u16) {
        let addr = self.shared.resolved[j as usize].expect("peer addr resolved at bootstrap");
        let io = self.peer_io(j);
        io.attempt_seq += 1;
        let seq = io.attempt_seq;
        match px_poll::connect_nonblocking(&addr) {
            Ok(stream) => {
                let register = self.shared.poller.register(
                    stream.as_raw_fd(),
                    Self::out_token(j),
                    Interest::WRITABLE,
                );
                let io = self.peer_io(j);
                match register {
                    Ok(()) => {
                        io.conn = Conn::Connecting(stream);
                        io.registered = Some(Interest::WRITABLE);
                        self.arm_timer(
                            Instant::now() + CONNECT_ATTEMPT_TIMEOUT,
                            TimerKind::ConnectTimeout(j, seq),
                        );
                    }
                    Err(_) => {
                        drop(stream);
                        self.connect_attempt_failed(j, "poller registration failed");
                    }
                }
            }
            Err(_) => self.connect_attempt_failed(j, "connect failed"),
        }
    }

    /// One connect attempt failed: schedule a retry or give the peer up.
    fn connect_attempt_failed(&mut self, j: u16, why: &str) {
        let bootstrapping = self.bootstrapping;
        let io = self.peer_io(j);
        io.registered = None;
        if bootstrapping {
            // The barrier deadline bounds bootstrap; retries are free.
            io.conn = Conn::Backoff;
            self.arm_timer(Instant::now() + CONNECT_RETRY, TimerKind::Retry(j));
            return;
        }
        if io.attempts_left > 0 {
            io.attempts_left -= 1;
            io.conn = Conn::Backoff;
            self.arm_timer(Instant::now() + CONNECT_RETRY, TimerKind::Retry(j));
        } else {
            io.conn = Conn::Down;
            self.give_up_peer(j, why);
        }
    }

    /// The outbound connection to `j` failed mid-episode (write error,
    /// hang-up): start the bounded reconnect cycle, or give up.
    fn connection_lost(&mut self, j: u16, why: &str) {
        let io = self.peer_io(j);
        io.conn = Conn::Down;
        io.registered = None;
        io.batch.rewind(); // at-least-once: re-send from the front message
        io.hello.clear();
        if self.shared.shutting_down.load(Ordering::Acquire) {
            // Shutdown drains what it can; a lost connection now just
            // counts its leftovers.
            let io = self.peer_io(j);
            let leftovers = io.batch.drain_msgs();
            self.shared.count_deaths(&leftovers);
            return;
        }
        let attempts = self.shared.reconnect_attempts;
        let bootstrapping = self.bootstrapping;
        if bootstrapping || attempts > 0 {
            let io = self.peer_io(j);
            if !bootstrapping {
                io.attempts_left = attempts - 1;
            }
            io.conn = Conn::Backoff;
            self.arm_timer(Instant::now() + CONNECT_RETRY, TimerKind::Retry(j));
        } else {
            self.give_up_peer(j, why);
        }
    }

    /// Declare `j` dead: close its queue, kill everything queued or
    /// batched, loudly.
    fn give_up_peer(&mut self, j: u16, why: &str) {
        let io = self.peer_io(j);
        io.conn = Conn::Down;
        io.registered = None;
        let mut dead = io.batch.drain_msgs();
        dead.extend(self.shared.close_peer(j, why));
        self.shared.kill_undeliverable(j, dead);
    }

    /// Readiness on the outbound socket of peer `j`.
    fn outbound_ready(&mut self, j: u16, writable: bool) {
        match &self.peer_io(j).conn {
            Conn::Connecting(stream) => {
                if !writable {
                    return;
                }
                match px_poll::take_socket_error(stream) {
                    Ok(()) => {
                        // Connected: queue the handshake and (on a
                        // reconnect) count the re-establishment.
                        let rank = self.shared.rank;
                        let io = self.peer_io(j);
                        io.hello = stream::encode_handshake(rank).to_vec();
                        let Conn::Connecting(stream) = std::mem::replace(&mut io.conn, Conn::Down)
                        else {
                            unreachable!("matched Connecting above");
                        };
                        io.conn = Conn::Up(stream);
                        if io.hello_done {
                            self.shared
                                .peer(j)
                                .counters
                                .reconnects
                                .fetch_add(1, Ordering::Relaxed);
                            self.shared.own().trace_event(
                                Some(0),
                                crate::trace::TraceEventKind::NetReconnect,
                                0,
                                u64::from(j),
                            );
                            // Reconnect revives a dead-marked peer (the
                            // queue reopens only if it was closed by a
                            // *failed episode*, never after shutdown).
                            if !self.shared.shutting_down.load(Ordering::Acquire) {
                                let slot = self.shared.peer(j);
                                slot.queue.lock().closed = false;
                                slot.dead.store(false, Ordering::Release);
                            }
                        }
                        self.flush_peer(j);
                    }
                    Err(_) => {
                        let io = self.peer_io(j);
                        io.conn = Conn::Down;
                        io.registered = None;
                        self.connect_attempt_failed(j, "connect refused");
                    }
                }
            }
            Conn::Up(_) => {
                if writable {
                    self.flush_peer(j);
                }
                self.drain_outbound_read(j);
            }
            Conn::Backoff | Conn::Down => {}
        }
    }

    /// The peer never writes on our outbound (simplex) connection, so
    /// any read readiness is EOF/RST — the only way to notice a dropped
    /// peer between writes.
    fn drain_outbound_read(&mut self, j: u16) {
        let mut probe = [0u8; 512];
        let lost = {
            let Conn::Up(stream) = &mut self.peer_io(j).conn else {
                return;
            };
            loop {
                match stream.read(&mut probe) {
                    Ok(0) => break true,
                    Ok(_) => continue, // protocol garbage; discard
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break true,
                }
            }
        };
        if lost {
            self.connection_lost(j, "connection closed by peer");
        }
    }

    /// Write the hello and batched messages toward `j` until done or the
    /// socket fills; adjust epoll interest to match what remains.
    fn flush_peer(&mut self, j: u16) {
        let shared = self.shared.clone();
        let io = self.peer_io(j);
        let Conn::Up(stream) = &mut io.conn else {
            return;
        };
        let mut failed = false;
        // Handshake bytes go first, unvectored (seven bytes, once).
        while !io.hello.is_empty() {
            match stream.write(&io.hello) {
                Ok(n) => {
                    io.hello.drain(..n);
                    if io.hello.is_empty() {
                        io.hello_done = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        let c = &shared.peer(j).counters;
        while !failed && io.hello.is_empty() && !io.batch.is_empty() {
            let mut slices = Vec::with_capacity(MAX_WRITE_SLICES);
            io.batch.unwritten_slices(&mut slices, MAX_WRITE_SLICES);
            match stream.write_vectored(&slices) {
                Ok(n) => {
                    drop(slices);
                    c.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    io.batch.advance_with(n, |kind| {
                        c.msgs_sent.fetch_add(1, Ordering::Relaxed);
                        if kind == msg_kind::FRAME || kind == msg_kind::FRAME_STAGED {
                            c.frames_sent.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => failed = true,
            }
        }
        if failed {
            self.connection_lost(j, "write failed");
            return;
        }
        self.update_interest(j);
        self.check_barrier();
    }

    /// Keep the outbound socket's epoll interest in sync: writable only
    /// while there are bytes to push (level-triggered OUT on an idle
    /// socket would spin the loop).
    fn update_interest(&mut self, j: u16) {
        let shared = self.shared.clone();
        let io = self.peer_io(j);
        let Conn::Up(stream) = &io.conn else { return };
        let want = if io.hello.is_empty() && io.batch.is_empty() {
            Interest::READABLE
        } else {
            Interest::BOTH
        };
        if io.registered != Some(want) {
            let fd = stream.as_raw_fd();
            let res = match io.registered {
                Some(_) => shared.poller.reregister(fd, Self::out_token(j), want),
                None => shared.poller.register(fd, Self::out_token(j), want),
            };
            if res.is_ok() {
                io.registered = Some(want);
            }
        }
    }

    /// Move queued messages into per-peer write batches and flush.
    fn pump_sends(&mut self) {
        for j in 0..self.peers.len() as u16 {
            let Some(slot) = &self.shared.peers[j as usize] else {
                continue;
            };
            let pulled = {
                let mut q = slot.queue.lock();
                if q.control.is_empty() && q.data.is_empty() {
                    false
                } else {
                    let io = self.peers[j as usize].as_mut().expect("peer io");
                    // Drain time closes the NetRtt window opened at
                    // submit — both stamps from this rank's clock.
                    let own = self.shared.own();
                    for m in q.control.drain(..) {
                        own.metric_elapsed(crate::metrics::Instrument::NetRtt, m.submitted);
                        io.batch.push(m.kind, m.bytes);
                    }
                    for m in q.data.drain(..) {
                        own.metric_elapsed(crate::metrics::Instrument::NetRtt, m.submitted);
                        io.batch.push(m.kind, m.bytes);
                    }
                    q.queued_bytes = 0;
                    true
                }
            };
            if pulled {
                slot.room.notify_all();
                if matches!(self.peer_io(j).conn, Conn::Up(_)) {
                    self.flush_peer(j);
                } else if matches!(self.peer_io(j).conn, Conn::Down)
                    && !self.shared.shutting_down.load(Ordering::Acquire)
                {
                    // Raced a dying peer: the queue was closed after
                    // these were enqueued. Kill them loudly now.
                    let dead = self.peer_io(j).batch.drain_msgs();
                    self.shared.kill_undeliverable(j, dead);
                }
            }
        }
    }

    // -- inbound ------------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    self.inbound_seq += 1;
                    let conn = InConn {
                        stream,
                        peer: None,
                        asm: StreamAssembler::new(),
                        hello: [0u8; stream::HANDSHAKE_LEN],
                        hello_got: 0,
                        seq: self.inbound_seq,
                    };
                    let idx = match self.inbound.iter().position(Option::is_none) {
                        Some(i) => {
                            self.inbound[i] = Some(conn);
                            i
                        }
                        None => {
                            self.inbound.push(Some(conn));
                            self.inbound.len() - 1
                        }
                    };
                    if self
                        .shared
                        .poller
                        .register(fd, TOKEN_IN_BASE + idx as u64, Interest::READABLE)
                        .is_err()
                    {
                        self.inbound[idx] = None;
                        continue;
                    }
                    self.arm_timer(
                        Instant::now() + HANDSHAKE_TIMEOUT,
                        TimerKind::HelloTimeout(idx, self.inbound_seq),
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drop_inbound(&mut self, idx: usize) {
        // Dropping the stream closes the fd, which deregisters it.
        self.inbound[idx] = None;
    }

    /// Readiness on inbound connection `idx`: finish the handshake if
    /// pending, then drain stream messages into the local queues.
    fn inbound_ready(&mut self, idx: usize) {
        let Some(conn) = self.inbound.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        // Handshake phase: read exactly the hello, never beyond.
        while conn.peer.is_none() {
            match conn.stream.read(&mut conn.hello[conn.hello_got..]) {
                Ok(0) => {
                    self.drop_inbound(idx);
                    return;
                }
                Ok(n) => {
                    conn.hello_got += n;
                    if conn.hello_got < stream::HANDSHAKE_LEN {
                        continue;
                    }
                    let peer = match stream::decode_handshake(&conn.hello) {
                        Ok(p)
                            if (p as usize) < self.shared.localities.len()
                                && p != self.shared.rank =>
                        {
                            p
                        }
                        // Stranger, bad hello, or impossible id: drop it
                        // before it touches any runtime state.
                        _ => {
                            self.drop_inbound(idx);
                            return;
                        }
                    };
                    conn.peer = Some(peer);
                    if !self.seen_in[peer as usize] {
                        self.seen_in[peer as usize] = true;
                        self.heard += 1;
                        self.check_barrier();
                    }
                    // Re-borrow (check_barrier needed &mut self).
                    let Some(c) = self.inbound.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    let _ = c.stream.set_nodelay(true);
                    return self.inbound_ready(idx);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_inbound(idx);
                    return;
                }
            }
        }
        let peer = conn.peer.expect("handshaked above");
        let mut chunk = vec![0u8; READ_CHUNK];
        let why: &str;
        'conn: loop {
            let n = match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    why = "connection closed";
                    break 'conn;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    why = "read failed";
                    break 'conn;
                }
            };
            let c = &self.shared.peer(peer).counters;
            c.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
            conn.asm.feed(&chunk[..n]);
            loop {
                match conn.asm.next_msg() {
                    Ok(Some((kind, body))) => {
                        c.msgs_recv.fetch_add(1, Ordering::Relaxed);
                        self.shared.trace_stream_msg(
                            crate::trace::TraceEventKind::NetRecv,
                            kind,
                            &body,
                            peer,
                        );
                        self.shared.deliver_local(kind, body);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Desynchronized stream: unrecoverable for a
                        // length-prefixed protocol. Count it and drop the
                        // connection; the peer's loop will reconnect.
                        self.shared
                            .own()
                            .counters
                            .count_death(FaultCause::Decode, 1);
                        why = "stream desynchronized";
                        break 'conn;
                    }
                }
            }
        }
        self.drop_inbound(idx);
        if !self.shared.shutting_down.load(Ordering::Acquire) {
            // The peer's sending half died. Mark it dead for *our* sends
            // (its inbound connection to us is handled independently) —
            // same transition the per-peer reader threads used to make.
            let drained = self.shared.close_peer(peer, why);
            let mut dead = drained;
            let io = self.peer_io(peer);
            dead.extend(io.batch.drain_msgs());
            self.shared.kill_undeliverable(peer, dead);
        }
    }

    // -- shutdown -----------------------------------------------------------

    /// During shutdown: keep the loop alive while useful flushing
    /// remains, then count leftovers and stop. Returns true to exit.
    fn observe_shutdown(&mut self) -> bool {
        if !self.shared.shutting_down.load(Ordering::Acquire) {
            return false;
        }
        if self.barrier_tx.is_some() {
            self.fail_bootstrap("tcp bootstrap aborted by shutdown".into());
        }
        let deadline = match self.drain_deadline {
            Some(d) => d,
            None => {
                let d = Instant::now() + SHUTDOWN_DRAIN;
                self.drain_deadline = Some(d);
                self.arm_timer(d, TimerKind::Drain);
                // Pull whatever was queued before the queues closed.
                self.pump_sends();
                d
            }
        };
        let mut pending = false;
        for j in 0..self.peers.len() as u16 {
            let Some(io) = &self.peers[j as usize] else {
                continue;
            };
            if matches!(io.conn, Conn::Up(_)) && !(io.hello.is_empty() && io.batch.is_empty()) {
                pending = true;
            }
        }
        if pending && Instant::now() < deadline {
            return false;
        }
        // Count what never made it out (no runtime task: the scheduler
        // may already be gone at teardown).
        for io in self.peers.iter_mut().flatten() {
            let leftovers = io.batch.drain_msgs();
            self.shared.count_deaths(&leftovers);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Value;
    use crate::parcel::Continuation;
    use crossbeam::deque::Steal;

    fn test_localities(n: usize) -> Arc<Vec<Arc<Locality>>> {
        Arc::new(
            (0..n)
                .map(|i| Arc::new(Locality::new(LocalityId(i as u16), false)))
                .collect(),
        )
    }

    /// Reserve loopback addresses. (Bind-then-drop: the tiny reuse
    /// race is acceptable in tests.)
    fn free_addrs(n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", l.local_addr().unwrap().port())
            })
            .collect()
    }

    fn boot_pair() -> (TcpTransport, TcpTransport, Arc<Vec<Arc<Locality>>>) {
        let addrs = free_addrs(2);
        let locs_a = test_localities(2);
        let locs_b = test_localities(2);
        let cfg_a = TcpConfig::new(0, addrs.clone());
        let cfg_b = TcpConfig::new(1, addrs);
        // Bootstrap blocks until both sides are up: run one side on a
        // helper thread.
        let b = std::thread::spawn({
            let locs_b = locs_b.clone();
            move || TcpTransport::bootstrap(&cfg_b, locs_b).unwrap()
        });
        let a = TcpTransport::bootstrap(&cfg_a, locs_a).unwrap();
        let b = b.join().unwrap();
        (a, b, locs_b)
    }

    fn noop_parcel(dest: LocalityId) -> Vec<u8> {
        Parcel::new(
            Gid::locality_root(dest),
            crate::sched::sys::NOOP,
            Value::unit(),
            Continuation::none(),
        )
        .encode()
    }

    fn wait_for<T>(mut poll: impl FnMut() -> Option<T>, what: &str) -> T {
        let t0 = Instant::now();
        loop {
            if let Some(v) = poll() {
                return v;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "timed out: {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn mesh_delivers_parcels_frames_and_control() {
        let (a, mut b, locs_b) = boot_pair();
        let bytes = noop_parcel(LocalityId(1));
        a.submit(
            WireMsg::Parcel {
                dest: LocalityId(1),
                staged: false,
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        let mut frame = px_wire::FrameBuf::with_version(px_wire::FRAME_VERSION_CHECKSUM);
        frame.push_record(&bytes);
        frame.push_record(&bytes);
        let fb = frame.take();
        a.submit(
            WireMsg::Frame {
                dest: LocalityId(1),
                staged: false,
                bytes: fb.clone(),
            },
            fb.len(),
        );
        a.submit(
            WireMsg::Control {
                dest: LocalityId(1),
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        a.submit(
            WireMsg::Parcel {
                dest: LocalityId(1),
                staged: true,
                bytes: bytes.clone(),
            },
            bytes.len(),
        );
        // No balance state on the test locality: control falls back to
        // the general queue, so injector expects parcel + frame + control.
        let own = &locs_b[1];
        let mut records = 0usize;
        let mut tasks = 0usize;
        wait_for(
            || {
                while let Steal::Success(t) = own.injector.steal() {
                    tasks += 1;
                    records += t.parcel_records();
                }
                (tasks >= 3 && records >= 4).then_some(())
            },
            "general-queue messages",
        );
        assert_eq!(tasks, 3, "parcel + frame + control");
        assert_eq!(records, 4, "1 + 2 + 1 records");
        wait_for(
            || matches!(own.staging.steal(), Steal::Success(_)).then_some(()),
            "staged parcel",
        );
        wait_for(
            || {
                let stats = a.transport_stats();
                let p1 = stats.peers.iter().find(|p| p.peer == 1).unwrap();
                (p1.msgs_sent == 4).then_some(())
            },
            "send counters",
        );
        let stats = a.transport_stats();
        let p1 = stats.peers.iter().find(|p| p.peer == 1).unwrap();
        assert_eq!(p1.frames_sent, 1);
        assert!(p1.bytes_sent > 0);
        assert!(p1.queue_bytes_hwm > 0, "messages were queued");
        // Receive-side counters live on B.
        wait_for(
            || (b.transport_stats().peers[0].msgs_recv == 4).then_some(()),
            "recv counters",
        );
        let bstats = b.transport_stats();
        let p0 = bstats.peers.iter().find(|p| p.peer == 0).unwrap();
        assert!(p0.reconnects == 0);
        b.shutdown();
        drop(a);
    }

    #[test]
    fn dead_peer_kills_submissions_loudly() {
        let (a, mut b, _locs_b) = boot_pair();
        b.shutdown();
        drop(b);
        // A's loop observes the EOF/refusal and (after the bounded
        // reconnect) marks peer 1 dead; submissions are then killed
        // loudly (counted inline: no runtime is bound in this unit test).
        let own = a.shared.own().clone();
        let t0 = Instant::now();
        loop {
            let bytes = noop_parcel(LocalityId(1));
            let n = bytes.len();
            a.submit(
                WireMsg::Parcel {
                    dest: LocalityId(1),
                    staged: false,
                    bytes,
                },
                n,
            );
            if own
                .counters
                .dead_transport
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
            {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "peer death never resolved submissions"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(a);
    }

    #[test]
    fn bootstrap_times_out_without_peer() {
        let addrs = free_addrs(2);
        let mut cfg = TcpConfig::new(0, addrs);
        cfg.bootstrap_timeout = Duration::from_millis(300);
        let locs = test_localities(2);
        let Err(err) = TcpTransport::bootstrap(&cfg, locs) else {
            panic!("bootstrap without a peer must time out");
        };
        assert!(matches!(err, PxError::BadConfig(_)));
    }

    #[test]
    fn closure_tasks_cannot_cross_processes() {
        let (a, b, _locs_b) = boot_pair();
        a.submit(
            WireMsg::Task {
                dest: LocalityId(1),
                task: Task::thread(|_| {}),
            },
            64,
        );
        assert_eq!(
            a.shared
                .own()
                .counters
                .dead_transport
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "closure transfer must die loudly"
        );
        drop(a);
        drop(b);
    }

    /// The tentpole invariant at transport level: the whole backend adds
    /// exactly ONE thread per rank, however many peers the mesh has.
    #[test]
    fn io_thread_count_is_flat_in_peers() {
        fn count_px_tcp_threads() -> usize {
            let tasks = std::fs::read_dir("/proc/self/task").expect("linux procfs");
            tasks
                .filter_map(|t| {
                    let comm = t.ok()?.path().join("comm");
                    let name = std::fs::read_to_string(comm).ok()?;
                    name.starts_with("px-tcp").then_some(())
                })
                .count()
        }
        // 4-rank mesh, all in this process (4 transports x 1 I/O thread).
        let n = 4;
        let addrs = free_addrs(n);
        let mut handles = Vec::new();
        for rank in 1..n as u16 {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                TcpTransport::bootstrap(&TcpConfig::new(rank, addrs), test_localities(n)).unwrap()
            }));
        }
        let t0 = TcpTransport::bootstrap(&TcpConfig::new(0, addrs), test_localities(n)).unwrap();
        let mut transports = vec![t0];
        for h in handles {
            transports.push(h.join().unwrap());
        }
        assert_eq!(
            count_px_tcp_threads(),
            n,
            "one I/O thread per rank, zero per peer"
        );
        for mut t in transports {
            t.shutdown();
        }
    }
}
