//! The in-process transport backend: the seed runtime's wire, unchanged.
//!
//! All localities live in one OS process; "delivery" is a push onto the
//! destination locality's run queue (general, staging, or control),
//! optionally held back by a [`DelayLine`] so the latency/overhead/
//! starvation phenomena of a real interconnect stay measurable. This
//! backend is the behavioral baseline the `Transport` refactor is
//! pinned against: version-1 frames, identical delay arithmetic,
//! identical queue discipline, zero added bytes.

use super::delay::DelayLine;
use super::{Transport, TransportSubmitter, WireModel, WireMsg};
use crate::locality::Locality;
use crate::sched::Task;
use std::sync::Arc;

/// Queue-push transport with injectable latency (the default backend).
pub(crate) struct InProcTransport {
    line: DelayLine<WireMsg>,
}

impl InProcTransport {
    /// Build the backend for `localities` under `model`.
    pub(crate) fn new(model: WireModel, localities: Arc<Vec<Arc<Locality>>>) -> InProcTransport {
        let sink: Arc<dyn Fn(WireMsg) + Send + Sync> = Arc::new(move |msg| match msg {
            WireMsg::Parcel {
                dest,
                staged,
                bytes,
            } => {
                let loc = &localities[dest.0 as usize];
                let task = Task::parcel_bytes(bytes);
                if staged {
                    loc.push_staged(task);
                } else {
                    loc.push_task(task);
                }
            }
            WireMsg::Frame {
                dest,
                staged,
                bytes,
            } => {
                let loc = &localities[dest.0 as usize];
                let task = Task::parcel_frame(bytes);
                if staged {
                    loc.push_staged(task);
                } else {
                    loc.push_task(task);
                }
            }
            WireMsg::Task { dest, task } => {
                localities[dest.0 as usize].push_task(task);
            }
            WireMsg::Control { dest, bytes } => {
                localities[dest.0 as usize].push_control(Task::parcel_bytes(bytes));
            }
        });
        InProcTransport {
            line: DelayLine::new(model, sink),
        }
    }
}

impl Transport for InProcTransport {
    fn submit(&self, msg: WireMsg, bytes: usize) {
        self.line.send(msg, bytes);
    }

    fn submitter(&self) -> TransportSubmitter {
        // Bind directly to the delay thread (or the inline sink on an
        // instant model) so the flusher shares the line's delay
        // arithmetic. The `LineSender` keeps the delay channel open; the
        // wire joins the flusher — the only holder — before `shutdown`.
        match self.line.sender() {
            Some(sender) => {
                Arc::new(move |msg, bytes| sender.send(msg, bytes)) as TransportSubmitter
            }
            None => {
                let sink = self.line.sink();
                Arc::new(move |msg, _bytes| sink(msg)) as TransportSubmitter
            }
        }
    }

    fn model(&self) -> WireModel {
        self.line.model()
    }

    fn supports_batching(&self) -> bool {
        // Batching an instant wire would only add latency (there is no
        // per-message transport cost to amortize, and no delay thread to
        // ride); the policy check upstream keeps the pre-refactor gating.
        !self.line.model().is_instant()
    }

    fn shutdown(&mut self) {
        self.line.shutdown();
    }
}
