//! The in-process transport backend: the seed runtime's wire, unchanged.
//!
//! All localities live in one OS process; "delivery" is a push onto the
//! destination locality's run queue (general, staging, or control),
//! optionally held back by a [`DelayLine`] so the latency/overhead/
//! starvation phenomena of a real interconnect stay measurable. This
//! backend is the behavioral baseline the `Transport` refactor is
//! pinned against: version-1 frames, identical delay arithmetic,
//! identical queue discipline, zero added bytes.

use super::delay::DelayLine;
use super::{Transport, TransportSubmitter, WireModel, WireMsg};
use crate::locality::Locality;
use crate::sched::Task;
use std::sync::Arc;

/// A wire message plus its submit-time stamp for the `NetRtt`
/// instrument (`None` when metrics are off). All localities share one
/// OS process here, so the stamp never leaves the clock it was taken
/// on even though it rides through the delay thread.
struct Stamped {
    msg: WireMsg,
    submitted: Option<std::time::Instant>,
}

/// Queue-push transport with injectable latency (the default backend).
pub(crate) struct InProcTransport {
    line: DelayLine<Stamped>,
    /// Sampled once at build (registries are attached pre-share), so the
    /// metrics-off submit path pays a single bool check.
    metrics_on: bool,
}

impl InProcTransport {
    /// Build the backend for `localities` under `model`.
    pub(crate) fn new(model: WireModel, localities: Arc<Vec<Arc<Locality>>>) -> InProcTransport {
        let metrics_on = localities.iter().any(|l| l.metrics.is_some());
        let sink: Arc<dyn Fn(Stamped) + Send + Sync> = Arc::new(move |s| {
            let Stamped { msg, submitted } = s;
            match msg {
                WireMsg::Parcel {
                    dest,
                    staged,
                    bytes,
                } => {
                    let loc = &localities[dest.0 as usize];
                    loc.metric_elapsed(crate::metrics::Instrument::NetRtt, submitted);
                    let task = Task::parcel_bytes(bytes);
                    if staged {
                        loc.push_staged(task);
                    } else {
                        loc.push_task(task);
                    }
                }
                WireMsg::Frame {
                    dest,
                    staged,
                    bytes,
                } => {
                    let loc = &localities[dest.0 as usize];
                    loc.metric_elapsed(crate::metrics::Instrument::NetRtt, submitted);
                    let task = Task::parcel_frame(bytes);
                    if staged {
                        loc.push_staged(task);
                    } else {
                        loc.push_task(task);
                    }
                }
                WireMsg::Task { dest, task } => {
                    let loc = &localities[dest.0 as usize];
                    loc.metric_elapsed(crate::metrics::Instrument::NetRtt, submitted);
                    loc.push_task(task);
                }
                WireMsg::Control { dest, bytes } => {
                    let loc = &localities[dest.0 as usize];
                    loc.metric_elapsed(crate::metrics::Instrument::NetRtt, submitted);
                    loc.push_control(Task::parcel_bytes(bytes));
                }
            }
        });
        InProcTransport {
            line: DelayLine::new(model, sink),
            metrics_on,
        }
    }

    #[inline]
    fn stamp(metrics_on: bool) -> Option<std::time::Instant> {
        metrics_on.then(std::time::Instant::now)
    }
}

impl Transport for InProcTransport {
    fn submit(&self, msg: WireMsg, bytes: usize) {
        let submitted = Self::stamp(self.metrics_on);
        self.line.send(Stamped { msg, submitted }, bytes);
    }

    fn submitter(&self) -> TransportSubmitter {
        // Bind directly to the delay thread (or the inline sink on an
        // instant model) so the flusher shares the line's delay
        // arithmetic. The `LineSender` keeps the delay channel open; the
        // wire joins the flusher — the only holder — before `shutdown`.
        let metrics_on = self.metrics_on;
        match self.line.sender() {
            Some(sender) => Arc::new(move |msg, bytes| {
                let submitted = Self::stamp(metrics_on);
                sender.send(Stamped { msg, submitted }, bytes)
            }) as TransportSubmitter,
            None => {
                let sink = self.line.sink();
                Arc::new(move |msg, _bytes| {
                    let submitted = Self::stamp(metrics_on);
                    sink(Stamped { msg, submitted })
                }) as TransportSubmitter
            }
        }
    }

    fn model(&self) -> WireModel {
        self.line.model()
    }

    fn supports_batching(&self) -> bool {
        // Batching an instant wire would only add latency (there is no
        // per-message transport cost to amortize, and no delay thread to
        // ride); the policy check upstream keeps the pre-refactor gating.
        !self.line.model().is_instant()
    }

    fn shutdown(&mut self) {
        self.line.shutdown();
    }
}
