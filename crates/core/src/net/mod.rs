//! The wire layer: inter-locality transport behind a backend-independent
//! `Transport` seam, with per-destination parcel batching.
//!
//! ## Architecture
//!
//! ```text
//!  send_parcel ──► PortSet (per-dest coalescing) ──► Transport::submit
//!                       ▲                                 │
//!                  flusher thread                  ┌──────┴───────┐
//!                                                  ▼              ▼
//!                                           InProcTransport  TcpTransport
//!                                           (DelayLine +     (sockets, one
//!                                            queue pushes)    peer/process)
//! ```
//!
//! Everything above the `Transport` trait — `WireMsg` submission, the
//! control-plane priority lane, [`BatchPolicy`] coalescing ports, flush
//! accounting — is backend-independent. Two backends exist:
//!
//! * `inproc::InProcTransport` (default): all localities share one OS
//!   process; messages are queue pushes routed through a [`DelayLine`]
//!   with injectable latency/bandwidth ([`WireModel`]). This is the seed
//!   runtime's wire, preserved bit-for-bit: version-1 frames, identical
//!   delay arithmetic, identical counters.
//! * `tcp::TcpTransport`: each OS process owns one locality and peers
//!   over TCP sockets carrying the same length-prefixed records inside
//!   [`px_wire::stream`] messages, with checksummed (version-2) frames.
//!
//! ## The `Transport` contract
//!
//! A backend implements `Transport` and must honor, in order of
//! importance:
//!
//! 1. **No silent loss.** A message that cannot be delivered (peer gone,
//!    closure task addressed across an OS-process boundary) must die
//!    *loudly*: count the death (`FaultCause::Transport`
//!    / `dead_transport`), notify the dead-letter hook, and deliver the
//!    fault to each dead parcel's continuation so downstream waiters
//!    resolve with `PxError::Fault` instead of hanging.
//! 2. **Queue discipline at the destination.** `WireMsg::Parcel`/`Frame`
//!    land in the destination's general run queue (staging buffer when
//!    `staged`); `WireMsg::Control` lands in the priority control queue,
//!    never coalesced and never behind data backlog; `WireMsg::Task` is
//!    an in-memory closure handoff — backends that cross address spaces
//!    must reject it loudly rather than pretend. The control lane
//!    carries balancer gossip *and* `__sys/metrics_pull` requests: both
//!    are how a rank observes a struggling peer, so a backend may not
//!    drop or delay them under data-lane backpressure — the moments the
//!    data lane is saturated are exactly the moments the observability
//!    plane must still answer. The distributed AGAS directory rides the
//!    same lane (`__sys/dir_lookup`, `dir_update`, `dir_repair`,
//!    `dir_commit` — see `sched::sys`): a chase that must ask an
//!    object's home rank, the departure write that repoints the home
//!    entry mid-migration, and the commit that unpins the destination
//!    copy are all on the critical path of every parcel *stuck behind*
//!    the data backlog, so queueing them with the data they unblock
//!    would deadlock the hot path against its own repair traffic. The
//!    directory ops are idempotent and individually small; what the
//!    backend owes them is ordering-free prompt delivery and the same
//!    loud-death rule — a lost `dir_update` is repaired by the next
//!    chase, but only if the loss is *visible* (counted, continuation
//!    faulted) rather than silent.
//! 3. **Submission is non-blocking-ish.** `submit` hands the message to
//!    the backend and returns — it never performs I/O on the caller's
//!    thread (the TCP backend queues and wakes its event loop; socket
//!    writes happen on the I/O thread). It may block briefly for
//!    backpressure (a bounded peer queue in *bytes*; the control lane is
//!    exempt so gossip never waits behind the backlog it reports) but
//!    must never deadlock against the port locks: fault delivery
//!    triggered *inside* `submit` is deferred to a scheduler task,
//!    because the caller may hold the coalescing-port lock of the very
//!    destination a fault continuation routes back to. Peer-loss faults
//!    therefore surface *after* `submit` returns, in bounded time — not
//!    as a submit error.
//! 4. **Shutdown flushes.** Pending messages are delivered (or killed
//!    loudly) before `shutdown` returns; afterwards `submit` is a silent
//!    no-op so teardown races stay benign.
//! 5. **Parcel bytes are opaque — including trace extensions.** A
//!    backend carries encoded parcels and frame records verbatim: it
//!    must not strip, reorder, or re-encode the flags byte or the
//!    optional extensions it gates (the owning pid and the
//!    `parcel_flags::HAS_TRACE` trace id — see [`crate::trace`]).
//!    Cross-rank causal tracing depends on the trace id arriving
//!    bit-identical at the destination; a backend that wants to observe
//!    it peeks ([`Parcel::peek_trace`]) rather than decodes.
//!
//! ## Batching ([`BatchPolicy`], `PortSet`)
//!
//! Per-parcel transport overhead — a `Vec` allocation, a channel or
//! socket submission, an injector push, and a worker wakeup for every
//! message — dominates at fine grain (the AMT overhead studies in
//! PAPERS.md measure exactly this). When batching is enabled, each
//! sender-visible destination gets a **port**: a coalescing
//! [`px_wire::FrameBuf`] into which parcels are encoded *in place*. A
//! port flushes its frame as one wire message when it reaches
//! `max_batch_parcels` records or `max_batch_bytes` bytes, or when the
//! background flusher finds records older than `flush_interval`. The
//! in-process delay model is applied per frame (`delay_for(frame_bytes)`),
//! so the latency and bandwidth arithmetic stays honest while the fixed
//! per-message costs amortize across the batch.
//!
//! Ordering: under a pure-latency model, parcels to the same destination
//! stay in submission order within and across frames (frames ride the
//! same `(time, seq)` min-heap the single-parcel path used). Two
//! relaxations, both of the "simultaneous messages are unordered, like a
//! real network" kind the pre-batching wire already documented:
//!
//! * with a nonzero `ns_per_byte` the delay is size-dependent, so a
//!   small frame submitted after a large one can overtake it at a frame
//!   boundary (the old wire had the same property per *parcel*);
//! * direct task transfers (`spawn_at` closures) do not pass through the
//!   ports — a task sent after a still-coalescing parcel can arrive up
//!   to `flush_interval` earlier. Code that needs a parcel's effects
//!   visible to a subsequently spawned closure must sequence through an
//!   LCO, not through submission order.
//!
//! Over TCP both relaxations hold trivially (the network reorders
//! nothing per connection, but frames and single parcels share one
//! ordered byte stream per peer, so same-peer order is in fact *stronger*
//! than the delay-line's).
//!
//! Messages are encoded parcels (the normal case — they pay the
//! serialization cost honestly), multi-parcel frames, or boxed tasks
//! (closure transfers used by `spawn_at`, which model the in-memory
//! handoff of a depleted thread and are accounted with a nominal header
//! size).

pub mod delay;
pub(crate) mod inproc;
pub mod tcp;

pub use delay::DelayLine;
pub use tcp::TcpConfig;

use crate::gid::LocalityId;
use crate::locality::Locality;
use crate::parcel::Parcel;
use crate::sched::Task;
use crate::stats::{bump, TransportStats};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use px_wire::FrameBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for the in-process wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireModel {
    /// Fixed one-way latency added to every cross-locality message.
    pub latency: Duration,
    /// Serialization cost in nanoseconds per payload byte (0 = infinite
    /// bandwidth).
    pub ns_per_byte: u64,
}

impl WireModel {
    /// Zero-cost wire (direct delivery, no thread).
    pub fn instant() -> Self {
        WireModel {
            latency: Duration::ZERO,
            ns_per_byte: 0,
        }
    }

    /// Fixed latency, infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        WireModel {
            latency,
            ns_per_byte: 0,
        }
    }

    /// True if messages can skip the delay line.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.ns_per_byte == 0
    }

    /// Delay for a message of `bytes`.
    #[inline]
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_nanos(self.ns_per_byte * bytes as u64)
    }
}

/// Flush policy for the per-destination coalescing ports.
///
/// The default is **batching off** (`max_batch_parcels == 1`): every
/// parcel ships in its own message, exactly like the pre-batching wire,
/// so latency-sensitive request/response chains see no added delay.
/// Throughput-oriented workloads opt in with [`BatchPolicy::batched`] or
/// the [`crate::runtime::Config`] builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a port when its frame holds this many parcels (1 disables
    /// batching).
    pub max_batch_parcels: usize,
    /// Flush a port when its frame reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Maximum time a parcel may wait in a port before the background
    /// flusher ships it.
    pub flush_interval: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::single()
    }
}

impl BatchPolicy {
    /// Batching disabled: one parcel per wire message (the pre-batching
    /// behavior). Byte budget and flush interval keep their tuned values
    /// so later raising `max_batch_parcels` is the only switch to flip.
    pub fn single() -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: 1,
            ..BatchPolicy::batched()
        }
    }

    /// The tuned coalescing configuration: up to 32 parcels or 32 KiB per
    /// frame, 100 µs maximum hold.
    pub fn batched() -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: 32,
            max_batch_bytes: 32 * 1024,
            flush_interval: Duration::from_micros(100),
        }
    }

    /// Batch up to `n` parcels per frame (other limits from
    /// [`BatchPolicy::batched`]).
    pub fn with_max_parcels(n: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: n.max(1),
            ..BatchPolicy::batched()
        }
    }

    /// True when coalescing is enabled. `max_batch_parcels` is the single
    /// on/off switch: a byte budget or flush interval alone never batches.
    #[inline]
    pub fn is_batching(&self) -> bool {
        self.max_batch_parcels > 1
    }
}

/// A message in flight between localities.
pub(crate) enum WireMsg {
    /// Single encoded parcel (unbatched path; staged parcels land in the
    /// staging buffer).
    Parcel {
        /// Destination locality.
        dest: LocalityId,
        /// Deliver into the staging buffer instead of the run queue.
        staged: bool,
        /// Encoded parcel bytes.
        bytes: Vec<u8>,
    },
    /// Multi-parcel frame from a coalescing port.
    Frame {
        /// Destination locality.
        dest: LocalityId,
        /// Deliver into the staging buffer instead of the run queue.
        staged: bool,
        /// Encoded frame bytes (see [`px_wire::FrameBuf`]).
        bytes: Vec<u8>,
    },
    /// Direct task transfer (closure crossing localities in-process; a
    /// cross-process backend must reject it loudly — closures do not
    /// serialize).
    Task {
        /// Destination locality.
        dest: LocalityId,
        /// The task to enqueue.
        task: Task,
    },
    /// Control-plane parcel (balancer gossip, metrics pulls): delivered into the
    /// destination's control queue, drained ahead of all other work so a
    /// saturated locality still learns about idle peers promptly. Never
    /// coalesced — control traffic is latency-sensitive by nature.
    Control {
        /// Destination locality.
        dest: LocalityId,
        /// Encoded parcel bytes.
        bytes: Vec<u8>,
    },
}

/// Cloneable submission handle onto a transport, handed to background
/// threads (the port flusher) so they can ship frames without owning the
/// backend. Dropped before the transport shuts down.
pub(crate) type TransportSubmitter = Arc<dyn Fn(WireMsg, usize) + Send + Sync + 'static>;

/// The backend seam of the wire layer. See the module docs for the full
/// contract (loud failure, queue discipline, deferred fault delivery,
/// flush-on-shutdown).
pub(crate) trait Transport: Send + Sync {
    /// Deliver `msg` toward its destination, charging `bytes` logical
    /// bytes to whatever latency/bandwidth physics the backend has.
    fn submit(&self, msg: WireMsg, bytes: usize);

    /// A cloneable submission handle for background threads. Must remain
    /// harmless (silent no-op) if used after `shutdown`.
    fn submitter(&self) -> TransportSubmitter;

    /// The injected latency/bandwidth model ([`WireModel::instant`] for
    /// backends with real physics, i.e. TCP).
    fn model(&self) -> WireModel;

    /// True when the coalescing ports may engage. The in-process backend
    /// requires a delay thread (batching an instant wire would only add
    /// latency); socket backends always benefit.
    fn supports_batching(&self) -> bool;

    /// Frame format version the ports should encode with
    /// ([`px_wire::FRAME_VERSION`] in-process — bit-identical frames —
    /// [`px_wire::FRAME_VERSION_CHECKSUM`] across process boundaries).
    fn frame_version(&self) -> u8 {
        px_wire::FRAME_VERSION
    }

    /// Late-bind the runtime (needed for fault delivery: a transport is
    /// constructed before the `RuntimeInner` that owns it).
    fn bind(&self, _rt: &Arc<crate::runtime::RuntimeInner>) {}

    /// Per-peer transport statistics (empty for in-process).
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }

    /// Stop background threads, flushing or loudly killing pending
    /// messages first. Called with the port flusher already joined.
    fn shutdown(&mut self);
}

/// Why a port's frame was flushed (drives stats attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// Hit `max_batch_parcels` or `max_batch_bytes`.
    Full,
    /// Aged out by the background flusher (or a shutdown drain).
    Timer,
}

/// One coalescing queue: pending frame plus the age of its oldest record.
struct Port {
    frame: FrameBuf,
    opened_at: Option<Instant>,
}

/// Per-destination coalescing ports. Index = `dest * 2 + staged`, so
/// percolation traffic batches separately from general parcels and a
/// frame is homogeneous in its delivery queue.
pub(crate) struct PortSet {
    policy: BatchPolicy,
    ports: Vec<Mutex<Port>>,
}

impl PortSet {
    fn new(policy: BatchPolicy, localities: usize, frame_version: u8) -> PortSet {
        PortSet {
            policy,
            ports: (0..localities * 2)
                .map(|_| {
                    Mutex::new(Port {
                        frame: FrameBuf::with_version(frame_version),
                        opened_at: None,
                    })
                })
                .collect(),
        }
    }

    #[inline]
    fn port(&self, dest: LocalityId, staged: bool) -> &Mutex<Port> {
        &self.ports[dest.0 as usize * 2 + staged as usize]
    }
}

/// The runtime's wire: coalescing ports in front of a `Transport`
/// backend sinking into locality run queues (directly in-process, over
/// sockets across OS processes).
pub(crate) struct Wire {
    transport: Box<dyn Transport>,
    ports: Option<Arc<PortSet>>,
    localities: Arc<Vec<Arc<Locality>>>,
    flusher_stop: Option<Sender<()>>,
    flusher: Option<JoinHandle<()>>,
}

impl Wire {
    /// Build the wire over `transport` for `localities`, coalescing per
    /// `policy`. Batching engages only when the backend supports it and
    /// the policy asks for more than one parcel per message.
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        localities: Arc<Vec<Arc<Locality>>>,
        policy: BatchPolicy,
    ) -> Wire {
        let batching = policy.is_batching() && transport.supports_batching();
        let ports = batching.then(|| {
            Arc::new(PortSet::new(
                policy,
                localities.len(),
                transport.frame_version(),
            ))
        });
        let (flusher_stop, flusher) = match &ports {
            None => (None, None),
            Some(ports) => {
                let (stop_tx, stop_rx) = bounded::<()>(1);
                let handle = {
                    let ports = ports.clone();
                    let localities = localities.clone();
                    let submit = transport.submitter();
                    std::thread::Builder::new()
                        .name("px-port-flusher".into())
                        .spawn(move || flusher_loop(ports, localities, submit, stop_rx))
                        .expect("spawn port-flusher thread")
                };
                (Some(stop_tx), Some(handle))
            }
        };
        Wire {
            transport,
            ports,
            localities,
            flusher_stop,
            flusher,
        }
    }

    /// Encode and submit one parcel toward `dest`, batching according to
    /// the policy. Returns the parcel's encoded size for accounting.
    pub(crate) fn send_parcel(&self, dest: LocalityId, p: &Parcel) -> usize {
        let Some(ports) = &self.ports else {
            // Unbatched path: identical to the pre-batching wire.
            let bytes = p.encode();
            let n = bytes.len();
            self.transport.submit(
                WireMsg::Parcel {
                    dest,
                    staged: p.staged,
                    bytes,
                },
                n,
            );
            return n;
        };
        let dest_loc = &self.localities[dest.0 as usize];
        let mut port = ports.port(dest, p.staged).lock();
        if port.frame.is_empty() {
            port.opened_at = Some(Instant::now());
        }
        // Report the record's full wire footprint (parcel + length
        // prefix) so `bytes_sent` tracks what the delay model charges; of
        // the frame, only the fixed 5-byte header goes unattributed.
        let n = port.frame.push_record_with(|w| p.encode_into(w)) + px_wire::RECORD_HEADER_LEN;
        let policy = &ports.policy;
        if port.frame.record_count() as usize >= policy.max_batch_parcels
            || port.frame.len() >= policy.max_batch_bytes
        {
            flush_port(
                &mut port,
                dest,
                p.staged,
                FlushCause::Full,
                dest_loc,
                |msg, bytes| self.transport.submit(msg, bytes),
            );
        }
        n
    }

    /// Submit a non-parcel message (tasks; single parcels from callers
    /// that bypass batching).
    #[inline]
    pub(crate) fn send(&self, msg: WireMsg, bytes: usize) {
        self.transport.submit(msg, bytes);
    }

    /// The active model.
    pub(crate) fn model(&self) -> WireModel {
        self.transport.model()
    }

    /// Late-bind the runtime for transport-level fault delivery.
    pub(crate) fn bind(&self, rt: &Arc<crate::runtime::RuntimeInner>) {
        self.transport.bind(rt);
    }

    /// Per-peer transport statistics.
    pub(crate) fn transport_stats(&self) -> TransportStats {
        self.transport.transport_stats()
    }

    /// Drain every port (shutdown, or tests that need determinism).
    pub(crate) fn flush_all(&self) {
        if let Some(ports) = &self.ports {
            flush_aged(ports, &self.localities, Duration::ZERO, |msg, bytes| {
                self.transport.submit(msg, bytes)
            });
        }
    }

    /// Stop the flusher, drain the ports, stop the transport.
    pub(crate) fn shutdown(&mut self) {
        self.flusher_stop = None; // closing the channel stops the flusher
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        self.flush_all();
        self.transport.shutdown();
    }
}

impl Drop for Wire {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flush one port's frame as a wire message (no-op when empty).
fn flush_port(
    port: &mut Port,
    dest: LocalityId,
    staged: bool,
    cause: FlushCause,
    dest_loc: &Locality,
    submit: impl FnOnce(WireMsg, usize),
) {
    if port.frame.is_empty() {
        return;
    }
    let records = u64::from(port.frame.record_count());
    let bytes = port.frame.take();
    port.opened_at = None;
    bump!(dest_loc.counters.frames_sent);
    // Counted at flush, under the port lock, so coalesced_parcels and
    // frames_sent advance together and their ratio never exceeds the cap.
    bump!(dest_loc.counters.coalesced_parcels, records - 1);
    match cause {
        FlushCause::Full => bump!(dest_loc.counters.batch_flush_full),
        FlushCause::Timer => bump!(dest_loc.counters.batch_flush_timer),
    }
    let n = bytes.len();
    submit(
        WireMsg::Frame {
            dest,
            staged,
            bytes,
        },
        n,
    );
}

/// Flush every port whose oldest record is older than `min_age`.
fn flush_aged(
    ports: &PortSet,
    localities: &[Arc<Locality>],
    min_age: Duration,
    mut submit: impl FnMut(WireMsg, usize),
) {
    for (idx, slot) in ports.ports.iter().enumerate() {
        let dest = LocalityId((idx / 2) as u16);
        let staged = idx % 2 == 1;
        let mut port = slot.lock();
        let aged = port.opened_at.is_some_and(|t0| t0.elapsed() >= min_age);
        if aged {
            flush_port(
                &mut port,
                dest,
                staged,
                FlushCause::Timer,
                &localities[dest.0 as usize],
                &mut submit,
            );
        }
    }
}

/// Background flusher honoring `flush_interval`: wakes at half the
/// interval and ships any frame whose oldest parcel has waited too long.
fn flusher_loop(
    ports: Arc<PortSet>,
    localities: Arc<Vec<Arc<Locality>>>,
    submit: TransportSubmitter,
    stop_rx: Receiver<()>,
) {
    let interval = ports.policy.flush_interval;
    let tick = (interval / 2).clamp(Duration::from_micros(20), Duration::from_millis(10));
    loop {
        match stop_rx.recv_timeout(tick) {
            Err(RecvTimeoutError::Timeout) => {
                flush_aged(&ports, &localities, interval, |msg, bytes| {
                    submit(msg, bytes)
                });
            }
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::inproc::InProcTransport;
    use super::*;
    use crate::action::Value;
    use crate::gid::Gid;
    use crate::parcel::Continuation;
    use std::sync::atomic::Ordering;

    #[test]
    fn model_delay_arithmetic() {
        let m = WireModel {
            latency: Duration::from_micros(10),
            ns_per_byte: 2,
        };
        assert_eq!(m.delay_for(0), Duration::from_micros(10));
        assert_eq!(
            m.delay_for(1000),
            Duration::from_micros(10) + Duration::from_nanos(2000)
        );
        assert!(WireModel::instant().is_instant());
        assert!(!m.is_instant());
    }

    // ---- batching ---------------------------------------------------------

    fn test_localities(n: usize) -> Arc<Vec<Arc<Locality>>> {
        Arc::new(
            (0..n)
                .map(|i| Arc::new(Locality::new(LocalityId(i as u16), false)))
                .collect(),
        )
    }

    fn test_wire(model: WireModel, locs: &Arc<Vec<Arc<Locality>>>, policy: BatchPolicy) -> Wire {
        Wire::new(
            Box::new(InProcTransport::new(model, locs.clone())),
            locs.clone(),
            policy,
        )
    }

    fn noop_parcel(dest: LocalityId) -> Parcel {
        Parcel::new(
            Gid::locality_root(dest),
            crate::sched::sys::NOOP,
            Value::unit(),
            Continuation::none(),
        )
    }

    fn drain_count(loc: &Locality) -> (usize, usize) {
        // (tasks, parcels) delivered to the general injector.
        let mut tasks = 0;
        let mut parcels = 0;
        while let crossbeam::deque::Steal::Success(t) = loc.injector.steal() {
            tasks += 1;
            parcels += t.parcel_records();
        }
        (tasks, parcels)
    }

    #[test]
    fn batch_flushes_on_parcel_count() {
        let locs = test_localities(2);
        let wire = test_wire(
            WireModel::with_latency(Duration::from_micros(50)),
            &locs,
            BatchPolicy {
                max_batch_parcels: 4,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10), // timer disabled
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..8 {
            wire.send_parcel(LocalityId(1), &p);
        }
        // Two full frames of four parcels each. Accumulate across polls:
        // the delay thread may deliver the frames on either side of a
        // drain.
        let t0 = Instant::now();
        let (mut tasks, mut parcels) = (0, 0);
        while parcels < 8 {
            let (t, p) = drain_count(&locs[1]);
            tasks += t;
            parcels += p;
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "frames never arrived"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(tasks, 2, "expected two frames");
        assert_eq!(parcels, 8, "expected all parcels");
        assert_eq!(locs[1].counters.frames_sent.load(Ordering::Relaxed), 2);
        assert_eq!(locs[1].counters.batch_flush_full.load(Ordering::Relaxed), 2);
        assert_eq!(
            locs[1].counters.coalesced_parcels.load(Ordering::Relaxed),
            6,
            "three of each four shared a frame"
        );
    }

    #[test]
    fn batch_flushes_on_byte_budget() {
        let locs = test_localities(2);
        let wire = test_wire(
            WireModel::with_latency(Duration::from_micros(50)),
            &locs,
            BatchPolicy {
                max_batch_parcels: usize::MAX,
                max_batch_bytes: 64,
                flush_interval: Duration::from_secs(10),
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..4 {
            wire.send_parcel(LocalityId(1), &p);
        }
        let t0 = Instant::now();
        loop {
            let (tasks, _) = drain_count(&locs[1]);
            if tasks > 0 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(locs[1].counters.batch_flush_full.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn flusher_ships_stragglers() {
        let locs = test_localities(2);
        let wire = test_wire(
            WireModel::with_latency(Duration::from_micros(10)),
            &locs,
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_micros(200),
            },
        );
        let p = noop_parcel(LocalityId(1));
        wire.send_parcel(LocalityId(1), &p);
        let t0 = Instant::now();
        loop {
            let (tasks, parcels) = drain_count(&locs[1]);
            if tasks > 0 {
                assert_eq!(parcels, 1);
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "straggler never flushed"
            );
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(
            locs[1].counters.batch_flush_timer.load(Ordering::Relaxed),
            1
        );
        drop(wire);
    }

    #[test]
    fn shutdown_drains_ports() {
        let locs = test_localities(2);
        let mut wire = test_wire(
            WireModel::with_latency(Duration::from_micros(10)),
            &locs,
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10),
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..3 {
            wire.send_parcel(LocalityId(1), &p);
        }
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!(tasks, 1, "one shutdown frame");
        assert_eq!(parcels, 3, "all pending parcels delivered");
    }

    #[test]
    fn staged_and_plain_parcels_batch_separately() {
        let locs = test_localities(2);
        let mut wire = test_wire(
            WireModel::with_latency(Duration::from_micros(10)),
            &locs,
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10),
            },
        );
        let plain = noop_parcel(LocalityId(1));
        let mut staged = noop_parcel(LocalityId(1));
        staged.staged = true;
        wire.send_parcel(LocalityId(1), &plain);
        wire.send_parcel(LocalityId(1), &staged);
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!((tasks, parcels), (1, 1), "plain frame in the injector");
        let mut staged_tasks = 0;
        while let crossbeam::deque::Steal::Success(t) = locs[1].staging.steal() {
            staged_tasks += t.parcel_records();
        }
        assert_eq!(staged_tasks, 1, "staged frame in the staging buffer");
    }

    #[test]
    fn unbatched_policy_sends_single_parcels() {
        let locs = test_localities(2);
        let mut wire = test_wire(
            WireModel::with_latency(Duration::from_micros(10)),
            &locs,
            BatchPolicy::single(),
        );
        let p = noop_parcel(LocalityId(1));
        let n = wire.send_parcel(LocalityId(1), &p);
        assert_eq!(n, p.encode().len());
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!((tasks, parcels), (1, 1));
        assert_eq!(
            locs[1].counters.frames_sent.load(Ordering::Relaxed),
            0,
            "no frames on the single-parcel path"
        );
    }

    /// Acceptance pin: the in-process backend ships version-1 frames
    /// whose bytes are identical to encoding the same parcels into a
    /// plain `FrameBuf` — the transport refactor added no bytes to the
    /// in-process wire.
    #[test]
    fn inproc_frames_are_bit_identical_to_frame_buf() {
        let locs = test_localities(2);
        let mut wire = test_wire(
            WireModel::with_latency(Duration::from_micros(10)),
            &locs,
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10),
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..3 {
            wire.send_parcel(LocalityId(1), &p);
        }
        wire.shutdown();
        let mut expected = px_wire::FrameBuf::new();
        for _ in 0..3 {
            expected.push_record(&p.encode());
        }
        let expected = expected.take();
        let mut frames = 0;
        while let crossbeam::deque::Steal::Success(t) = locs[1].injector.steal() {
            frames += 1;
            assert_eq!(
                t.frame_bytes().expect("frame task"),
                expected.as_slice(),
                "in-proc wire bytes drifted from the version-1 frame format"
            );
        }
        assert_eq!(frames, 1);
    }
}
