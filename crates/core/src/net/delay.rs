//! The software delay line: injectable latency/bandwidth for transports
//! whose "network" is a queue push in the same address space.
//!
//! The real ParalleX target is a machine whose localities are separated
//! by hundreds-to-thousands of cycles of interconnect (§2.1 "latency …
//! to access remote data or services"). On one host we *inject* that
//! latency: every cross-locality message is routed through a
//! [`DelayLine`] thread that holds it until `now + latency +
//! bytes·per_byte` before delivering it to the sink.
//!
//! With a zero latency model the sink is invoked inline by the sender
//! and no thread is spawned — the "same box" configuration unit tests
//! use.
//!
//! [`DelayLine`] is public so the CSP/BSP baseline runtime
//! (`px-baseline`) can route its messages through the *identical*
//! mechanism — the experiments then compare execution models, not
//! transport implementations.

use super::WireModel;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) struct Pending<T> {
    at: Instant,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap by (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A generic software delay line: messages submitted with a byte size are
/// delivered to the sink after `model.delay_for(bytes)`.
///
/// With an instant model the sink is invoked inline by the sender and no
/// thread is spawned. On shutdown (or drop) pending messages are flushed
/// after their remaining delay, then the thread exits.
pub struct DelayLine<T: Send + 'static> {
    model: WireModel,
    tx: Option<Sender<Pending<T>>>,
    handle: Option<JoinHandle<()>>,
    sink: Arc<dyn Fn(T) + Send + Sync + 'static>,
}

impl<T: Send + 'static> std::fmt::Debug for DelayLine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayLine")
            .field("model", &self.model)
            .finish()
    }
}

/// A cheap cloneable submit handle onto a running delay line (used by
/// the in-process transport's submitter so background threads share
/// `DelayLine`'s delay arithmetic instead of re-implementing it).
pub(crate) struct LineSender<T: Send + 'static> {
    tx: Sender<Pending<T>>,
    model: WireModel,
}

impl<T: Send + 'static> Clone for LineSender<T> {
    fn clone(&self) -> Self {
        LineSender {
            tx: self.tx.clone(),
            model: self.model,
        }
    }
}

impl<T: Send + 'static> LineSender<T> {
    /// Submit a message of logical size `bytes`.
    pub(crate) fn send(&self, msg: T, bytes: usize) {
        let at = Instant::now() + self.model.delay_for(bytes);
        // seq is assigned by the delay thread; simultaneous messages are
        // unordered by design (like a real network).
        if self.tx.send(Pending { at, seq: 0, msg }).is_err() {
            // Delay line already shut down (runtime teardown).
        }
    }
}

impl<T: Send + 'static> DelayLine<T> {
    /// Build a delay line delivering into `sink`.
    pub fn new(model: WireModel, sink: Arc<dyn Fn(T) + Send + Sync + 'static>) -> DelayLine<T> {
        if model.is_instant() {
            return DelayLine {
                model,
                tx: None,
                handle: None,
                sink,
            };
        }
        let (tx, rx) = bounded::<Pending<T>>(65536);
        let thread_sink = sink.clone();
        let handle = std::thread::Builder::new()
            .name("px-delay-line".into())
            .spawn(move || delay_loop(rx, thread_sink))
            .expect("spawn delay-line thread");
        DelayLine {
            model,
            tx: Some(tx),
            handle: Some(handle),
            sink,
        }
    }

    /// Submit a message of logical size `bytes`.
    pub fn send(&self, msg: T, bytes: usize) {
        match &self.tx {
            None => (self.sink)(msg),
            Some(tx) => {
                let at = Instant::now() + self.model.delay_for(bytes);
                // seq is assigned by the delay thread; simultaneous
                // messages are unordered by design (like a real network).
                if tx.send(Pending { at, seq: 0, msg }).is_err() {
                    // Delay line already shut down (runtime teardown).
                }
            }
        }
    }

    /// Submit handle bound to the delay thread (`None` on instant lines,
    /// which deliver inline and have no thread).
    ///
    /// A live `LineSender` keeps the delay thread's channel open, so
    /// every clone must be dropped before [`DelayLine::shutdown`] can
    /// join — the in-process transport guarantees this by joining the
    /// port flusher (the only holder) first.
    pub(crate) fn sender(&self) -> Option<LineSender<T>> {
        self.tx.as_ref().map(|tx| LineSender {
            tx: tx.clone(),
            model: self.model,
        })
    }

    /// The sink messages are delivered into.
    pub(crate) fn sink(&self) -> Arc<dyn Fn(T) + Send + Sync + 'static> {
        self.sink.clone()
    }

    /// The active model.
    pub fn model(&self) -> WireModel {
        self.model
    }

    /// Stop the thread, flushing pending messages first.
    pub fn shutdown(&mut self) {
        self.tx = None; // closing the channel stops the thread
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for DelayLine<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn delay_loop<T: Send>(rx: Receiver<Pending<T>>, sink: Arc<dyn Fn(T) + Send + Sync>) {
    let mut heap: BinaryHeap<Pending<T>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|p| p.at <= now) {
            let p = heap.pop().unwrap();
            sink(p.msg);
        }
        // Wait for the next due time or the next submission.
        let wait = heap
            .peek()
            .map(|p| p.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(mut p) => {
                seq += 1;
                p.seq = seq;
                heap.push(p);
                // Drain any backlog without sleeping.
                while let Ok(mut p) = rx.try_recv() {
                    seq += 1;
                    p.seq = seq;
                    heap.push(p);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains (delivery beats dropping work on
                // shutdown races), then exit.
                while let Some(p) = heap.pop() {
                    let rem = p.at.saturating_duration_since(Instant::now());
                    if !rem.is_zero() {
                        std::thread::sleep(rem);
                    }
                    sink(p.msg);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn instant_line_delivers_inline() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel::instant(),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 100);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "inline delivery expected");
    }

    #[test]
    fn delayed_line_holds_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(30)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(7, 0);
        assert_eq!(hits.load(Ordering::SeqCst), 0, "must not arrive instantly");
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "message lost");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "arrived too early: {:?}",
            t0.elapsed()
        );
        line.shutdown();
    }

    #[test]
    fn bandwidth_cost_scales_with_bytes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel {
                latency: Duration::ZERO,
                ns_per_byte: 20_000, // 20 µs per byte — exaggerated for test
            },
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(1, 1000); // 20 ms
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn shutdown_flushes_pending() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(10)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 0);
        line.shutdown();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "pending message should be flushed on shutdown"
        );
    }

    #[test]
    fn ordering_preserved_for_equal_delays() {
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(5)),
            Arc::new(move |v| s.lock().push(v)),
        );
        for i in 0..50 {
            line.send(i, 0);
        }
        line.shutdown();
        let seen = seen.lock();
        assert_eq!(seen.len(), 50);
        // Same-latency messages submitted in order arrive in order (seq
        // tiebreak), modulo batching races at the heap boundary — allow
        // sortedness check. With ports enabled the same relaxation applies
        // at frame boundaries: records within a frame are strictly
        // ordered, frames inherit this (time, seq) discipline.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(*seen, sorted);
    }
}
