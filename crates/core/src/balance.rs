//! The balancer pulse: closes the loop from telemetry to placement.
//!
//! §2.2 of the paper: "If terminating, a parcel is constructed and
//! dispatched to the destination remote data where a new thread is
//! invoked thus moving the work, in essence, to the data." The seed
//! runtime always moves work to data and only rebalances *within* a
//! locality (sibling work stealing). This module adds the cross-locality
//! half, runtime-directed and barrier-free:
//!
//! 1. **Sample** — each round, every locality's [`px_balance::LoadMonitor`]
//!    records queue depth, park delta, and staging backlog.
//! 2. **Gossip** — each locality sends its whole
//!    [`px_balance::PeerView`] to one rotating peer as a
//!    `__sys/balance_gossip` parcel on the ordinary (batched) transport.
//!    After `n − 1` rounds everyone has heard from everyone.
//! 3. **Act** — per locality, the configured
//!    [`px_balance::BalancePolicy`] decides, from that locality's own
//!    gossiped view only:
//!    * *work diffusion*: shed queued closure tasks to the least-loaded
//!      peer (parcel-addressed tasks stay — they are bound to objects
//!      resident here);
//!    * *spawn redirect*: publish the peer as this round's
//!      [`crate::locality::BalanceState::spawn_target`] so `Ctx::spawn`
//!      diffuses a share of fresh work at creation time;
//!    * *heat-driven migration*: pull objects this locality has been
//!      hammering (per [`crate::agas::Agas::drain_heat`]) off busier
//!      owners, via the same store-move + directory-update + bounded
//!      forwarding chase as a manual `migrate_data`.
//!
//! One pulse thread serves all localities of the (simulated) machine, but
//! every *decision* reads only the deciding locality's own monitor and
//! gossip view — the information flow between localities is parcels, so
//! the design transplants directly onto a distributed AGAS.

use crate::action::Value;
use crate::agas::MigrationCause;
use crate::error::{PxError, PxResult};
use crate::gid::{Gid, GidKind, LocalityId};
use crate::locality::{Locality, NO_SPAWN_TARGET};
use crate::parcel::{Continuation, Parcel};
use crate::runtime::RuntimeInner;
use crate::sched::{sys, Task, Work};
use crate::stats::bump;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use crossbeam::deque::Steal;
use px_balance::{BalanceConfig, LoadSample, PlacementQuery, ShedQuery};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// When shedding, give up after putting back this many non-sheddable
/// tasks in a row (the queue head is parcel-bound work; keep the pulse
/// cheap instead of trawling the whole injector).
const PUTBACK_LIMIT: usize = 32;

/// Balancer thread body. Exits when `stop` closes (runtime shutdown).
pub(crate) fn balancer_main(rt: Arc<RuntimeInner>, stop: Receiver<()>) {
    let cfg = rt
        .config
        .balance
        .clone()
        .expect("balancer thread spawned without balance config");
    let n = rt.localities.len();
    let debug = std::env::var_os("PX_BALANCE_DEBUG").is_some();
    let mut round: u64 = 0;
    let mut last_parks = vec![0u64; n];
    loop {
        match stop.recv_timeout(cfg.gossip_interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
        round += 1;
        sample_all(&rt, round, &mut last_parks);
        if n > 1 {
            gossip_round(&rt, round, n);
            // Acting is live over TCP too: each rank decides for its own
            // localities from the gossiped view. Cross-rank levers differ
            // from in-process ones — sheds ship locality-root-addressed
            // *parcels* (closures do not serialize), spawn redirects
            // publish only owned targets, and heat pulls go through the
            // split-phase `__sys/agas_migrate` protocol against the
            // distributed home directory.
            act_round(&rt, &cfg, debug);
        }
    }
}

/// Record one load sample per locality and self-observe the new score.
fn sample_all(rt: &Arc<RuntimeInner>, round: u64, last_parks: &mut [u64]) {
    for (i, loc) in rt.localities.iter().enumerate() {
        if !rt.owns(crate::gid::LocalityId(i as u16)) {
            // Another OS process samples that locality.
            continue;
        }
        let Some(b) = &loc.balance else { continue };
        let parks_now = loc.counters.parks.load(Ordering::Relaxed);
        let sample = LoadSample {
            queue_depth: loc.queue_depth() as u64,
            parks: parks_now.saturating_sub(last_parks[i]),
            backlog: loc.staging_depth() as u64,
        };
        last_parks[i] = parks_now;
        let score = {
            let mut m = b.monitor.lock();
            m.record(sample);
            m.score()
        };
        b.peers.lock().observe(i, score, round);
        bump!(loc.counters.gossip_rounds);
    }
}

/// Each locality sends its view to one rotating peer. The offset walks
/// `1..n`, so over `n − 1` rounds every ordered pair gossips once.
fn gossip_round(rt: &Arc<RuntimeInner>, round: u64, n: usize) {
    let offset = 1 + (round as usize - 1) % (n - 1);
    for (i, loc) in rt.localities.iter().enumerate() {
        if !rt.owns(crate::gid::LocalityId(i as u16)) {
            continue;
        }
        let Some(b) = &loc.balance else { continue };
        let peer = LocalityId(((i + offset) % n) as u16);
        let payload = b.peers.lock().encode_gossip();
        let p = Parcel::new(
            Gid::locality_root(peer),
            sys::BALANCE_GOSSIP,
            Value::from_bytes(payload),
            Continuation::none(),
        );
        rt.send_parcel(loc.id, p);
    }
}

/// Run the policy for every locality: spawn redirect, shed, pulls.
fn act_round(rt: &Arc<RuntimeInner>, cfg: &BalanceConfig, debug: bool) {
    for (i, loc) in rt.localities.iter().enumerate() {
        if !rt.owns(LocalityId(i as u16)) {
            // Another OS process's balancer decides for that locality.
            continue;
        }
        let Some(b) = &loc.balance else { continue };
        let (my_score, least) = {
            let peers = b.peers.lock();
            (peers.score_of(i).unwrap_or(0.0), peers.least_loaded(i))
        };
        let Some((least_idx, least_score)) = least else {
            // No gossip heard yet: nothing to compare against.
            // Relaxed: the target is an advisory hint — a stale read
            // routes one spawn suboptimally, nothing more.
            b.spawn_target.store(NO_SPAWN_TARGET, Ordering::Relaxed);
            continue;
        };
        // Diffusion decisions use min(windowed, instantaneous) load: a
        // spike must persist a while before we shed (no knee-jerk on one
        // burst), and a freshly-drained queue stops shedding immediately
        // instead of lagging a full window behind (which would over-shed
        // and ping-pong the excess back).
        let inst = (loc.queue_depth() + loc.staging_depth()) as f64;
        let sq = ShedQuery {
            local_score: my_score.min(inst),
            least_score,
            queue_depth: loc.queue_depth() as u64,
            shed_ratio: cfg.shed_ratio,
            max_shed: cfg.max_shed_per_round,
        };
        // Redirected spawns are closures, so the published target must
        // live in this OS process; an unowned least-loaded peer still
        // receives work through parcel sheds below.
        let target = if cfg.policy.redirect_spawn(&sq) && rt.owns(LocalityId(least_idx as u16)) {
            least_idx as u32
        } else {
            NO_SPAWN_TARGET
        };
        // Relaxed: advisory hint, republished every round (see above).
        b.spawn_target.store(target, Ordering::Relaxed);
        let want = cfg.policy.shed(&sq);
        if debug {
            eprintln!(
                "[balance] L{i} my={my_score:.1} least=L{least_idx}@{least_score:.1} depth={} want={want}",
                sq.queue_depth,
            );
        }
        if want > 0 {
            let shed = shed_tasks(rt, loc, LocalityId(least_idx as u16), want);
            if shed > 0 {
                // Optimistic update: the peer just gained `shed` tasks.
                // Without this the stale gossiped score invites repeated
                // dumping (and the excess ping-pongs back).
                b.peers.lock().bump_score(least_idx, shed as f64);
            }
        }
        if cfg.policy.uses_heat() {
            pull_hot(rt, cfg, loc, b, my_score);
        }
    }
}

/// Work diffusion: move up to `max` tasks from `loc`'s injector to
/// `dest`. In-process, closure tasks ship whole; across ranks only
/// locality-root-addressed parcels without process-accounting tokens
/// travel — a root-addressed parcel executes wherever it lands, so it is
/// the one queue entry that moves between OS processes without closure
/// serialization or a chase back. Parcel-bound tasks addressed at
/// resident objects and depleted-thread resumptions (their LCO state
/// lives here) are put back. Returns the number shed.
pub(crate) fn shed_tasks(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    dest: LocalityId,
    max: u64,
) -> u64 {
    let cross_rank = !rt.owns(dest);
    let mut shed = 0u64;
    let mut putback: Vec<Task> = Vec::new();
    while shed < max && putback.len() < PUTBACK_LIMIT {
        match loc.injector.steal() {
            Steal::Success(task) => {
                if cross_rank {
                    let sheddable = matches!(
                        &task.work,
                        Work::Parcel(p) if p.dest.is_hardware() && p.process.is_none() && !p.staged
                    );
                    if sheddable {
                        let trace = task.trace;
                        let Work::Parcel(p) = task.work else {
                            unreachable!("sheddable matched Work::Parcel")
                        };
                        bump!(loc.counters.tasks_shed);
                        bump!(loc.counters.parcels_sent);
                        loc.trace_event(
                            trace,
                            crate::trace::TraceEventKind::BalanceShed,
                            0,
                            u64::from(dest.0),
                        );
                        let n = rt.wire.send_parcel(dest, &p);
                        bump!(loc.counters.bytes_sent, n as u64);
                        shed += 1;
                    } else {
                        putback.push(task);
                    }
                } else if matches!(task.work, Work::Thread(_)) {
                    // Same transfer mechanism as a `spawn_at` closure —
                    // the task crosses the wire with the nominal header
                    // size. Process accounting moves with the task: it
                    // was counted started at spawn and completes at the
                    // destination.
                    bump!(loc.counters.tasks_shed);
                    bump!(loc.counters.parcels_sent);
                    bump!(loc.counters.bytes_sent, 64);
                    loc.trace_event(
                        task.trace,
                        crate::trace::TraceEventKind::BalanceShed,
                        0,
                        u64::from(dest.0),
                    );
                    rt.wire.send(crate::net::WireMsg::Task { dest, task }, 64);
                    shed += 1;
                } else {
                    putback.push(task);
                }
            }
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for t in putback {
        loc.push_task(t);
    }
    shed
}

/// Heat-driven migration: pull this round's hottest remote objects toward
/// the locality that keeps addressing them, when the policy approves.
fn pull_hot(
    rt: &Arc<RuntimeInner>,
    cfg: &BalanceConfig,
    loc: &Arc<Locality>,
    b: &crate::locality::BalanceState,
    my_score: f64,
) {
    let heat = rt.agas.drain_heat(loc.id);
    if heat.is_empty() {
        return;
    }
    // One lock for the whole round: migrations never touch peer views,
    // and per-gid re-locking would contend with worker-side gossip
    // merges for nothing.
    let peers = b.peers.lock();
    let mut pulls = 0u64;
    for (gid, h) in heat {
        if pulls >= cfg.max_pulls_per_round {
            break;
        }
        if gid.kind() != GidKind::Data {
            continue;
        }
        let owner = rt.agas.authoritative_owner(gid);
        if owner == loc.id {
            continue;
        }
        let owner_score = peers.score_of(owner.0 as usize);
        let q = PlacementQuery {
            heat: h,
            heat_threshold: cfg.heat_threshold,
            local_score: my_score,
            owner_score,
        };
        if !cfg.policy.pull_data(&q) {
            continue;
        }
        if rt.owns(owner) {
            if migrate_object(rt, gid, owner, loc.id, MigrationCause::Balancer).is_ok() {
                bump!(loc.counters.balance_pulls);
                pulls += 1;
            }
        } else {
            // Data-to-work over TCP: ask the object's resident rank to
            // run the split-phase migration protocol toward us. The
            // parcel chases the object like any other, so a stale owner
            // here still finds it.
            let mut w = px_wire::WireWriter::new();
            w.put_u16(loc.id.0);
            w.put_u8(1); // cause: balancer
            let p = Parcel::new(
                gid,
                sys::AGAS_MIGRATE,
                Value::from_bytes(w.into_bytes()),
                Continuation::none(),
            );
            // px-analyze: allow(no-silent-loss): the pull request is advisory fire-and-forget — a lost or refused pull only means the object stays put and heat re-accumulates next round.
            rt.send_parcel(loc.id, p);
            bump!(loc.counters.balance_pulls);
            pulls += 1;
        }
    }
}

/// Move an object between stores and update the directory. Stored
/// objects are `Arc`s, so the sequence is insert-at-destination →
/// directory update → remove-at-source: during the overlap both stores
/// alias the *same* object and there is no instant at which a racing
/// parcel finds it nowhere. (Remove-first would open exactly that
/// window, and under an instant wire the scheduler's owner-but-absent
/// retry has no latency to act as backoff — a parcel can spin through
/// its whole hop budget and die while the migrating thread is preempted
/// mid-move.) Parcels routed on a stale cache after the directory flips
/// are forwarded with the usual bounded chase.
pub(crate) fn migrate_object(
    rt: &Arc<RuntimeInner>,
    gid: Gid,
    from: LocalityId,
    to: LocalityId,
    cause: MigrationCause,
) -> PxResult<()> {
    // Whole-migration serialization with an ownership re-check: a
    // concurrent migration may have moved the object after the caller
    // read `from`, and racing the move would strand a duplicate resident
    // copy at whichever destination loses the directory update.
    let _guard = rt.agas.migration_guard();
    if rt.agas.authoritative_owner(gid) != from {
        return Err(PxError::NoSuchObject(gid));
    }
    if from == to {
        return Ok(());
    }
    let obj = rt
        .locality(from)
        .get(gid)
        .ok_or(PxError::NoSuchObject(gid))?;
    rt.locality(to).insert_at(gid, obj);
    rt.agas.record_migration_caused(gid, to, cause);
    rt.locality(from).remove(gid);
    // Migrations are driver- or balancer-initiated (no parcel, no trace
    // id); record under the never-sampled id 0 so a dump still shows the
    // moves that the chase events around them refer to.
    rt.locality(from).trace_event(
        Some(0),
        crate::trace::TraceEventKind::Migrate,
        gid.0,
        u64::from(to.0),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use std::time::{Duration, Instant};

    fn balanced_config(localities: usize, cfg: BalanceConfig) -> Config {
        Config::small(localities, 1).with_balance(BalanceConfig {
            gossip_interval: Duration::from_micros(500),
            ..cfg
        })
    }

    fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        ok()
    }

    #[test]
    fn gossip_fills_peer_views() {
        let rt = RuntimeBuilder::new(balanced_config(3, BalanceConfig::adaptive()))
            .build()
            .unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || {
                let s = rt.stats().total();
                s.gossip_parcels >= 6 && s.gossip_rounds >= 6
            }),
            "gossip never circulated: {:?}",
            rt.stats().total()
        );
        // Every locality should have heard about every other.
        for loc in rt.inner().localities.iter() {
            let b = loc.balance.as_ref().unwrap();
            assert!(
                wait_until(Duration::from_secs(5), || b.peers.lock().known() == 3),
                "locality {} view incomplete",
                loc.id
            );
        }
        rt.shutdown();
    }

    #[test]
    fn overload_sheds_to_starving_peer() {
        let rt = RuntimeBuilder::new(balanced_config(2, BalanceConfig::adaptive()))
            .build()
            .unwrap();
        let gate = rt.new_and_gate(LocalityId(0), 400);
        let fut: FutureRef<()> = FutureRef::from_gid(gate);
        for _ in 0..400 {
            rt.spawn_at(LocalityId(0), move |ctx| {
                std::thread::sleep(Duration::from_micros(200));
                ctx.trigger_value(gate, Value::unit());
            });
        }
        rt.wait_future(fut).unwrap();
        let s = rt.stats();
        assert!(
            s.localities[0].tasks_shed > 0,
            "overloaded locality never shed: {:?}",
            s.total()
        );
        rt.shutdown();
    }

    #[test]
    fn hot_object_is_pulled_toward_caller() {
        let mut cfg = BalanceConfig::adaptive();
        cfg.heat_threshold = 8;
        let rt = RuntimeBuilder::new(balanced_config(2, cfg))
            .build()
            .unwrap();
        let obj = rt.new_data_at(LocalityId(0), vec![1, 2, 3]);
        // Locality 1 hammers the object with reads; the balancer should
        // migrate it there.
        let done = rt.new_and_gate(LocalityId(1), 1);
        rt.spawn_at(LocalityId(1), move |ctx| {
            fn pump(ctx: &mut Ctx<'_>, obj: Gid, done: Gid, left: u32) {
                if left == 0 {
                    ctx.trigger_value(done, Value::unit());
                    return;
                }
                let fut = ctx.fetch_data(obj);
                ctx.when_ready(fut.gid(), move |ctx, _| pump(ctx, obj, done, left - 1));
            }
            pump(ctx, obj, done, 600);
        });
        let fut: FutureRef<()> = FutureRef::from_gid(done);
        rt.wait_future(fut).unwrap();
        let migrated = wait_until(Duration::from_secs(5), || {
            rt.inner().agas.authoritative_owner(obj) == LocalityId(1)
        });
        let (manual, balancer) = rt.inner().agas.migrations_by_cause();
        assert!(
            migrated && balancer >= 1,
            "object never pulled: manual={manual} balancer={balancer}"
        );
        assert_eq!(manual, 0);
        assert!(rt.stats().localities[1].balance_pulls >= 1);
        rt.shutdown();
    }

    /// Regression: concurrent migrations of the same object (e.g. a
    /// manual `migrate_data` racing a balancer pull) must serialize —
    /// without the migration lock's ownership re-check, both could read
    /// the same source, insert at different destinations, and leave a
    /// stale resident copy at the directory loser forever.
    #[test]
    fn concurrent_migrations_leave_single_resident() {
        let rt = RuntimeBuilder::new(Config::small(3, 1)).build().unwrap();
        let obj = rt.new_data_at(LocalityId(0), vec![1]);
        std::thread::scope(|s| {
            for dest in [1u16, 2u16] {
                let rt = &rt;
                s.spawn(move || {
                    for _ in 0..300 {
                        // Losing a race is fine (NoSuchObject); diverging
                        // state is not.
                        let _ = rt.migrate_data(obj, LocalityId(dest));
                    }
                });
            }
        });
        let owner = rt.inner().agas.authoritative_owner(obj);
        let resident: Vec<u16> = (0..3u16)
            .filter(|&i| rt.inner().localities[i as usize].contains(obj))
            .collect();
        assert_eq!(
            resident,
            vec![owner.0],
            "exactly the owner holds the object"
        );
        rt.shutdown();
    }

    /// Regression: migration must never leave a window where the object
    /// is in neither store. Under an instant wire the owner-but-absent
    /// retry path has no backoff, so such a window lets in-flight
    /// parcels burn their whole hop budget and die, stranding their
    /// continuations. Fire reads at an object while it migrates back
    /// and forth; every read must complete and nothing may die.
    #[test]
    fn migration_race_never_strands_parcels() {
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let obj = rt.new_data_at(LocalityId(0), vec![7]);
        const N: u64 = 300;
        let gate = rt.new_and_gate(LocalityId(1), N);
        for _ in 0..N {
            rt.spawn_at(LocalityId(1), move |ctx| {
                let fut = ctx.fetch_data(obj);
                ctx.when_ready(fut.gid(), move |ctx, _| {
                    ctx.trigger_value(gate, Value::unit());
                });
            });
        }
        for i in 0..100u16 {
            rt.migrate_data(obj, LocalityId((i + 1) % 2)).unwrap();
            // Let chases settle so the test exercises the move window,
            // not hop-budget exhaustion from migrating faster than
            // parcels can chase.
            std::thread::sleep(Duration::from_micros(100));
        }
        let fut: FutureRef<()> = FutureRef::from_gid(gate);
        assert!(
            rt.wait_future_timeout(fut, Duration::from_secs(20))
                .unwrap()
                .is_some(),
            "reads stranded by migration race: {:?}",
            rt.stats().total()
        );
        assert_eq!(rt.stats().total().dead_parcels, 0);
        rt.shutdown();
    }

    #[test]
    fn balancer_off_runs_clean() {
        // No balance config: none of the new counters may move.
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let v = rt.run_blocking(LocalityId(1), |ctx| ctx.here().0);
        assert_eq!(v, 1);
        std::thread::sleep(Duration::from_millis(5));
        let t = rt.stats().total();
        assert_eq!(t.gossip_rounds, 0);
        assert_eq!(t.gossip_parcels, 0);
        assert_eq!(t.tasks_shed, 0);
        assert_eq!(t.balance_pulls, 0);
        rt.shutdown();
    }
}
