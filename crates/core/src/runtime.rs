//! The runtime: configuration, boot, the PX-thread context API, and the
//! external driver API.
//!
//! A [`Runtime`] owns `localities × workers` OS threads plus (when the
//! wire model is not instant) one delay-line thread. It is built once via
//! [`RuntimeBuilder`] — the action registry freezes at build so parcel
//! dispatch never locks — and torn down with [`Runtime::shutdown`] (or on
//! drop).
//!
//! Two views of the same machinery:
//!
//! * [`Ctx`] — handed to every PX-thread; split-phase only (never
//!   blocks): spawns, parcels, LCO events, suspension via depleted
//!   threads.
//! * [`Runtime`] — the external driver view; may block
//!   ([`Runtime::wait_future`], [`crate::lco::FutureRef::wait`]).

use crate::action::{Action, ActionRegistry, Value};
use crate::agas::Agas;
use crate::error::{Fault, PxError, PxResult};
use crate::fxmap::FxHashMap;
use crate::gid::{Gid, GidKind, LocalityId};
use crate::lco::{CombineFn, ExtSlot, FutureRef, LcoCore, ReduceFn, Waiter};
use crate::locality::{DataObject, Locality, Stored};
use crate::net::{BatchPolicy, TcpConfig, Wire, WireModel};
use crate::parcel::{Continuation, Parcel};
use crate::process::{ProcessInner, ProcessRef};
use crate::sched::{sys, Task};
use crossbeam::channel::Sender;
use crossbeam::deque::Worker as WorkerDeque;
use parking_lot::{Mutex, RwLock};
use px_balance::BalanceConfig;
use serde::{de::DeserializeOwned, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which transport backend carries inter-locality traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportKind {
    /// All localities share this OS process; messages are queue pushes
    /// routed through a delay line with the configured [`WireModel`]
    /// (the default, and the seed runtime's behavior, bit-for-bit).
    InProc,
    /// Each OS process owns one locality and peers over TCP sockets
    /// ([`crate::net::tcp`]). The [`WireModel`] is ignored — the
    /// network's latency is real — and `RuntimeBuilder::build` blocks on
    /// the bootstrap barrier until all N processes are connected.
    Tcp(TcpConfig),
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of localities (≥ 1).
    pub localities: usize,
    /// Worker OS threads per locality (≥ 1).
    pub workers_per_locality: usize,
    /// Inter-locality wire model.
    pub wire: WireModel,
    /// Transport backend selection (defaults to [`TransportKind::InProc`]).
    pub transport: TransportKind,
    /// Per-destination parcel coalescing policy. Defaults to
    /// [`BatchPolicy::single`] (one parcel per wire message — no added
    /// latency); throughput-oriented deployments enable
    /// [`BatchPolicy::batched`] via [`Config::with_batching`].
    pub batch: BatchPolicy,
    /// Localities that drain their percolation staging buffer at top
    /// priority (the "precious resources" of §2.2).
    pub accelerators: Vec<LocalityId>,
    /// Adaptive cross-locality load balancing (heat-driven AGAS migration
    /// plus parcel-based work diffusion). `None` (the default) disables
    /// every balancer hook: no gossip, no heat tracking, no shedding —
    /// runtime behavior and parcel counts are identical to a build
    /// without the subsystem.
    pub balance: Option<BalanceConfig>,
    /// Causal tracing (off by default: no ids sampled, no events
    /// recorded, untraced parcels bit-identical on the wire). See
    /// [`crate::trace`] and the README's "Tracing & debugging".
    pub trace: crate::trace::TraceConfig,
    /// Latency-histogram metrics (off by default: no registries
    /// allocated, every hook is one `Option` check, task and parcel
    /// encodings bit-identical). See [`crate::metrics`] and the README's
    /// "Metrics & percentiles".
    pub metrics: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            localities: 4,
            workers_per_locality: 1,
            wire: WireModel::instant(),
            transport: TransportKind::InProc,
            batch: BatchPolicy::single(),
            accelerators: Vec::new(),
            balance: None,
            trace: crate::trace::TraceConfig::default(),
            metrics: false,
        }
    }
}

impl Config {
    /// Compact constructor for tests and examples.
    pub fn small(localities: usize, workers_per_locality: usize) -> Config {
        Config {
            localities,
            workers_per_locality,
            ..Config::default()
        }
    }

    /// Set the wire latency (builder style).
    pub fn with_latency(mut self, latency: Duration) -> Config {
        self.wire = WireModel {
            latency,
            ..self.wire
        };
        self
    }

    /// Set the wire bandwidth cost in ns/byte (builder style).
    pub fn with_ns_per_byte(mut self, ns: u64) -> Config {
        self.wire = WireModel {
            ns_per_byte: ns,
            ..self.wire
        };
        self
    }

    /// Set the full coalescing policy (builder style).
    pub fn with_batching(mut self, batch: BatchPolicy) -> Config {
        self.batch = batch;
        self
    }

    /// Coalesce up to `n` parcels per wire message (builder style; `1`
    /// disables batching). Composes with the other batch builders: only
    /// this knob changes.
    pub fn with_max_batch_parcels(mut self, n: usize) -> Config {
        self.batch.max_batch_parcels = n.max(1);
        self
    }

    /// Set the byte budget per coalesced frame (builder style). Batching
    /// needs `max_batch_parcels > 1` to engage, so if it is still at the
    /// disabled default this also raises it to [`BatchPolicy::batched`]'s
    /// parcel cap — asking for a byte budget means asking for batching.
    pub fn with_max_batch_bytes(mut self, bytes: usize) -> Config {
        self.batch.max_batch_bytes = bytes;
        if !self.batch.is_batching() {
            self.batch.max_batch_parcels = BatchPolicy::batched().max_batch_parcels;
        }
        self
    }

    /// Set the maximum hold time for a coalescing port (builder style).
    /// A pure tuning knob: it does not by itself enable batching.
    pub fn with_flush_interval(mut self, interval: Duration) -> Config {
        self.batch.flush_interval = interval;
        self
    }

    /// Run over TCP as one locality of a multi-process system (builder
    /// style): this process owns locality `rank`; `addrs[i]` is the
    /// listen address of locality `i`. `localities` is set to
    /// `addrs.len()` — one process per locality. See the README's
    /// "Distributed deployment".
    pub fn with_tcp(mut self, rank: u16, addrs: Vec<String>) -> Config {
        self.localities = addrs.len();
        self.transport = TransportKind::Tcp(TcpConfig::new(rank, addrs));
        self
    }

    /// Full control over the transport backend (builder style).
    pub fn with_transport(mut self, transport: TransportKind) -> Config {
        self.transport = transport;
        self
    }

    /// True when this configuration spans multiple OS processes.
    pub fn is_distributed(&self) -> bool {
        matches!(self.transport, TransportKind::Tcp(_))
    }

    /// Mark a locality as a percolation-priority accelerator.
    pub fn with_accelerator(mut self, loc: LocalityId) -> Config {
        self.accelerators.push(loc);
        self
    }

    /// Enable the cross-locality balancer with the given configuration
    /// (builder style). See [`BalanceConfig::adaptive`],
    /// [`BalanceConfig::work_to_data`], [`BalanceConfig::data_to_work`].
    pub fn with_balance(mut self, balance: BalanceConfig) -> Config {
        self.balance = Some(balance);
        self
    }

    /// Set the balancer pulse interval (builder style). Asking for a
    /// gossip cadence means asking for balancing, so if the balancer is
    /// still off this enables the [`BalanceConfig::adaptive`] policy —
    /// mirroring how [`Config::with_max_batch_bytes`] engages batching.
    pub fn with_gossip_interval(mut self, interval: Duration) -> Config {
        self.balance
            .get_or_insert_with(BalanceConfig::adaptive)
            .gossip_interval = interval;
        self
    }

    /// Set the shed overload ratio (builder style; enables the adaptive
    /// balancer if off, like [`Config::with_gossip_interval`]).
    pub fn with_shed_ratio(mut self, ratio: f64) -> Config {
        self.balance
            .get_or_insert_with(BalanceConfig::adaptive)
            .shed_ratio = ratio;
        self
    }

    /// Set the per-round heat threshold for balancer migrations (builder
    /// style; enables the adaptive balancer if off).
    pub fn with_heat_threshold(mut self, accesses_per_round: u64) -> Config {
        self.balance
            .get_or_insert_with(BalanceConfig::adaptive)
            .heat_threshold = accesses_per_round;
        self
    }

    /// Enable causal tracing, sampling one in `n` untraced root parcels
    /// (builder style; `1` traces everything, `0` turns tracing off).
    /// Parcels given an explicit id — [`Runtime::send_action_traced`] —
    /// are always recorded regardless of the sampling rate.
    pub fn with_trace_sampling(mut self, n: u64) -> Config {
        self.trace.sample_every = n;
        self
    }

    /// Set the per-locality trace ring capacity in events (builder
    /// style). Asking for a ring size does not by itself enable tracing.
    pub fn with_trace_ring_capacity(mut self, events: usize) -> Config {
        self.trace.ring_capacity = events;
        self
    }

    /// Enable (or disable) the latency-histogram metrics plane (builder
    /// style): per-locality lock-free histograms for queue wait, action
    /// execute time, spawn→resolution latency, transport drain, and
    /// control-lane delivery — queryable via [`Runtime::metrics_text`]
    /// and merged cluster-wide by [`Runtime::cluster_metrics`].
    pub fn with_metrics(mut self, enabled: bool) -> Config {
        self.metrics = enabled;
        self
    }

    fn validate(&self) -> PxResult<()> {
        if self.localities == 0 || self.localities > u16::MAX as usize {
            return Err(PxError::BadConfig(format!(
                "localities must be in 1..=65535, got {}",
                self.localities
            )));
        }
        if self.workers_per_locality == 0 {
            return Err(PxError::BadConfig(
                "workers_per_locality must be ≥ 1".into(),
            ));
        }
        for a in &self.accelerators {
            if a.0 as usize >= self.localities {
                return Err(PxError::BadConfig(format!("accelerator {a} out of range")));
            }
        }
        if self.batch.max_batch_parcels == 0 {
            return Err(PxError::BadConfig(
                "max_batch_parcels must be ≥ 1 (1 disables batching)".into(),
            ));
        }
        if self.batch.max_batch_bytes == 0 {
            return Err(PxError::BadConfig("max_batch_bytes must be ≥ 1".into()));
        }
        if self.batch.is_batching() && self.batch.flush_interval.is_zero() {
            return Err(PxError::BadConfig(
                "flush_interval must be nonzero when batching".into(),
            ));
        }
        if let TransportKind::Tcp(tcp) = &self.transport {
            if tcp.addrs.len() != self.localities {
                return Err(PxError::BadConfig(format!(
                    "tcp transport needs one address per locality: {} addrs for {} localities",
                    tcp.addrs.len(),
                    self.localities
                )));
            }
            if tcp.rank as usize >= self.localities {
                return Err(PxError::BadConfig(format!(
                    "tcp rank {} out of range for {} localities",
                    tcp.rank, self.localities
                )));
            }
            if tcp.bootstrap_timeout.is_zero() {
                return Err(PxError::BadConfig(
                    "tcp bootstrap_timeout must be nonzero".into(),
                ));
            }
        }
        if self.trace.enabled() && self.trace.ring_capacity == 0 {
            return Err(PxError::BadConfig(
                "trace ring_capacity must be ≥ 1 when tracing is enabled".into(),
            ));
        }
        if let Some(b) = &self.balance {
            if b.gossip_interval.is_zero() {
                return Err(PxError::BadConfig(
                    "balance gossip_interval must be nonzero".into(),
                ));
            }
            if b.window == 0 {
                return Err(PxError::BadConfig("balance window must be ≥ 1".into()));
            }
            if b.shed_ratio.is_nan() || b.shed_ratio < 1.0 {
                return Err(PxError::BadConfig(format!(
                    "balance shed_ratio must be ≥ 1.0, got {}",
                    b.shed_ratio
                )));
            }
        }
        Ok(())
    }
}

/// Shared runtime state (everything workers need).
pub struct RuntimeInner {
    /// Configuration the runtime booted with.
    pub config: Config,
    /// All localities, indexed by id.
    pub localities: Arc<Vec<Arc<Locality>>>,
    /// The global address space service.
    pub agas: Agas,
    /// Frozen action dispatch table.
    pub registry: ActionRegistry,
    pub(crate) wire: Wire,
    pub(crate) shutdown: AtomicBool,
    pub(crate) process_table: RwLock<FxHashMap<Gid, Arc<ProcessInner>>>,
    /// Parallel processes created (roots + subprocesses).
    pub(crate) processes_created: AtomicU64,
    /// Parallel processes cancelled (each subtree member counts once).
    pub(crate) processes_cancelled: AtomicU64,
    /// Exited-and-unreferenced process records reaped from the table.
    pub(crate) processes_reaped: AtomicU64,
    /// The locality driver-level sends originate from: locality 0
    /// in-process (the seed convention), this process's rank over TCP.
    pub(crate) origin: LocalityId,
    /// The single locality whose workers run in this OS process (`None`
    /// in-process: all of them do).
    pub(crate) owned: Option<LocalityId>,
    /// Whether the send path records AGAS access heat: true only when the
    /// balancer is on *and* its policy can act on heat
    /// ([`px_balance::BalancePolicy::uses_heat`]) — otherwise the
    /// per-send heat-map update would be pure overhead.
    pub(crate) track_heat: bool,
    /// Dead-letter hook: observes every fault the runtime raises (parcel
    /// deaths and dead-ended LCO errors). `None` by default — faults are
    /// still counted and delivered to continuations either way.
    pub(crate) dead_letter: Option<DeadLetterHook>,
    /// Trace-aware dead-letter hook: like `dead_letter` but also handed
    /// the dying trace's captured event slice (empty when the fault's
    /// parcel carried no trace id).
    pub(crate) dead_letter_traced: Option<TracedDeadLetterHook>,
    /// Trace sampler and id allocator (`Some` iff `config.trace` is
    /// enabled).
    pub(crate) trace: Option<crate::trace::TraceState>,
}

/// Observer invoked (synchronously, on the worker that raised it) for
/// every fault. Keep it cheap and non-blocking; it runs on the hot path
/// of a dying parcel. Registered via [`RuntimeBuilder::on_dead_letter`].
///
/// The hook sees a superset of the `dead_parcels` counters: parcel
/// deaths and dead-ended LCO errors (counted by cause), plus two
/// uncounted classes with no parcel to count — panics in closure
/// threads ([`Ctx::spawn`]/[`Ctx::when_ready`] bodies, visible in the
/// `panics` counter only) and [`Ctx::acquire`] continuations dropped at
/// a poisoned semaphore.
pub type DeadLetterHook = Arc<dyn Fn(&Fault) + Send + Sync + 'static>;

/// Trace-aware dead-letter observer, registered via
/// [`RuntimeBuilder::on_dead_letter_traced`]. Sees every fault the plain
/// [`DeadLetterHook`] sees, plus the causally ordered slice of trace
/// events captured for the dying parcel's trace id at the moment of death
/// — the full chase/forward/poison history when tracing is on. The dump
/// is empty when the fault's parcel carried no trace id (tracing off, or
/// the parcel was not sampled). Same contract: synchronous, keep it
/// cheap.
pub type TracedDeadLetterHook =
    Arc<dyn Fn(&Fault, &crate::trace::TraceDump) + Send + Sync + 'static>;

impl std::fmt::Debug for RuntimeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInner")
            .field("localities", &self.localities.len())
            .field("actions", &self.registry.len())
            .finish()
    }
}

impl RuntimeInner {
    /// Locality by id (panics on out-of-range — ids come from GIDs we
    /// minted, so out-of-range indicates memory corruption, not input).
    #[inline]
    pub fn locality(&self, id: LocalityId) -> &Arc<Locality> {
        &self.localities[id.0 as usize]
    }

    /// Report a fault to the dead-letter hook, if one is registered.
    #[inline]
    pub(crate) fn notify_dead_letter(&self, fault: &Fault) {
        if let Some(hook) = &self.dead_letter {
            hook(fault);
        }
        if let Some(hook) = &self.dead_letter_traced {
            hook(fault, &crate::trace::TraceDump::default());
        }
    }

    /// Report a fault raised by a *traced* parcel: the plain hook sees
    /// the fault as usual; the traced hook additionally receives the
    /// trace's captured event slice (what `trace_dump_for` would return
    /// at this instant). Falls back to [`RuntimeInner::notify_dead_letter`]
    /// when no trace id is attached.
    pub(crate) fn notify_dead_letter_traced(&self, fault: &Fault, trace: Option<u64>) {
        if let Some(hook) = &self.dead_letter {
            hook(fault);
        }
        if let Some(hook) = &self.dead_letter_traced {
            let dump = match trace {
                Some(t) => self.local_trace_dump().filter(t),
                None => crate::trace::TraceDump::default(),
            };
            hook(fault, &dump);
        }
    }

    /// Merge every owned locality's trace ring into one causally ordered
    /// dump (this OS process's view only; see
    /// [`Runtime::trace_dump`] for the cross-rank story).
    pub(crate) fn local_trace_dump(&self) -> crate::trace::TraceDump {
        let mut events = Vec::new();
        for loc in self.localities.iter() {
            if let Some(ring) = &loc.trace {
                events.extend(ring.snapshot());
            }
        }
        crate::trace::TraceDump::new(events)
    }

    /// Merge the metrics registries of every locality this process owns
    /// (empty snapshot when metrics are off — remote stubs never have a
    /// registry, so in a multi-process system this is *this rank's*
    /// histograms only).
    pub(crate) fn local_metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let mut merged = crate::metrics::MetricsSnapshot::default();
        for loc in self.localities.iter() {
            if let Some(reg) = &loc.metrics {
                merged.merge(&reg.snapshot());
            }
        }
        merged
    }

    /// True when locality `id`'s workers run in this OS process.
    #[inline]
    pub(crate) fn owns(&self, id: LocalityId) -> bool {
        self.owned.is_none_or(|o| o == id)
    }

    /// True when this runtime is one rank of a multi-process system.
    #[inline]
    pub(crate) fn distributed(&self) -> bool {
        self.owned.is_some()
    }
}

/// Builds a [`Runtime`]: collect the action registry, validate the
/// config, boot workers.
pub struct RuntimeBuilder {
    config: Config,
    registry: ActionRegistry,
    errors: Vec<PxError>,
    dead_letter: Option<DeadLetterHook>,
    dead_letter_traced: Option<TracedDeadLetterHook>,
}

impl RuntimeBuilder {
    /// Start building with `config`.
    pub fn new(config: Config) -> Self {
        RuntimeBuilder {
            config,
            registry: ActionRegistry::new(),
            errors: Vec::new(),
            dead_letter: None,
            dead_letter_traced: None,
        }
    }

    /// Register a typed action (duplicates are reported at
    /// [`RuntimeBuilder::build`]).
    pub fn register<A: Action>(mut self) -> Self {
        if let Err(e) = self.registry.register::<A>() {
            self.errors.push(e);
        }
        self
    }

    /// Install a dead-letter hook observing every fault the runtime
    /// raises (parcel deaths by any cause, dead-ended LCO errors). Runs
    /// synchronously on the raising worker — keep it cheap. Faults are
    /// counted and propagated to continuations whether or not a hook is
    /// installed; the hook is for logging, alerting, and tests.
    pub fn on_dead_letter(mut self, hook: impl Fn(&Fault) + Send + Sync + 'static) -> Self {
        self.dead_letter = Some(Arc::new(hook));
        self
    }

    /// Install a trace-aware dead-letter hook: sees every fault
    /// [`RuntimeBuilder::on_dead_letter`] sees, plus the dying trace's
    /// captured event slice (see [`TracedDeadLetterHook`]). Both hooks
    /// may be installed; each observes every fault.
    pub fn on_dead_letter_traced(
        mut self,
        hook: impl Fn(&Fault, &crate::trace::TraceDump) + Send + Sync + 'static,
    ) -> Self {
        self.dead_letter_traced = Some(Arc::new(hook));
        self
    }

    /// Validate, construct, and boot the runtime.
    pub fn build(self) -> PxResult<Runtime> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        self.config.validate()?;
        let n = self.config.localities;
        let owned = match &self.config.transport {
            TransportKind::InProc => None,
            TransportKind::Tcp(tcp) => Some(LocalityId(tcp.rank)),
        };
        let balance_window = self.config.balance.as_ref().map(|b| b.window);
        // One causality domain per OS process: in-process runs are domain
        // 0; over TCP each rank is its own domain (clocks incomparable).
        let domain = owned.map_or(0, |o| o.0);
        // One epoch shared by every ring of this runtime, so in-process
        // timestamps are comparable.
        let trace_epoch = self.config.trace.enabled().then(std::time::Instant::now);
        let trace_capacity = self.config.trace.ring_capacity;
        let localities: Arc<Vec<Arc<Locality>>> = Arc::new(
            (0..n)
                .map(|i| {
                    let id = LocalityId(i as u16);
                    let accel = self.config.accelerators.contains(&id);
                    let mut loc = Locality::new(id, accel);
                    if let Some(window) = balance_window {
                        loc.enable_balance(n, window);
                    }
                    // Rings only where workers will run: a remote stub
                    // never executes anything worth recording.
                    if let Some(epoch) = trace_epoch {
                        if owned.is_none_or(|o| o == id) {
                            loc.enable_trace(Arc::new(crate::trace::TraceRing::new(
                                trace_capacity,
                                id,
                                domain,
                                epoch,
                            )));
                        }
                    }
                    // Registries only where workers will run, like trace
                    // rings: a remote stub records nothing.
                    if self.config.metrics && owned.is_none_or(|o| o == id) {
                        loc.enable_metrics(Arc::new(crate::metrics::MetricsRegistry::default()));
                    }
                    // In a multi-process system the structs for other
                    // ranks are routing stubs: creating objects there
                    // would mint GIDs another process also mints.
                    if owned.is_some_and(|o| o != id) {
                        loc.mark_remote_stub();
                    }
                    Arc::new(loc)
                })
                .collect(),
        );
        let transport: Box<dyn crate::net::Transport> = match &self.config.transport {
            TransportKind::InProc => Box::new(crate::net::inproc::InProcTransport::new(
                self.config.wire,
                localities.clone(),
            )),
            TransportKind::Tcp(tcp) => Box::new(crate::net::tcp::TcpTransport::bootstrap(
                tcp,
                localities.clone(),
            )?),
        };
        let wire = Wire::new(transport, localities.clone(), self.config.batch);
        let track_heat = self
            .config
            .balance
            .as_ref()
            .is_some_and(|b| b.policy.uses_heat());
        let origin = owned.unwrap_or(LocalityId(0));
        let inner = Arc::new(RuntimeInner {
            agas: Agas::new(n),
            registry: self.registry,
            wire,
            shutdown: AtomicBool::new(false),
            process_table: RwLock::new(FxHashMap::default()),
            processes_created: AtomicU64::new(0),
            processes_cancelled: AtomicU64::new(0),
            processes_reaped: AtomicU64::new(0),
            origin,
            owned,
            track_heat,
            dead_letter: self.dead_letter,
            dead_letter_traced: self.dead_letter_traced,
            trace: self
                .config
                .trace
                .enabled()
                .then(|| crate::trace::TraceState::new(self.config.trace.sample_every, domain)),
            localities,
            config: self.config,
        });
        // Late-bind the runtime into the transport so undeliverable
        // messages can be killed loudly (fault to continuation).
        inner.wire.bind(&inner);

        // Boot workers: deques and stealers are wired before any thread
        // starts, so `Locality::stealers` is effectively immutable after.
        // In a multi-process system only the owned rank gets workers;
        // the other locality structs are reached via the transport.
        let mut joins = Vec::new();
        for (li, loc) in inner.localities.iter().enumerate() {
            if !inner.owns(LocalityId(li as u16)) {
                continue;
            }
            let deques: Vec<WorkerDeque<Task>> = (0..inner.config.workers_per_locality)
                .map(|_| WorkerDeque::new_lifo())
                .collect();
            *loc.stealers.write() = deques.iter().map(|d| d.stealer()).collect();
            for (wi, deque) in deques.into_iter().enumerate() {
                let rt = inner.clone();
                joins.push(
                    std::thread::Builder::new()
                        .name(format!("px-L{li}-w{wi}"))
                        .spawn(move || crate::sched::worker_main(rt, li, wi, deque))
                        .expect("spawn worker"),
                );
            }
        }
        // The balancer pulse: one thread closing the telemetry → placement
        // loop for all localities (decisions still read only per-locality
        // gossip state; see `crate::balance`).
        let balancer = if inner.config.balance.is_some() {
            let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
            let rt = inner.clone();
            let handle = std::thread::Builder::new()
                .name("px-balancer".into())
                .spawn(move || crate::balance::balancer_main(rt, stop_rx))
                .expect("spawn balancer thread");
            Some((stop_tx, handle))
        } else {
            None
        };
        Ok(Runtime {
            inner,
            joins: Mutex::new(Some(joins)),
            balancer: Mutex::new(balancer),
        })
    }
}

/// The booted runtime (external driver handle).
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    joins: Mutex<Option<Vec<JoinHandle<()>>>>,
    balancer: Mutex<Option<(Sender<()>, JoinHandle<()>)>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl Runtime {
    /// Shared state handle (crate-internal plumbing).
    pub(crate) fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }

    /// Number of localities.
    pub fn num_localities(&self) -> usize {
        self.inner.localities.len()
    }

    /// The active wire model.
    pub fn wire_model(&self) -> WireModel {
        self.inner.wire.model()
    }

    /// Snapshot all locality counters.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        let (migrations_manual, migrations_balancer) = self.inner.agas.migrations_by_cause();
        crate::stats::StatsSnapshot {
            localities: self
                .inner
                .localities
                .iter()
                .map(|l| l.counters.snapshot())
                .collect(),
            migrations_manual,
            migrations_balancer,
            processes_created: self.inner.processes_created.load(Ordering::Relaxed),
            processes_cancelled: self.inner.processes_cancelled.load(Ordering::Relaxed),
            processes_reaped: self.inner.processes_reaped.load(Ordering::Relaxed),
            transport: self.inner.wire.transport_stats(),
        }
    }

    /// Merge every locality's trace ring into one causally ordered
    /// [`crate::trace::TraceDump`] (empty when tracing is off). In a
    /// multi-process system this is *this rank's* slice only; fetch the
    /// peers' dumps (e.g. with an action returning
    /// `rt.trace_dump().events`) and combine with
    /// [`crate::trace::TraceDump::merge`] for the cross-rank replay.
    pub fn trace_dump(&self) -> crate::trace::TraceDump {
        self.inner.local_trace_dump()
    }

    /// [`Runtime::trace_dump`] filtered to one trace id.
    pub fn trace_dump_for(&self, trace: u64) -> crate::trace::TraceDump {
        self.inner.local_trace_dump().filter(trace)
    }

    /// Allocate a fresh trace id for [`Runtime::send_action_traced`]
    /// (`None` when tracing is off). Ids are unique across ranks without
    /// coordination: the rank lives in the high bits.
    pub fn new_trace_id(&self) -> Option<u64> {
        self.inner.trace.as_ref().map(|t| t.fresh_id())
    }

    /// [`Runtime::send_action`] with an explicit trace id: the parcel and
    /// everything it causes — follow-on parcels, LCO events, faults —
    /// record under `trace` regardless of the sampling rate. The id rides
    /// the wire, so the chain is recorded on every rank it crosses.
    pub fn send_action_traced<A: Action>(
        &self,
        target: Gid,
        args: A::Args,
        cont: Continuation,
        trace: u64,
    ) -> PxResult<()> {
        let mut p = Parcel::new(target, A::id(), Value::encode(&args)?, cont);
        p.trace = Some(trace);
        self.inner.send_parcel(self.inner.origin, p);
        Ok(())
    }

    // ---- metrics -----------------------------------------------------------

    /// This rank's merged latency histograms (an empty snapshot when
    /// metrics are off). In a multi-process system this is the local
    /// slice only; [`Runtime::cluster_metrics`] merges every rank's.
    pub fn local_metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.inner.local_metrics_snapshot()
    }

    /// Merge every locality's latency histograms into one
    /// [`crate::metrics::ClusterMetrics`], callable from any rank.
    ///
    /// Single-process: snapshots each locality's registry directly.
    /// Multi-process: sends one `__sys/metrics_pull` parcel per remote
    /// rank over the control priority lane (the balancer-gossip path, so
    /// a backpressured data lane cannot starve the pull) and blocks for
    /// the replies. Only bucket *counts* cross the wire — each histogram
    /// was recorded against its own rank's monotonic clock and merging
    /// adds counts, so clocks are never compared cross-rank. A dead peer
    /// surfaces as [`PxError::Fault`] through the usual dead-letter path
    /// rather than a silent hang; for a bounded wait use
    /// [`Runtime::cluster_metrics_timeout`].
    pub fn cluster_metrics(&self) -> PxResult<crate::metrics::ClusterMetrics> {
        Ok(self
            .cluster_metrics_inner(None)?
            .expect("unbounded metrics pull cannot time out"))
    }

    /// [`Runtime::cluster_metrics`] with a per-reply timeout: `Ok(None)`
    /// when any rank's reply did not arrive in time.
    pub fn cluster_metrics_timeout(
        &self,
        timeout: Duration,
    ) -> PxResult<Option<crate::metrics::ClusterMetrics>> {
        self.cluster_metrics_inner(Some(timeout))
    }

    fn cluster_metrics_inner(
        &self,
        timeout: Option<Duration>,
    ) -> PxResult<Option<crate::metrics::ClusterMetrics>> {
        let mut per_rank: Vec<(u16, crate::metrics::MetricsSnapshot)> = Vec::new();
        if self.inner.distributed() {
            let own = self.inner.origin;
            per_rank.push((own.0, self.inner.local_metrics_snapshot()));
            // Issue every pull before waiting on any reply so the pulls
            // fan out concurrently: the total wait is one round trip,
            // not one per rank.
            let mut pending = Vec::new();
            for i in 0..self.inner.localities.len() {
                let id = LocalityId(i as u16);
                if id == own {
                    continue;
                }
                let gid = self.inner.locality(own).new_future_lco();
                let p = Parcel::new(
                    Gid::locality_root(id),
                    sys::METRICS_PULL,
                    Value::from_bytes(Vec::new()),
                    Continuation::set(gid),
                );
                self.inner.send_parcel(own, p);
                pending.push((id, gid));
            }
            for (id, gid) in pending {
                let loc = self.inner.locality(own);
                let lco = loc.get_lco(gid)?;
                let slot = Arc::new(ExtSlot::default());
                let acts = lco.lock().add_waiter(Waiter::External(slot.clone()));
                self.inner.schedule_activations(loc, acts);
                let v = match timeout {
                    None => slot.wait()?,
                    Some(t) => match slot.wait_timeout(t)? {
                        Some(v) => v,
                        None => return Ok(None),
                    },
                };
                per_rank.push((id.0, crate::metrics::MetricsSnapshot::decode(v.bytes())?));
            }
            per_rank.sort_by_key(|&(r, _)| r);
        } else {
            for (i, loc) in self.inner.localities.iter().enumerate() {
                let snap = match &loc.metrics {
                    Some(reg) => reg.snapshot(),
                    None => crate::metrics::MetricsSnapshot::default(),
                };
                per_rank.push((i as u16, snap));
            }
        }
        let mut merged = crate::metrics::MetricsSnapshot::default();
        for (_, s) in &per_rank {
            merged.merge(s);
        }
        Ok(Some(crate::metrics::ClusterMetrics { per_rank, merged }))
    }

    /// Render the Prometheus-style text exposition page for this rank:
    /// every [`crate::stats::StatsSnapshot`] total as a `name{} value`
    /// line, the derived ratio gauges, then one histogram block per
    /// metrics instrument (cumulative `_bucket{le="…"}` lines, `_sum`,
    /// `_count`, and precomputed quantiles — empty-but-present blocks
    /// when metrics are off). For a cluster-wide page, feed
    /// [`Runtime::cluster_metrics`]'s merged snapshot through
    /// [`crate::metrics::render_instruments`] instead.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let stats = self.stats();
        let t = stats.total();
        let mut out = String::new();
        // Counter totals. The `{{}}` renders as a literal empty label set
        // so every line parses uniformly as `name{labels} value`.
        macro_rules! counter {
            ($field:ident) => {
                let _ = writeln!(out, concat!("px_", stringify!($field), "{{}} {}"), t.$field);
            };
        }
        counter!(parcels_sent);
        counter!(parcels_recv);
        counter!(parcels_forwarded);
        counter!(bytes_sent);
        counter!(threads_executed);
        counter!(resumes);
        counter!(steals);
        counter!(parks);
        counter!(busy_ns);
        counter!(idle_ns);
        counter!(lco_events);
        counter!(staged_executed);
        counter!(agas_cache_hits);
        counter!(agas_cache_misses);
        counter!(agas_directory_lookups);
        counter!(frames_sent);
        counter!(frames_recv);
        counter!(coalesced_parcels);
        counter!(batch_flush_full);
        counter!(batch_flush_timer);
        counter!(dead_parcels);
        counter!(dead_hop_cap);
        counter!(dead_unknown_action);
        counter!(dead_handler_error);
        counter!(dead_panic);
        counter!(dead_decode);
        counter!(dead_cancelled);
        counter!(dead_transport);
        counter!(tasks_cancelled);
        counter!(panics);
        counter!(gossip_rounds);
        counter!(gossip_parcels);
        counter!(tasks_shed);
        counter!(balance_pulls);
        counter!(chase_hops_total);
        counter!(chased_parcels);
        counter!(chase_cap_violations);
        counter!(trace_events_recorded);
        counter!(trace_events_dropped);
        counter!(dir_lookups_local);
        counter!(dir_lookups_remote);
        counter!(dir_forwards);
        counter!(dir_repairs);
        let _ = writeln!(out, "px_migrations_manual{{}} {}", stats.migrations_manual);
        let _ = writeln!(
            out,
            "px_migrations_balancer{{}} {}",
            stats.migrations_balancer
        );
        let _ = writeln!(out, "px_processes_created{{}} {}", stats.processes_created);
        let _ = writeln!(
            out,
            "px_processes_cancelled{{}} {}",
            stats.processes_cancelled
        );
        let _ = writeln!(out, "px_processes_reaped{{}} {}", stats.processes_reaped);
        // Ratio gauges: all 0.0-guarded on empty counters, so this page
        // never prints NaN (pinned by the stats unit tests).
        let _ = writeln!(out, "px_busy_fraction{{}} {}", t.busy_fraction());
        let _ = writeln!(out, "px_parcels_per_frame{{}} {}", t.parcels_per_frame());
        let _ = writeln!(out, "px_mean_chase_len{{}} {}", t.mean_chase_len());
        let _ = writeln!(out, "px_agas_hit_rate{{}} {}", t.agas_hit_rate());
        crate::metrics::render_instruments(&self.inner.local_metrics_snapshot(), &mut out);
        out
    }

    /// Stop accepting work, wake and join all workers, stop the wire.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        // Stop the balancer first so no new gossip/shed traffic races the
        // worker teardown (closing the channel stops the thread).
        let balancer = self.balancer.lock().take();
        if let Some((stop, handle)) = balancer {
            drop(stop);
            let _ = handle.join();
        }
        let joins = self.joins.lock().take();
        if let Some(joins) = joins {
            self.inner.shutdown.store(true, Ordering::Release);
            for loc in self.inner.localities.iter() {
                loc.sleep.wake_all();
            }
            for j in joins {
                let _ = j.join();
            }
        }
    }

    // ---- work injection ---------------------------------------------------

    /// Spawn a PX-thread at `dest`.
    pub fn spawn_at(&self, dest: LocalityId, f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) {
        self.inner.send_task(dest, dest, Task::thread(f));
    }

    /// Send an action parcel (origin is locality 0 by driver convention;
    /// in a multi-process system, the locality this process owns).
    pub fn send_action<A: Action>(
        &self,
        target: Gid,
        args: A::Args,
        cont: Continuation,
    ) -> PxResult<()> {
        let p = Parcel::new(target, A::id(), Value::encode(&args)?, cont);
        self.inner.send_parcel(self.inner.origin, p);
        Ok(())
    }

    /// Run a closure inside a PX-thread at `dest` and block for its
    /// result (driver convenience; the result crosses back through a
    /// channel, not the wire).
    pub fn run_blocking<T, F>(&self, dest: LocalityId, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&mut Ctx<'_>) -> T + Send + 'static,
    {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.spawn_at(dest, move |ctx| {
            let _ = tx.send(f(ctx));
        });
        rx.recv().expect("runtime dropped while running closure")
    }

    // ---- LCOs --------------------------------------------------------------

    /// Create a future LCO at `loc`.
    pub fn new_future<T: Serialize + DeserializeOwned>(&self, loc: LocalityId) -> FutureRef<T> {
        FutureRef::from_gid(self.inner.locality(loc).new_future_lco())
    }

    /// Create an and-gate expecting `n` triggers at `loc`.
    pub fn new_and_gate(&self, loc: LocalityId, n: u64) -> Gid {
        self.inner.locality(loc).insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_and_gate(gid, n))))
        })
    }

    /// Create a reduction LCO at `loc` over `n` contributions.
    pub fn new_reduce<T: Serialize + DeserializeOwned>(
        &self,
        loc: LocalityId,
        n: u64,
        seed: &T,
        fold: ReduceFn,
    ) -> PxResult<FutureRef<T>> {
        let seed = Value::encode(seed)?;
        let gid = self.inner.locality(loc).insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_reduce(
                gid, n, seed, fold,
            ))))
        });
        Ok(FutureRef::from_gid(gid))
    }

    /// Create a counting semaphore at `loc`.
    pub fn new_semaphore(&self, loc: LocalityId, permits: u64) -> Gid {
        self.inner.locality(loc).insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_semaphore(gid, permits))))
        })
    }

    /// Trigger any LCO with an encoded value, routed like a parcel.
    pub fn trigger<T: Serialize>(&self, gid: Gid, value: &T) -> PxResult<()> {
        let v = Value::encode(value)?;
        let from = self.inner.locality(self.inner.origin);
        self.inner
            .lco_route_traced(from, gid, sys::LCO_SET, v, None);
        Ok(())
    }

    /// Fill a typed future.
    pub fn set_future<T: Serialize + DeserializeOwned>(
        &self,
        fut: FutureRef<T>,
        value: &T,
    ) -> PxResult<()> {
        self.trigger(fut.gid(), value)
    }

    /// Block until an LCO fires; returns the raw value. If the LCO is (or
    /// becomes) *poisoned* — a parcel feeding it died — this returns
    /// [`PxError::Fault`] instead of blocking forever.
    pub fn wait_value(&self, gid: Gid) -> PxResult<Value> {
        let loc = self.inner.locality(gid.birthplace());
        let lco = loc.get_lco(gid)?;
        let slot = Arc::new(ExtSlot::default());
        let acts = lco.lock().add_waiter(Waiter::External(slot.clone()));
        self.inner.schedule_activations(loc, acts);
        slot.wait()
    }

    /// Block until a typed future fires. A poisoned future surfaces as
    /// [`PxError::Fault`] (see the README's "Failure semantics").
    pub fn wait_future<T: Serialize + DeserializeOwned>(&self, fut: FutureRef<T>) -> PxResult<T> {
        self.wait_value(fut.gid())?.decode()
    }

    /// Block with a timeout; `Ok(None)` on timeout, [`PxError::Fault`] if
    /// the future was poisoned.
    pub fn wait_future_timeout<T: Serialize + DeserializeOwned>(
        &self,
        fut: FutureRef<T>,
        timeout: Duration,
    ) -> PxResult<Option<T>> {
        let gid = fut.gid();
        let loc = self.inner.locality(gid.birthplace());
        let lco = loc.get_lco(gid)?;
        let slot = Arc::new(ExtSlot::default());
        let acts = lco.lock().add_waiter(Waiter::External(slot.clone()));
        self.inner.schedule_activations(loc, acts);
        match slot.wait_timeout(timeout)? {
            Some(v) => Ok(Some(v.decode()?)),
            None => Ok(None),
        }
    }

    // ---- data objects ------------------------------------------------------

    /// Create a data object at `loc`.
    pub fn new_data_at(&self, loc: LocalityId, bytes: Vec<u8>) -> Gid {
        self.inner.locality(loc).insert(GidKind::Data, |_| {
            Stored::Data(Arc::new(RwLock::new(DataObject { bytes, version: 0 })))
        })
    }

    /// Read a data object wherever it lives (driver-side shortcut; inside
    /// PX-threads use parcels or [`Ctx::fetch_data`]). In-process, owner
    /// lookup and store access happen under the migration guard, so a
    /// concurrent migration (manual or balancer) cannot yield a spurious
    /// `NoSuchObject` between the two. Across ranks the read is a
    /// `DATA_GET` parcel round-trip instead — no lock is ever held across
    /// the RTT, and the bounded chase (not the guard) absorbs races with
    /// concurrent migrations.
    pub fn read_data(&self, gid: Gid) -> PxResult<Vec<u8>> {
        if self.inner.distributed() {
            let owner = self.inner.agas.authoritative_owner(gid);
            if self.inner.owns(owner) {
                let _guard = self.inner.agas.migration_guard();
                let owner = self.inner.agas.authoritative_owner(gid);
                if self.inner.owns(owner) {
                    let d = self.inner.locality(owner).get_data(gid)?;
                    let g = d.read();
                    return Ok(g.bytes.clone());
                }
                // Re-homed between the two lookups: fall through to the
                // parcel path (guard dropped first).
            }
            let v = self.sys_rpc(gid, sys::DATA_GET, Vec::new())?;
            return v.decode::<Vec<u8>>();
        }
        let _guard = self.inner.agas.migration_guard();
        let owner = self.inner.agas.authoritative_owner(gid);
        let d = self.inner.locality(owner).get_data(gid)?;
        let g = d.read();
        Ok(g.bytes.clone())
    }

    /// Driver-side split-phase round trip: send a system parcel at `gid`
    /// with a fresh future continuation and block the *driver* thread
    /// (never a worker) on the reply. A dead peer resolves the future as
    /// `Err(PxError::Fault)` through the transport dead-letter path.
    fn sys_rpc(
        &self,
        gid: Gid,
        action: crate::action::ActionId,
        payload: Vec<u8>,
    ) -> PxResult<Value> {
        let own = self.inner.origin;
        let loc = self.inner.locality(own);
        let fut = loc.new_future_lco();
        let mut p = Parcel::new(
            gid,
            action,
            Value::from_bytes(payload),
            Continuation::set(fut),
        );
        p.src = own;
        self.inner.send_parcel(own, p);
        let lco = loc.get_lco(fut)?;
        let slot = Arc::new(ExtSlot::default());
        let acts = lco.lock().add_waiter(Waiter::External(slot.clone()));
        self.inner.schedule_activations(loc, acts);
        slot.wait()
    }

    /// Migrate a data object to `to`. In-process, the object is inserted
    /// at the destination before it is removed from the source (both
    /// stores briefly alias the same `Arc`), so a racing parcel never
    /// finds it nowhere; parcels routed on stale caches are forwarded
    /// (bounded chase) by the scheduler. Across ranks the same no-window
    /// ordering runs as a split-phase `__sys` protocol — install at dest,
    /// flip the home directory, then remove at source — driven by an
    /// `AGAS_MIGRATE` parcel that chases the object to its current
    /// resident rank. A peer dying mid-protocol resolves this call as
    /// `Err(PxError::Fault)` in bounded time; the object stays served at
    /// the source.
    pub fn migrate_data(&self, gid: Gid, to: LocalityId) -> PxResult<()> {
        if gid.kind() != GidKind::Data {
            return Err(PxError::NotMigratable(gid));
        }
        if to.0 as usize >= self.inner.localities.len() {
            return Err(PxError::NotMigratable(gid));
        }
        if self.inner.distributed() {
            let mut w = px_wire::WireWriter::new();
            w.put_u16(to.0);
            w.put_u8(0); // cause: manual
            self.sys_rpc(gid, sys::AGAS_MIGRATE, w.into_bytes())?;
            return Ok(());
        }
        let from = self.inner.agas.authoritative_owner(gid);
        if from == to {
            return Ok(());
        }
        crate::balance::migrate_object(
            &self.inner,
            gid,
            from,
            to,
            crate::agas::MigrationCause::Manual,
        )
    }

    // ---- names & processes -------------------------------------------------

    /// Bind a hierarchical symbolic name.
    pub fn register_name(&self, name: &str, gid: Gid) -> PxResult<()> {
        self.inner.agas.register_name(name, gid)
    }

    /// Resolve a symbolic name. Process-scoped names (`/proc/<gid>/...`)
    /// are cluster-visible: on a local miss in a multi-process system,
    /// the lookup is forwarded as a `__sys/name_lookup` RPC to the
    /// owning process's home rank (the rank that registered them), so a
    /// GID published under a process on one rank resolves from any
    /// other. A dead home rank or an unbound name resolves as
    /// `Err(PxError::Fault)` in bounded time rather than hanging.
    pub fn lookup_name(&self, name: &str) -> PxResult<Gid> {
        let local = self.inner.agas.lookup_name(name);
        let (Err(PxError::UnknownName(_)), true) = (&local, self.inner.distributed()) else {
            return local;
        };
        let Some(home) = process_name_home(name) else {
            return local;
        };
        if self.inner.owns(home) {
            return local;
        }
        let v = self.sys_rpc(
            Gid::locality_root(home),
            crate::sched::sys::NAME_LOOKUP,
            name.as_bytes().to_vec(),
        )?;
        match v.bytes().try_into() {
            Ok(raw) => Ok(Gid(u64::from_le_bytes(raw))),
            Err(_) => local,
        }
    }

    /// Create a (root) parallel process homed at `home`. Subprocesses are
    /// created through [`ProcessRef::create_subprocess`].
    pub fn create_process(&self, home: LocalityId) -> ProcessRef {
        crate::process::create_process(&self.inner, home, None)
    }

    /// Reap exited-and-unreferenced process records from the runtime
    /// table now (the sweep also runs automatically every 64 process
    /// creations). Returns how many records were removed; the total is
    /// reported as `StatsSnapshot::processes_reaped`. Done-futures
    /// survive the reap — waiting on one still resolves — and a late
    /// activity decrement against a reaped record is a tolerated no-op.
    pub fn reap_processes(&self) -> usize {
        crate::process::reap_processes(&self.inner)
    }

    /// Live records in the process table (diagnostics for the GC).
    pub fn process_table_size(&self) -> usize {
        self.inner.process_table.read().len()
    }
}

/// The home rank of a process-scoped name (`/proc/<gid-hex>/...`): the
/// embedded process gid's birthplace — the rank whose table holds every
/// name registered through that process. `None` for non-process names.
fn process_name_home(name: &str) -> Option<LocalityId> {
    let rest = name.strip_prefix("/proc/")?;
    let hex = rest.split('/').next()?;
    let raw = u64::from_str_radix(hex, 16).ok()?;
    Some(Gid(raw).birthplace())
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-activation context handed to every PX-thread.
///
/// All operations are split-phase: nothing here blocks. A thread needing a
/// value that is not yet available either *suspends* ([`Ctx::when_ready`] —
/// its continuation becomes a depleted-thread LCO waiter) or *terminates*
/// into a parcel ([`Ctx::send`] with a continuation).
pub struct Ctx<'a> {
    rt: &'a Arc<RuntimeInner>,
    loc: &'a Arc<Locality>,
    local: Option<&'a WorkerDeque<Task>>,
    pub(crate) process: Option<Gid>,
    pub(crate) trace: Option<u64>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        rt: &'a Arc<RuntimeInner>,
        loc: &'a Arc<Locality>,
        local: Option<&'a WorkerDeque<Task>>,
        process: Option<Gid>,
        trace: Option<u64>,
    ) -> Self {
        Ctx {
            rt,
            loc,
            local,
            process,
            trace,
        }
    }

    /// The trace id this thread runs under (`Some` when the parcel or
    /// spawn chain that caused it was traced). Inherited by everything
    /// this context sends or spawns.
    #[inline]
    pub fn trace_id(&self) -> Option<u64> {
        self.trace
    }

    /// This rank's merged trace dump (empty when tracing is off) — the
    /// same view as [`Runtime::trace_dump`], available from inside an
    /// action so a peer can fetch another rank's slice *in-band*: send an
    /// action that returns `ctx.trace_dump().filter(id).events` and merge
    /// the reply with the local dump.
    pub fn trace_dump(&self) -> crate::trace::TraceDump {
        self.rt.local_trace_dump()
    }

    /// The locality this thread serves (threads are ephemeral and serve a
    /// single locality, §2.2).
    #[inline]
    pub fn here(&self) -> LocalityId {
        self.loc.id
    }

    /// Number of localities in the system.
    #[inline]
    pub fn num_localities(&self) -> usize {
        self.rt.localities.len()
    }

    /// The current locality object (object store access).
    #[inline]
    pub fn locality(&self) -> &Arc<Locality> {
        self.loc
    }

    /// Crate-internal runtime access.
    #[inline]
    pub(crate) fn rt_inner(&self) -> &Arc<RuntimeInner> {
        self.rt
    }

    // ---- spawning ----------------------------------------------------------

    /// Spawn a PX-thread on this locality (LIFO on the local deque — the
    /// cache-friendly fast path). Inherits the current process.
    ///
    /// When the balancer is on and this locality is overloaded, every
    /// other spawn is diffused to the least-loaded gossip peer instead
    /// (the target is republished each balancer round by the balancer
    /// pulse; see the `balance` module).
    pub fn spawn(&mut self, f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) {
        if let Some(b) = &self.loc.balance {
            // Relaxed: advisory redirect hint republished every balancer
            // round; a stale read routes one spawn suboptimally.
            let t = b.spawn_target.load(std::sync::atomic::Ordering::Relaxed);
            // Closures do not serialize, so a redirect may only target a
            // locality in this OS process; the balancer publishes only
            // owned targets, but the hint is advisory and re-checked here.
            if t != crate::locality::NO_SPAWN_TARGET
                && self.rt.owns(LocalityId(t as u16))
                && b.spawn_seq
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    & 1
                    == 0
            {
                return self.spawn_at(LocalityId(t as u16), f);
            }
        }
        if self.process_spawn_rejected(self.here()) {
            return;
        }
        let task = Task::thread(f)
            .with_process(self.process)
            .with_trace(self.trace);
        if let Some(p) = self.process {
            self.rt.process_task_started(p, self.here());
        }
        match self.local {
            Some(deque) => {
                deque.push(task);
                self.loc.sleep.wake_one();
            }
            None => self.loc.push_task(task),
        }
    }

    /// Spawn a PX-thread at another locality (closure transfer paying
    /// wire latency; for data-bearing work prefer actions + parcels).
    /// Inherits the current process.
    pub fn spawn_at(&mut self, dest: LocalityId, f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) {
        if self.process_spawn_rejected(dest) {
            return;
        }
        let task = Task::thread(f)
            .with_process(self.process)
            .with_trace(self.trace);
        self.rt.send_task(self.here(), dest, task);
    }

    /// Cancellation gate for spawns inheriting the current process: when
    /// the process is cancelled the spawn is rejected loudly (counted at
    /// `dest`, reported to the dead-letter hook) and true is returned.
    /// One `Option` branch when no process is attached.
    fn process_spawn_rejected(&self, dest: LocalityId) -> bool {
        match self.process {
            None => false,
            Some(pg) => match self.rt.process_cancel_fault(pg) {
                None => false,
                Some(fault) => {
                    crate::stats::bump!(self.rt.locality(dest).counters.tasks_cancelled);
                    self.rt.notify_dead_letter(&fault);
                    true
                }
            },
        }
    }

    /// Record an LCO created by a process thread in the owning process so
    /// cancellation can poison it. No-op outside a process.
    fn own_lco(&self, gid: Gid) {
        const PRUNE_EVERY: usize = 1024;
        if let Some(pg) = self.process {
            let p = self.rt.process_table.read().get(&pg).cloned();
            if let Some(p) = p {
                match p.note_owned_lco(gid) {
                    None => {
                        // The process was cancelled concurrently — poison
                        // the fresh LCO now so its waiters cannot hang.
                        let fault = p.cancel_fault();
                        let loc = self.rt.locality(gid.birthplace());
                        let trace = self.trace;
                        let _ = crate::sched::lco_sys_op(self.rt, loc, gid, trace, move |l| {
                            Ok(l.poison(fault))
                        });
                    }
                    // Periodic compaction: drop entries whose LCO already
                    // fired (or left its store) so a long-lived process —
                    // the multi-tenant parent — tracks only LCOs a cancel
                    // could still affect, not every future it ever made.
                    Some(len) if len.is_multiple_of(PRUNE_EVERY) => {
                        p.prune_owned_lcos(|g| match self.rt.locality(g.birthplace()).get(*g) {
                            Some(crate::locality::Stored::Lco(l)) => {
                                let l = l.lock();
                                !l.is_ready() && !l.is_poisoned()
                            }
                            _ => false,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // ---- parcels -----------------------------------------------------------

    /// Send an action parcel: terminate-into-parcel style control
    /// migration (§2.2: work moves to the data).
    pub fn send<A: Action>(
        &mut self,
        target: Gid,
        args: A::Args,
        cont: Continuation,
    ) -> PxResult<()> {
        let mut p = Parcel::new(target, A::id(), Value::encode(&args)?, cont);
        p.process = self.process;
        p.trace = self.trace;
        self.rt.send_parcel(self.here(), p);
        Ok(())
    }

    /// Send an action and obtain a local future for its result.
    pub fn call<A: Action>(&mut self, target: Gid, args: A::Args) -> PxResult<FutureRef<A::Out>> {
        let fut = self.new_future::<A::Out>();
        self.send::<A>(target, args, Continuation::set(fut.gid()))?;
        Ok(fut)
    }

    /// Send a raw parcel (advanced; normal code uses [`Ctx::send`]).
    pub fn send_parcel(&mut self, mut p: Parcel) {
        p.process = p.process.or(self.process);
        p.trace = p.trace.or(self.trace);
        self.rt.send_parcel(self.here(), p);
    }

    // ---- LCO creation -------------------------------------------------------

    /// Create a local future. Inside a process, the future is
    /// process-owned: cancelling the process poisons it.
    pub fn new_future<T: Serialize + DeserializeOwned>(&mut self) -> FutureRef<T> {
        let gid = self.loc.new_future_lco();
        self.own_lco(gid);
        FutureRef::from_gid(gid)
    }

    /// Create a local and-gate over `n` events (process-owned inside a
    /// process, like [`Ctx::new_future`]).
    pub fn new_and_gate(&mut self, n: u64) -> Gid {
        let gid = self.loc.insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_and_gate(gid, n))))
        });
        self.own_lco(gid);
        gid
    }

    /// Create a local dataflow template with `n` slots (process-owned
    /// inside a process).
    pub fn new_dataflow(&mut self, n: usize, combine: CombineFn) -> Gid {
        let gid = self.loc.insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_dataflow(gid, n, combine))))
        });
        self.own_lco(gid);
        gid
    }

    /// Create a local reduction LCO (process-owned inside a process).
    pub fn new_reduce<T: Serialize + DeserializeOwned>(
        &mut self,
        n: u64,
        seed: &T,
        fold: ReduceFn,
    ) -> PxResult<FutureRef<T>> {
        let seed = Value::encode(seed)?;
        let gid = self.loc.insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_reduce(
                gid, n, seed, fold,
            ))))
        });
        self.own_lco(gid);
        Ok(FutureRef::from_gid(gid))
    }

    /// Create a local counting semaphore (process-owned inside a
    /// process).
    pub fn new_semaphore(&mut self, permits: u64) -> Gid {
        let gid = self.loc.insert(GidKind::Lco, |gid| {
            Stored::Lco(Arc::new(Mutex::new(LcoCore::new_semaphore(gid, permits))))
        });
        self.own_lco(gid);
        gid
    }

    // ---- LCO events ----------------------------------------------------------

    /// Trigger an LCO (anywhere) with a typed value.
    pub fn trigger<T: Serialize>(&mut self, gid: Gid, value: &T) -> PxResult<()> {
        let v = Value::encode(value)?;
        self.rt
            .lco_route_traced(self.loc, gid, sys::LCO_SET, v, self.trace);
        Ok(())
    }

    /// Trigger an LCO with an already-encoded value.
    pub fn trigger_value(&mut self, gid: Gid, value: Value) {
        self.rt
            .lco_route_traced(self.loc, gid, sys::LCO_SET, value, self.trace);
    }

    /// Fill a typed future.
    pub fn set_future<T: Serialize + DeserializeOwned>(
        &mut self,
        fut: FutureRef<T>,
        value: &T,
    ) -> PxResult<()> {
        self.trigger(fut.gid(), value)
    }

    /// Fill dataflow slot `idx` of an LCO (anywhere).
    pub fn set_slot<T: Serialize>(&mut self, gid: Gid, idx: u32, value: &T) -> PxResult<()> {
        let v = Value::encode(value)?;
        if gid.birthplace() == self.here() && self.loc.contains(gid) {
            crate::sched::lco_sys_op(self.rt, self.loc, gid, self.trace, |l| {
                l.trigger_slot(idx as usize, v.clone())
            })?;
        } else {
            let mut w = px_wire::WireWriter::with_capacity(4 + v.len());
            w.put_u32(idx);
            w.put_bytes(v.bytes());
            let mut p = Parcel::new(
                gid,
                sys::LCO_SET_SLOT,
                Value::from_bytes(w.into_bytes()),
                Continuation::none(),
            );
            p.trace = self.trace;
            self.rt.send_parcel(self.here(), p);
        }
        Ok(())
    }

    /// Contribute to a reduction LCO (anywhere).
    pub fn contribute<T: Serialize>(&mut self, gid: Gid, value: &T) -> PxResult<()> {
        let v = Value::encode(value)?;
        self.rt
            .lco_route_traced(self.loc, gid, sys::LCO_CONTRIBUTE, v, self.trace);
        Ok(())
    }

    // ---- suspension (depleted threads) ---------------------------------------

    /// Suspend on an LCO: deposit `f` as a depleted thread, resumed with
    /// the LCO's value. For a *remote* LCO a local proxy future is created
    /// and the remote value is pulled with a `__sys/lco_get` parcel — the
    /// thread itself still suspends locally (threads serve one locality).
    pub fn when_ready(&mut self, gid: Gid, f: impl FnOnce(&mut Ctx<'_>, Value) + Send + 'static) {
        if gid.birthplace() == self.here() && self.loc.contains(gid) {
            let lco = match self.loc.get_lco(gid) {
                Ok(l) => l,
                Err(_) => return,
            };
            if let Some(p) = self.process {
                // The suspended continuation is still process work. The
                // matching completion must be issued by the continuation
                // itself: when the LCO fires later, the generic waiter
                // scheduling path has no process context.
                self.rt.process_task_started(p, self.here());
                let proc = self.process;
                let trace = self.trace;
                let acts = lco.lock().add_waiter(Waiter::Depleted(Box::new(
                    move |ctx: &mut Ctx<'_>, v: Value| {
                        ctx.process = proc;
                        ctx.trace = trace.or(ctx.trace);
                        f(ctx, v);
                        if let Some(pg) = proc {
                            let rt = ctx.rt.clone();
                            rt.process_task_done(pg);
                        }
                    },
                )));
                self.rt
                    .schedule_activations_traced(self.loc, acts, self.trace);
            } else if let Some(trace) = self.trace {
                // The suspended continuation belongs to this trace even
                // though the eventual trigger may be untraced.
                let acts = lco.lock().add_waiter(Waiter::Depleted(Box::new(
                    move |ctx: &mut Ctx<'_>, v: Value| {
                        ctx.trace = Some(trace);
                        f(ctx, v);
                    },
                )));
                self.rt
                    .schedule_activations_traced(self.loc, acts, self.trace);
            } else {
                let acts = lco.lock().add_waiter(Waiter::Depleted(Box::new(f)));
                self.rt
                    .schedule_activations_traced(self.loc, acts, self.trace);
            }
        } else {
            let proxy = self.loc.new_future_lco();
            self.own_lco(proxy);
            let mut p = Parcel::new(gid, sys::LCO_GET, Value::unit(), Continuation::set(proxy));
            p.trace = self.trace;
            self.rt.send_parcel(self.here(), p);
            self.when_ready(proxy, f);
        }
    }

    /// Typed suspension on a future. The continuation runs only on
    /// success; a fault or a type mismatch silently drops it — use
    /// [`Ctx::when_resolved`] when the thread must observe failure.
    pub fn when_future<T, F>(&mut self, fut: FutureRef<T>, f: F)
    where
        T: Serialize + DeserializeOwned + 'static,
        F: FnOnce(&mut Ctx<'_>, T) + Send + 'static,
    {
        self.when_ready(fut.gid(), move |ctx, v| {
            if let Ok(t) = v.decode::<T>() {
                f(ctx, t);
            }
        });
    }

    /// Fault-aware typed suspension: the continuation always runs, with
    /// `Ok(value)` when the future fired or `Err(PxError::Fault)` when
    /// the parcel that was to fill it died (hop-cap, panic, unknown
    /// action, handler error). The split-phase counterpart of
    /// [`crate::lco::FutureRef::wait`]'s error return.
    pub fn when_resolved<T, F>(&mut self, fut: FutureRef<T>, f: F)
    where
        T: Serialize + DeserializeOwned + 'static,
        F: FnOnce(&mut Ctx<'_>, PxResult<T>) + Send + 'static,
    {
        self.when_ready(fut.gid(), move |ctx, v| f(ctx, v.decode::<T>()));
    }

    /// Acquire a semaphore LCO (anywhere); `f` runs when a permit is
    /// granted. Pair with [`Ctx::release`].
    ///
    /// If the semaphore is (or becomes) *poisoned*, `f` is dropped
    /// rather than run — releasing waiters into their critical sections
    /// without a permit would silently break the mutual exclusion the
    /// semaphore exists to provide — and the drop is reported to the
    /// dead-letter hook. Raw `LCO_ACQUIRE` parcels observe the fault
    /// through their continuations instead.
    pub fn acquire(&mut self, sem: Gid, f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) {
        fn run_or_report(
            ctx: &mut Ctx<'_>,
            sem: Gid,
            v: Value,
            f: impl FnOnce(&mut Ctx<'_>) + Send + 'static,
        ) {
            match v.fault() {
                None => f(ctx),
                Some(fault) => ctx.rt.notify_dead_letter(&Fault::new(
                    fault.cause,
                    fault.action,
                    sem,
                    format!("acquire continuation dropped at poisoned semaphore: {fault}"),
                )),
            }
        }
        if sem.birthplace() == self.here() && self.loc.contains(sem) {
            let lco = match self.loc.get_lco(sem) {
                Ok(l) => l,
                Err(_) => return,
            };
            let acts = lco
                .lock()
                .acquire(Waiter::Depleted(Box::new(move |ctx: &mut Ctx<'_>, v| {
                    run_or_report(ctx, sem, v, f)
                })))
                .unwrap_or_default();
            self.rt
                .schedule_activations_traced(self.loc, acts, self.trace);
        } else {
            let proxy = self.loc.new_future_lco();
            self.own_lco(proxy);
            let mut p = Parcel::new(
                sem,
                sys::LCO_ACQUIRE,
                Value::unit(),
                Continuation::set(proxy),
            );
            p.trace = self.trace;
            self.rt.send_parcel(self.here(), p);
            self.when_ready(proxy, move |ctx, v| run_or_report(ctx, sem, v, f));
        }
    }

    /// Release a semaphore LCO (anywhere).
    pub fn release(&mut self, sem: Gid) {
        if sem.birthplace() == self.here() && self.loc.contains(sem) {
            // Releasing a missing/poisoned semaphore has no observer to
            // tell; the release is simply lost (as before).
            let _ =
                crate::sched::lco_sys_op(self.rt, self.loc, sem, self.trace, |l| Ok(l.release()));
        } else {
            let mut p = Parcel::new(sem, sys::LCO_RELEASE, Value::unit(), Continuation::none());
            p.trace = self.trace;
            self.rt.send_parcel(self.here(), p);
        }
    }

    // ---- data objects ---------------------------------------------------------

    /// Create a local data object.
    pub fn new_data(&mut self, bytes: Vec<u8>) -> Gid {
        self.loc.insert(GidKind::Data, |_| {
            Stored::Data(Arc::new(RwLock::new(DataObject { bytes, version: 0 })))
        })
    }

    /// Read a *local* data object.
    pub fn read_local_data(&self, gid: Gid) -> PxResult<Vec<u8>> {
        let d = self.loc.get_data(gid)?;
        let g = d.read();
        Ok(g.bytes.clone())
    }

    /// Overwrite a *local* data object.
    pub fn write_local_data(&mut self, gid: Gid, bytes: Vec<u8>) -> PxResult<()> {
        let d = self.loc.get_data(gid)?;
        let mut g = d.write();
        g.bytes = bytes;
        g.version += 1;
        Ok(())
    }

    /// Fetch a possibly-remote data object into a local future
    /// (data-to-work movement; the comparison point for E6).
    pub fn fetch_data(&mut self, gid: Gid) -> FutureRef<Vec<u8>> {
        let fut = self.new_future::<Vec<u8>>();
        let mut p = Parcel::new(
            gid,
            sys::DATA_GET,
            Value::unit(),
            Continuation::set(fut.gid()),
        );
        p.trace = self.trace;
        self.rt.send_parcel(self.here(), p);
        fut
    }

    /// Overwrite a possibly-remote data object; the returned future fires
    /// (unit) when the write is applied.
    pub fn store_data(&mut self, gid: Gid, bytes: &[u8]) -> PxResult<FutureRef<()>> {
        let fut = self.new_future::<()>();
        let mut p = Parcel::new(
            gid,
            sys::DATA_PUT,
            Value::encode(&bytes)?,
            Continuation::set(fut.gid()),
        );
        p.trace = self.trace;
        self.rt.send_parcel(self.here(), p);
        Ok(fut)
    }

    // ---- names ------------------------------------------------------------------

    /// Bind a symbolic name.
    pub fn register_name(&mut self, name: &str, gid: Gid) -> PxResult<()> {
        self.rt.agas.register_name(name, gid)
    }

    /// Resolve a symbolic name.
    pub fn lookup_name(&self, name: &str) -> PxResult<Gid> {
        self.rt.agas.lookup_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(Config::small(0, 1).validate().is_err());
        assert!(Config::small(1, 0).validate().is_err());
        assert!(Config::small(2, 1)
            .with_accelerator(LocalityId(5))
            .validate()
            .is_err());
        assert!(Config::small(2, 1).validate().is_ok());
    }

    #[test]
    fn boot_and_shutdown() {
        let rt = RuntimeBuilder::new(Config::small(2, 2)).build().unwrap();
        assert_eq!(rt.num_localities(), 2);
        rt.shutdown();
        rt.shutdown(); // idempotent
    }

    #[test]
    fn metrics_off_is_empty_but_renders() {
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        rt.run_blocking(LocalityId(0), |_| {});
        assert_eq!(rt.local_metrics().total_count(), 0);
        let cluster = rt.cluster_metrics().unwrap();
        assert_eq!(cluster.per_rank.len(), 2);
        assert_eq!(cluster.merged.total_count(), 0);
        // The page still shows every instrument (all-zero blocks) and no
        // line is NaN.
        let text = rt.metrics_text();
        assert!(text.contains("px_queue_wait_ns_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("NaN"));
        rt.shutdown();
    }

    #[test]
    fn metrics_record_and_cluster_merge_in_proc() {
        let cfg = Config::small(2, 1).with_metrics(true);
        let rt = RuntimeBuilder::new(cfg).build().unwrap();
        for dest in [LocalityId(0), LocalityId(1)] {
            for _ in 0..8 {
                rt.run_blocking(dest, |_| {});
            }
        }
        let cluster = rt.cluster_metrics().unwrap();
        // Merged totals are exactly the per-rank sums, and quantiles are
        // monotone for every instrument that saw samples.
        let sum: u64 = cluster.per_rank.iter().map(|(_, s)| s.total_count()).sum();
        assert_eq!(cluster.merged.total_count(), sum);
        assert!(cluster.merged.total_count() > 0);
        for inst in crate::metrics::Instrument::ALL {
            let h = cluster.merged.get(inst);
            assert!(h.quantile(0.5) <= h.quantile(0.99));
            assert!(h.quantile(0.99) <= h.quantile(0.999));
        }
        // Queue wait is recorded for every executed task.
        assert!(
            cluster
                .merged
                .get(crate::metrics::Instrument::QueueWait)
                .count
                >= 16
        );
        let text = rt.metrics_text();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            // Every exposition line is `name{labels} value`.
            let (name, value) = line.split_once(' ').expect("line has a value");
            assert!(name.contains('{') && name.ends_with('}'), "{line}");
            assert!(value.parse::<f64>().unwrap().is_finite(), "{line}");
        }
        rt.shutdown();
    }

    #[test]
    fn future_set_and_wait() {
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let fut = rt.new_future::<u64>(LocalityId(1));
        rt.set_future(fut, &99).unwrap();
        assert_eq!(fut.wait(&rt).unwrap(), 99);
        rt.shutdown();
    }

    #[test]
    fn spawn_runs_on_destination() {
        let rt = RuntimeBuilder::new(Config::small(3, 1)).build().unwrap();
        let fut = rt.new_future::<u16>(LocalityId(0));
        let gid = fut.gid();
        rt.spawn_at(LocalityId(2), move |ctx| {
            let here = ctx.here().0;
            ctx.trigger(gid, &here).unwrap();
        });
        assert_eq!(fut.wait(&rt).unwrap(), 2);
        rt.shutdown();
    }

    #[test]
    fn run_blocking_returns_value() {
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let v = rt.run_blocking(LocalityId(1), |ctx| ctx.here().0 * 10);
        assert_eq!(v, 10);
        rt.shutdown();
    }

    #[test]
    fn batched_transport_delivers_everything() {
        let cfg = Config::small(2, 1)
            .with_latency(Duration::from_micros(200))
            .with_batching(crate::net::BatchPolicy {
                max_batch_parcels: 8,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_micros(100),
            });
        let rt = RuntimeBuilder::new(cfg).build().unwrap();
        // 20 triggers cross the wire to an and-gate at locality 1: two
        // full frames of 8 plus a timer-flushed straggler frame of 4.
        let gate = rt.new_and_gate(LocalityId(1), 20);
        for _ in 0..20 {
            rt.trigger(gate, &()).unwrap();
        }
        let fut: crate::lco::FutureRef<()> = crate::lco::FutureRef::from_gid(gate);
        rt.wait_future(fut).unwrap();
        let stats = rt.stats();
        let total = stats.total();
        assert_eq!(total.parcels_recv, 20, "every parcel executed");
        assert!(
            total.frames_recv >= 3 && total.frames_recv <= 20,
            "expected coalesced frames, got {}",
            total.frames_recv
        );
        assert!(
            total.coalesced_parcels > 0,
            "batching should have coalesced something"
        );
        rt.shutdown();
    }

    #[test]
    fn batch_builders_compose() {
        // A byte budget alone must actually engage batching…
        let c = Config::small(2, 1).with_max_batch_bytes(4096);
        assert!(c.batch.is_batching());
        assert_eq!(c.batch.max_batch_bytes, 4096);
        // …and later knob changes must not reset earlier ones.
        let c = c
            .with_max_batch_parcels(16)
            .with_flush_interval(Duration::from_micros(250));
        assert_eq!(c.batch.max_batch_parcels, 16);
        assert_eq!(c.batch.max_batch_bytes, 4096);
        assert_eq!(c.batch.flush_interval, Duration::from_micros(250));
        // Dropping back to 1 disables batching without touching the rest.
        let c = c.with_max_batch_parcels(1);
        assert!(!c.batch.is_batching());
        assert_eq!(c.batch.max_batch_bytes, 4096);
    }

    #[test]
    fn batch_config_validation() {
        let bad = Config::small(1, 1).with_batching(crate::net::BatchPolicy {
            max_batch_parcels: 4,
            max_batch_bytes: 0,
            flush_interval: Duration::from_micros(100),
        });
        assert!(bad.validate().is_err());
        let bad = Config::small(1, 1).with_batching(crate::net::BatchPolicy {
            max_batch_parcels: 4,
            max_batch_bytes: 1024,
            flush_interval: Duration::ZERO,
        });
        assert!(bad.validate().is_err());
        assert!(Config::small(1, 1)
            .with_max_batch_parcels(16)
            .validate()
            .is_ok());
    }

    #[test]
    fn wait_timeout_on_unset_future() {
        let rt = RuntimeBuilder::new(Config::small(1, 1)).build().unwrap();
        let fut = rt.new_future::<u8>(LocalityId(0));
        let r = rt
            .wait_future_timeout(fut, Duration::from_millis(20))
            .unwrap();
        assert!(r.is_none());
        rt.shutdown();
    }
}
