//! PX-thread scheduling: work queues, stealing, parcel execution, and
//! continuation application.
//!
//! §2.2: "A thread is ephemeral and serves a single locality … Threads can
//! suspend or terminate when a remote access is required. If suspending, a
//! local control object is created from its state. If terminating, a
//! parcel is constructed and dispatched to the destination remote data
//! where a new thread is invoked thus moving the work, in essence, to the
//! data." and "Message-driven computing through parcels allows physical
//! resources (execution locality) to operate via a work queue model."
//!
//! A [`Task`] is one PX-thread activation: a fresh closure, a resumed
//! depleted thread, or a parcel (decoded lazily on a worker). Workers pull
//! from, in priority order: the staging buffer (on percolation-priority
//! localities), their own deque, the locality injector, sibling deques
//! (work stealing — *within* the locality only; cross-locality balancing is
//! done with parcels, which is the model's point), and finally the staging
//! buffer.

use crate::action::{ActionId, Value};
use crate::error::{Fault, FaultCause, PxError};
use crate::gid::{Gid, LocalityId};
use crate::lco::{DepletedThread, LcoCore, Waiter};
use crate::locality::Locality;
use crate::parcel::{ContStep, Continuation, Parcel};
use crate::runtime::{Ctx, RuntimeInner};
use crate::stats::bump;
use crossbeam::deque::{Steal, Worker};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// System action identifiers. These dispatch inside the scheduler (no
/// registry lookup) and use raw payload framing; user actions must not
/// reuse these names.
pub mod sys {
    use crate::action::ActionId;

    /// Trigger an LCO with the payload value.
    pub const LCO_SET: ActionId = ActionId::of("__sys/lco_set");
    /// Fill a dataflow slot: payload = `u32` index ++ value bytes.
    pub const LCO_SET_SLOT: ActionId = ActionId::of("__sys/lco_set_slot");
    /// Contribute the payload to a reduction LCO.
    pub const LCO_CONTRIBUTE: ActionId = ActionId::of("__sys/lco_contribute");
    /// Register the parcel's continuation as a waiter for the LCO value.
    pub const LCO_GET: ActionId = ActionId::of("__sys/lco_get");
    /// Semaphore acquire; continuation runs when a permit is granted.
    pub const LCO_ACQUIRE: ActionId = ActionId::of("__sys/lco_acquire");
    /// Semaphore release.
    pub const LCO_RELEASE: ActionId = ActionId::of("__sys/lco_release");
    /// Read a data object; continuation receives `Vec<u8>`.
    pub const DATA_GET: ActionId = ActionId::of("__sys/data_get");
    /// Overwrite a data object; payload = encoded `Vec<u8>`.
    pub const DATA_PUT: ActionId = ActionId::of("__sys/data_put");
    /// Reply the payload to the continuation (round-trip measurements).
    pub const PING: ActionId = ActionId::of("__sys/ping");
    /// Do nothing (parcel-overhead measurements).
    pub const NOOP: ActionId = ActionId::of("__sys/noop");
    /// Echo-tree update (see [`crate::echo`]).
    pub const ECHO_UPDATE: ActionId = ActionId::of("__sys/echo_update");
    /// Echo-tree downward propagation.
    pub const ECHO_PROP: ActionId = ActionId::of("__sys/echo_prop");
    /// Echo split-phase validation request.
    pub const ECHO_VALIDATE: ActionId = ActionId::of("__sys/echo_validate");
    /// Balancer gossip: payload = encoded peer-load view (see
    /// [`px_balance::PeerView::encode_gossip`]); merged into the
    /// destination locality's view. Rides the ordinary (batched)
    /// transport like any other parcel.
    pub const BALANCE_GOSSIP: ActionId = ActionId::of("__sys/balance_gossip");
    /// Metrics pull: reply the locality's encoded
    /// [`crate::metrics::MetricsSnapshot`] to the continuation. Rides the
    /// control priority lane (like gossip) so a saturated rank still
    /// answers `Runtime::cluster_metrics` promptly.
    pub const METRICS_PULL: ActionId = ActionId::of("__sys/metrics_pull");
    /// Migrate the target data object: payload = `u16` destination
    /// locality ++ `u8` cause code (0 manual, 1 balancer). Addressed at
    /// the *object* (not a locality root) so the ordinary chase delivers
    /// it to the current resident rank; continuation receives unit on
    /// completion.
    pub const AGAS_MIGRATE: ActionId = ActionId::of("__sys/agas_migrate");
    /// Install a migrating object's bytes at the destination rank:
    /// payload = `u64` gid ++ `u64` version ++ length-prefixed bytes.
    /// Carries object payload, so it rides the *data* lane.
    pub const DIR_INSTALL: ActionId = ActionId::of("__sys/dir_install");
    /// Flip a GID's authoritative home-directory entry: payload =
    /// `u64` gid ++ `u16` owner ++ `u8` cause code. Control lane.
    pub const DIR_UPDATE: ActionId = ActionId::of("__sys/dir_update");
    /// Ask a GID's home rank for its authoritative owner: payload =
    /// `u64` gid; continuation receives the owner as 2 LE bytes.
    /// Control lane — lookups must outrun data-lane backpressure.
    pub const DIR_LOOKUP: ActionId = ActionId::of("__sys/dir_lookup");
    /// Advisory cache-repair hint for a rank that sent through a stale
    /// resolution: payload = `u64` gid ++ `u16` owner. Fire-and-forget,
    /// control lane.
    pub const DIR_REPAIR: ActionId = ActionId::of("__sys/dir_repair");
    /// Migration epilogue at the destination rank: payload = `u64` gid ++
    /// `u8` keep ++ `u16` owner. `keep = 1` (the source finished its
    /// remove) releases the install-time pin and drains parcels parked
    /// under it; `keep = 0` (the protocol failed mid-flight) additionally
    /// discards the provisionally installed copy and repoints the local
    /// directory at `owner` — the source, which never removed its copy.
    pub const DIR_COMMIT: ActionId = ActionId::of("__sys/dir_commit");
    /// Resolve a symbolic name in the receiving rank's table: payload =
    /// the UTF-8 name bytes; continuation receives the bound gid as
    /// 8 LE bytes, or a `HandlerError` fault when unbound. Routed to a
    /// process's home rank by [`crate::runtime::Runtime::lookup_name`],
    /// making `/proc/...` names cluster-visible. Control lane.
    pub const NAME_LOOKUP: ActionId = ActionId::of("__sys/name_lookup");

    /// Whether `a` rides the control priority lane (see the transport
    /// contract in `net/mod.rs`): balancer gossip, metrics pulls, and
    /// the small directory ops. [`DIR_INSTALL`] is excluded — it carries
    /// object bytes and belongs under data-lane backpressure.
    pub fn is_control(a: ActionId) -> bool {
        a == BALANCE_GOSSIP
            || a == METRICS_PULL
            || a == DIR_LOOKUP
            || a == DIR_UPDATE
            || a == DIR_REPAIR
            || a == DIR_COMMIT
            || a == NAME_LOOKUP
    }
}

/// Maximum forward hops before a parcel is declared dead (covers races
/// between migration and in-flight parcels; real losses are user bugs).
const MAX_HOPS: u8 = 16;

/// How long an idle worker sleeps before re-polling (bounds shutdown and
/// racy-push latency; explicit wakes make the common case prompt).
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

pub(crate) enum Work {
    /// Fresh PX-thread.
    Thread(Box<dyn FnOnce(&mut Ctx<'_>) + Send + 'static>),
    /// Resumption of a depleted thread with the LCO's value.
    Resume(DepletedThread, Value),
    /// Decoded parcel.
    Parcel(Parcel),
    /// Parcel as delivered by the wire; decoded on the worker.
    ParcelBytes(Vec<u8>),
    /// Multi-parcel frame from a coalescing port: one injector push per
    /// frame, each record decoded lazily as it executes.
    ParcelFrame(Vec<u8>),
}

/// A schedulable unit: one PX-thread activation.
pub struct Task {
    pub(crate) work: Work,
    /// Parallel process this activation is accounted to.
    pub(crate) process: Option<Gid>,
    /// Trace id this activation runs under (inherited by everything it
    /// sends or spawns; parcels carry their own id inside the bytes).
    pub(crate) trace: Option<u64>,
    /// Queue-entry stamp for the queue-wait instruments; set by the
    /// locality push hooks only when metrics are on (`None` otherwise —
    /// the stamp never crosses an OS-process boundary).
    pub(crate) enqueued: Option<Instant>,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.work {
            Work::Thread(_) => "Thread",
            Work::Resume(..) => "Resume",
            Work::Parcel(_) => "Parcel",
            Work::ParcelBytes(_) => "ParcelBytes",
            Work::ParcelFrame(_) => "ParcelFrame",
        };
        write!(f, "Task::{kind}")
    }
}

impl Task {
    /// Fresh PX-thread from a closure.
    pub(crate) fn thread(f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) -> Task {
        Task {
            work: Work::Thread(Box::new(f)),
            process: None,
            trace: None,
            enqueued: None,
        }
    }

    /// Depleted-thread resumption.
    pub(crate) fn resume(f: DepletedThread, v: Value) -> Task {
        Task {
            work: Work::Resume(f, v),
            process: None,
            trace: None,
            enqueued: None,
        }
    }

    /// Encoded parcel (from the wire).
    pub(crate) fn parcel_bytes(bytes: Vec<u8>) -> Task {
        Task {
            work: Work::ParcelBytes(bytes),
            process: None,
            trace: None,
            enqueued: None,
        }
    }

    /// Encoded multi-parcel frame (from a coalescing port).
    pub(crate) fn parcel_frame(bytes: Vec<u8>) -> Task {
        Task {
            work: Work::ParcelFrame(bytes),
            process: None,
            trace: None,
            enqueued: None,
        }
    }

    /// Number of parcel records this task carries (tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn parcel_records(&self) -> usize {
        match &self.work {
            Work::Parcel(_) | Work::ParcelBytes(_) => 1,
            Work::ParcelFrame(bytes) => px_wire::FrameView::parse(bytes)
                .map(|v| v.record_count() as usize)
                .unwrap_or(0),
            _ => 0,
        }
    }

    /// Raw frame bytes carried by this task, if it is a frame (tests).
    #[cfg(test)]
    pub(crate) fn frame_bytes(&self) -> Option<&[u8]> {
        match &self.work {
            Work::ParcelFrame(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// Decoded parcel (local short-circuit).
    pub(crate) fn parcel(p: Parcel) -> Task {
        Task {
            work: Work::Parcel(p),
            process: None,
            trace: None,
            enqueued: None,
        }
    }

    /// Attach process accounting.
    pub(crate) fn with_process(mut self, p: Option<Gid>) -> Task {
        self.process = p;
        self
    }

    /// Attach a trace id (inherited like the process tag).
    pub(crate) fn with_trace(mut self, t: Option<u64>) -> Task {
        self.trace = t;
        self
    }
}

/// Worker thread body. One per `(locality, worker index)`.
pub(crate) fn worker_main(
    rt: Arc<RuntimeInner>,
    loc_idx: usize,
    worker_idx: usize,
    local: Worker<Task>,
) {
    let loc = rt.localities[loc_idx].clone();
    let mut search_started = Instant::now();
    loop {
        match find_task(&loc, &local, worker_idx) {
            Some(task) => {
                let found = Instant::now();
                bump!(
                    loc.counters.idle_ns,
                    found.duration_since(search_started).as_nanos() as u64
                );
                execute(&rt, &loc, &local, task);
                let done = Instant::now();
                bump!(
                    loc.counters.busy_ns,
                    done.duration_since(found).as_nanos() as u64
                );
                search_started = done;
            }
            None => {
                if rt.shutdown.load(Ordering::Acquire) {
                    return;
                }
                bump!(loc.counters.parks);
                loc.sleep.park(PARK_TIMEOUT);
                // Flush idle incrementally so starved workers (no further
                // tasks before shutdown) still report their idle time.
                let now = Instant::now();
                bump!(
                    loc.counters.idle_ns,
                    now.duration_since(search_started).as_nanos() as u64
                );
                search_started = now;
            }
        }
    }
}

/// Pull the next task according to the locality's queue discipline.
fn find_task(loc: &Locality, local: &Worker<Task>, worker_idx: usize) -> Option<Task> {
    // Control plane first: balancer gossip must not starve behind the
    // data backlog it exists to measure. The queue exists only when
    // balancing is on, so the default discipline is untouched.
    if let Some(b) = &loc.balance {
        if let Steal::Success(t) = b.control.steal() {
            return Some(dequeued(loc, crate::metrics::Instrument::ControlLane, t));
        }
    }
    // Precious-resource localities drain prestaged work first (§2.2
    // percolation: the staged queue is what keeps the expensive unit busy).
    if loc.staged_priority {
        if let Steal::Success(t) = loc.staging.steal() {
            return Some(dequeued(loc, crate::metrics::Instrument::QueueWait, t));
        }
    }
    if let Some(t) = local.pop() {
        return Some(dequeued(loc, crate::metrics::Instrument::QueueWait, t));
    }
    // Injector: batch-steal amortizes queue contention.
    loop {
        match loc.injector.steal_batch_and_pop(local) {
            Steal::Success(t) => {
                return Some(dequeued(loc, crate::metrics::Instrument::QueueWait, t))
            }
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // Steal from siblings within the locality.
    let stealers = loc.stealers.read();
    let n = stealers.len();
    if n > 1 {
        // Start after our own index so victims rotate.
        for k in 1..n {
            let victim = (worker_idx + k) % n;
            loop {
                match stealers[victim].steal() {
                    Steal::Success(t) => {
                        bump!(loc.counters.steals);
                        return Some(dequeued(loc, crate::metrics::Instrument::QueueWait, t));
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
    }
    drop(stealers);
    // Staging last for ordinary localities.
    if !loc.staged_priority {
        if let Steal::Success(t) = loc.staging.steal() {
            return Some(dequeued(loc, crate::metrics::Instrument::QueueWait, t));
        }
    }
    None
}

/// Record a task's queue-wait sample at its dequeue site. The instrument
/// names the queue it actually waited in: the control lane gets its own
/// histogram, everything else is general queue wait. One `Option` check
/// when metrics are off (the stamp is `None` then, too).
#[inline]
fn dequeued(loc: &Locality, inst: crate::metrics::Instrument, mut t: Task) -> Task {
    loc.metric_elapsed(inst, t.enqueued.take());
    t
}

/// Execute one task on the current worker.
pub(crate) fn execute(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    local: &Worker<Task>,
    task: Task,
) {
    let process = task.process;
    let trace = task.trace;
    // Cancellation gate (one branch when no process is attached): queued
    // closure tasks of a cancelled process are dropped loudly here — the
    // accounting decrement still runs, draining the process's activity
    // counter. Only `Work::Thread` is gated: parcels fall through so
    // `run_parcel` can deliver the fault to their continuations, and
    // resumes always run because they ARE the fault-delivery path (a
    // poisoned LCO resumes its depleted waiters with the fault, and the
    // process accounting lives inside that closure — `Task::resume`
    // never carries a process tag).
    if let Some(pgid) = process {
        if matches!(task.work, Work::Thread(_)) {
            if let Some(fault) = rt.process_cancel_fault(pgid) {
                bump!(loc.counters.tasks_cancelled);
                rt.notify_dead_letter(&fault);
                rt.process_task_done(pgid);
                return;
            }
        }
    }
    match task.work {
        Work::Thread(f) => {
            let mut ctx = Ctx::new(rt, loc, Some(local), process, trace);
            // A closure thread has no continuation to notify; the panic
            // counter and dead-letter hook are its only observers.
            if let Err(msg) = run_guarded(loc, || f(&mut ctx)) {
                report_thread_panic(rt, loc, msg);
            }
            bump!(loc.counters.threads_executed);
        }
        Work::Resume(f, v) => {
            let mut ctx = Ctx::new(rt, loc, Some(local), process, trace);
            if let Err(msg) = run_guarded(loc, || f(&mut ctx, v)) {
                report_thread_panic(rt, loc, msg);
            }
            bump!(loc.counters.resumes);
            bump!(loc.counters.threads_executed);
        }
        Work::ParcelBytes(bytes) => run_wire_parcel(rt, loc, local, &bytes),
        Work::ParcelFrame(bytes) => {
            bump!(loc.counters.frames_recv);
            match px_wire::FrameView::parse(&bytes) {
                Ok(view) => {
                    let mut seen = 0u32;
                    for record in view.records() {
                        seen += 1;
                        match record {
                            Ok(rec) => run_wire_parcel(rt, loc, local, rec),
                            Err(e) => {
                                loc.counters.count_death(FaultCause::Decode, 1);
                                rt.notify_dead_letter(&Fault::new(
                                    FaultCause::Decode,
                                    ActionId(0),
                                    Gid::locality_root(loc.id),
                                    format!("corrupt frame record: {e}"),
                                ));
                            }
                        }
                    }
                    // A corrupt length prefix ends iteration early; the
                    // records it hid are lost with it — account every one
                    // (their process tags and continuations are unreadable,
                    // like any corrupt parcel's, so neither quiescence nor
                    // fault delivery can be repaired for them). The hook
                    // is notified once per lost record so its fault count
                    // stays a superset of `dead_parcels`.
                    let lost = view.record_count().saturating_sub(seen);
                    if lost > 0 {
                        loc.counters
                            .count_death(FaultCause::Decode, u64::from(lost));
                        let fault = Fault::new(
                            FaultCause::Decode,
                            ActionId(0),
                            Gid::locality_root(loc.id),
                            format!("record hidden behind a corrupt frame prefix ({lost} lost)"),
                        );
                        for _ in 0..lost {
                            rt.notify_dead_letter(&fault);
                        }
                    }
                }
                Err(e) => {
                    loc.counters.count_death(FaultCause::Decode, 1);
                    rt.notify_dead_letter(&Fault::new(
                        FaultCause::Decode,
                        ActionId(0),
                        Gid::locality_root(loc.id),
                        format!("corrupt frame: {e}"),
                    ));
                }
            }
        }
        Work::Parcel(p) => run_parcel(rt, loc, local, p),
    }
    if let Some(pgid) = process {
        rt.process_task_done(pgid);
    }
}

/// Decode and run one wire-delivered parcel record. Wire deliveries carry
/// the process tag inside the parcel (`Task::process` is `None`); the
/// completion is accounted here.
fn run_wire_parcel(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    local: &Worker<Task>,
    bytes: &[u8],
) {
    match Parcel::decode(bytes) {
        Ok(p) => {
            let proc_gid = p.process;
            run_parcel(rt, loc, local, p);
            // Mirror of the send-side gate in `route_parcel`: in a
            // distributed runtime every wire delivery crossed an
            // OS-process boundary, so no token was taken in *this*
            // process for it — decrementing would drain someone else's
            // counter to a premature quiescence.
            if let Some(pg) = proc_gid {
                if !rt.distributed() {
                    rt.process_task_done(pg);
                }
            }
        }
        Err(e) => {
            // An undecodable parcel cannot name its continuation, so the
            // fault cannot be delivered — count it and tell the hook.
            loc.counters.count_death(FaultCause::Decode, 1);
            rt.notify_dead_letter(&Fault::new(
                FaultCause::Decode,
                ActionId(0),
                Gid::locality_root(loc.id),
                format!("undecodable parcel: {e}"),
            ));
        }
    }
}

/// Panic isolation: a panicking PX-thread kills neither the worker nor the
/// runtime; it is counted and the thread's effects up to the panic stand.
/// The panic message is returned so parcel dispatch can convert it into a
/// fault for the parcel's continuation instead of a bare counter bump.
fn run_guarded<T>(loc: &Locality, f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            bump!(loc.counters.panics);
            let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "PX-thread panicked".to_string()
            };
            Err(msg)
        }
    }
}

/// Report a panicked closure thread (no parcel, no continuation) to the
/// dead-letter hook; the `panics` counter was bumped by `run_guarded`.
fn report_thread_panic(rt: &Arc<RuntimeInner>, loc: &Locality, msg: String) {
    rt.notify_dead_letter(&Fault::new(
        FaultCause::Panic,
        ActionId(0),
        Gid::locality_root(loc.id),
        msg,
    ));
}

/// Map a runtime error to the fault cause recorded in the by-cause stats.
fn cause_of(e: &PxError) -> FaultCause {
    match e {
        PxError::UnknownAction(_) => FaultCause::UnknownAction,
        PxError::Wire(_) => FaultCause::Decode,
        // A healthy parcel rejected by an already-poisoned LCO dies of
        // the *rejection* (a handler error), not of whatever killed the
        // LCO's producer — inheriting that cause would double-count it
        // in the by-cause stats. The original fault stays readable in
        // the error message.
        PxError::Fault(_) => FaultCause::HandlerError,
        _ => FaultCause::HandlerError,
    }
}

/// Kill a parcel *loudly*: count the death (total and by cause), tell the
/// dead-letter hook, and — the point of the whole exercise — deliver the
/// fault to the parcel's continuation so every downstream waiter (future,
/// LCO, external `wait()`) resolves with an error instead of hanging.
pub(crate) fn kill_parcel(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    p: Parcel,
    cause: FaultCause,
    message: String,
) {
    let fault = Fault::new(cause, p.action, p.dest, message);
    loc.counters.count_death(cause, 1);
    // Record the death before notifying, so a traced dead-letter hook's
    // captured slice includes this very event.
    loc.trace_event(
        p.trace,
        crate::trace::TraceEventKind::ParcelKill,
        p.dest.0,
        u64::from(cause.code()),
    );
    rt.notify_dead_letter_traced(&fault, p.trace);
    // Unconditional handoff: an empty continuation applies as a no-op,
    // and every other one resolves its waiters with the fault.
    apply_continuation(rt, loc, p.cont, Value::error(&fault), p.trace);
}

/// Execute a parcel: ownership check (with forwarding), then system or
/// registry dispatch, then continuation application.
fn run_parcel(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, local: &Worker<Task>, p: Parcel) {
    bump!(loc.counters.parcels_recv);
    loc.trace_event(
        p.trace,
        crate::trace::TraceEventKind::ParcelDispatch,
        p.dest.0,
        p.action.0,
    );
    if p.staged {
        bump!(loc.counters.staged_executed);
    }

    // Cancellation gate, kept to one branch when no process is attached:
    // an in-flight parcel accounted to a cancelled process is killed
    // loudly at dispatch — counted by cause, reported to the dead-letter
    // hook, and its fault delivered to the continuation.
    if let Some(pgid) = p.process {
        if rt.process_cancel_fault(pgid).is_some() {
            let msg = format!("owning process {pgid} cancelled");
            kill_parcel(rt, loc, p, FaultCause::Cancelled, msg);
            return;
        }
    }

    // Ownership check for object-addressed parcels. Hardware names (the
    // locality root, the staging buffer) are always "here" by construction:
    // the sender routed on the GID's locality field.
    if !p.dest.is_hardware() && !loc.contains(p.dest) {
        let owner = rt.agas.authoritative_owner(p.dest);
        if owner != loc.id {
            // Stale resolution at the sender: forward the parcel (chase)
            // and repair the sender's cache so the next one routes right.
            if p.hops >= MAX_HOPS {
                bump!(loc.counters.chase_cap_violations);
                let msg = format!("chase exhausted after {MAX_HOPS} hops (object at {owner})");
                kill_parcel(rt, loc, p, FaultCause::HopCap, msg);
                return;
            }
            bump!(loc.counters.parcels_forwarded);
            if rt.owns(p.src) {
                rt.agas.repair_cache(p.src, p.dest, owner);
            } else {
                // The sender lives in another OS process: its cache is not
                // writable from here, so ship the hint as a control-lane
                // parcel instead.
                send_dir_repair(rt, loc, p.src, p.dest, owner);
            }
            if !rt.owns(owner) {
                bump!(loc.counters.dir_forwards);
            }
            let mut fwd = p;
            fwd.hops += 1;
            loc.trace_event(
                fwd.trace,
                crate::trace::TraceEventKind::ParcelForward,
                fwd.dest.0,
                u64::from(fwd.hops),
            );
            rt.route_parcel(loc.id, owner, fwd);
            return;
        }
        // We are the authoritative owner but the object is absent: either
        // it is mid-migration (retry; the wire acts as backoff) or it was
        // freed (bounded by MAX_HOPS, then dead).
        retry_after_migration(rt, loc, p);
        return;
    }
    // Chase accounting: this parcel is home; record how far it wandered.
    if p.hops > 0 {
        bump!(loc.counters.chased_parcels);
        bump!(loc.counters.chase_hops_total, u64::from(p.hops));
    }

    // A fault payload short-circuits execution: the fault an upstream
    // death produced flows straight through Call-chained actions to this
    // parcel's continuation instead of being fed to a handler as
    // (garbage) arguments. The LCO event actions are the exception —
    // *delivering* the fault to them is how an LCO gets poisoned.
    let a = p.action;
    if p.payload.is_fault() && a != sys::LCO_SET && a != sys::LCO_CONTRIBUTE {
        apply_continuation(rt, loc, p.cont, p.payload, p.trace);
        return;
    }

    // System actions first: they bypass the registry and use raw payload
    // framing. The stamp is recorded only when a sys arm consumed the
    // parcel; user actions fall through to their own instrument.
    let sys_start = loc.metrics_now();
    let p = match try_run_sys(rt, loc, p) {
        None => {
            loc.metric_elapsed(crate::metrics::Instrument::ExecuteSys, sys_start);
            return;
        }
        Some(p) => p,
    };

    // User action via the registry.
    match rt.registry.get(a) {
        Ok(handler) => {
            let mut ctx = Ctx::new(rt, loc, Some(local), p.process, p.trace);
            let handler = handler.clone();
            let exec_start = loc.metrics_now();
            let result = run_guarded(loc, || handler(&mut ctx, p.dest, p.payload.bytes()));
            loc.metric_elapsed(crate::metrics::Instrument::ExecuteUser, exec_start);
            bump!(loc.counters.threads_executed);
            match result {
                Ok(Ok(v)) => apply_continuation(rt, loc, p.cont, v, p.trace),
                Ok(Err(e)) => {
                    let cause = cause_of(&e);
                    kill_parcel(rt, loc, p, cause, e.to_string());
                }
                Err(panic_msg) => kill_parcel(rt, loc, p, FaultCause::Panic, panic_msg),
            }
        }
        Err(PxError::UnknownAction(id)) => {
            let msg = format!("no handler registered for {id:?}");
            kill_parcel(rt, loc, p, FaultCause::UnknownAction, msg);
        }
        Err(_) => unreachable!("registry returns only UnknownAction"),
    }
}

/// Dispatch a system action (`__sys/*`), which bypasses the registry and
/// uses raw payload framing. Returns `None` when the parcel was consumed
/// here; gives the parcel back for registry dispatch otherwise.
fn try_run_sys(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) -> Option<Parcel> {
    let a = p.action;
    if a == sys::NOOP {
        // px-analyze: allow(no-silent-loss): a NOOP parcel carries no payload or continuation — being dropped after dispatch accounting is its entire contract.
        return None;
    } else if a == sys::PING {
        apply_continuation(rt, loc, p.cont, p.payload, p.trace);
        return None;
    } else if a == sys::LCO_SET {
        // The ack must be honest: a rejected trigger (double-trigger of a
        // single-assignment LCO, wrong kind, missing object) sends the
        // error back instead of a unit "success".
        match lco_sys_op(rt, loc, p.dest, p.trace, |l| l.trigger(p.payload.clone())) {
            Ok(()) => {
                record_lco_event(loc, p.trace, p.dest, &p.payload);
                apply_continuation(rt, loc, p.cont, Value::unit(), p.trace)
            }
            Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
        }
        return None;
    } else if a == sys::LCO_SET_SLOT {
        let bytes = p.payload.bytes();
        if bytes.len() >= 4 {
            let idx = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            let v = Value::from_bytes(bytes[4..].to_vec());
            match lco_sys_op(rt, loc, p.dest, p.trace, |l| l.trigger_slot(idx, v.clone())) {
                Ok(()) => {
                    record_lco_event(loc, p.trace, p.dest, &p.payload);
                    apply_continuation(rt, loc, p.cont, Value::unit(), p.trace)
                }
                Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
            }
        } else {
            kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "LCO_SET_SLOT payload shorter than the slot index".into(),
            );
        }
        return None;
    } else if a == sys::LCO_CONTRIBUTE {
        match lco_sys_op(rt, loc, p.dest, p.trace, |l| {
            l.contribute(p.payload.clone())
        }) {
            Ok(()) => record_lco_event(loc, p.trace, p.dest, &p.payload),
            Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
        }
        // px-analyze: allow(no-silent-loss): contributions are fire-and-forget by contract — the payload was delivered to the LCO (or the parcel killed) above; there is no ack continuation to resolve.
        return None;
    } else if a == sys::LCO_GET {
        if let Err(e) = lco_sys_op(rt, loc, p.dest, p.trace, |l| {
            Ok(l.add_waiter(Waiter::Cont(p.cont.clone())))
        }) {
            kill_parcel(rt, loc, p, cause_of(&e), e.to_string());
        }
        // px-analyze: allow(no-silent-loss): on success the continuation lives on as the LCO's registered waiter — a handoff, not a loss; on error the parcel was killed above.
        return None;
    } else if a == sys::LCO_ACQUIRE {
        if let Err(e) = lco_sys_op(rt, loc, p.dest, p.trace, |l| {
            l.acquire(Waiter::Cont(p.cont.clone()))
        }) {
            kill_parcel(rt, loc, p, cause_of(&e), e.to_string());
        }
        // px-analyze: allow(no-silent-loss): on success the continuation is queued as the semaphore's waiter (released or resumed later) — a handoff; on error the parcel was killed above.
        return None;
    } else if a == sys::LCO_RELEASE {
        match lco_sys_op(rt, loc, p.dest, p.trace, |l| Ok(l.release())) {
            Ok(()) => apply_continuation(rt, loc, p.cont, Value::unit(), p.trace),
            Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
        }
        return None;
    } else if a == sys::DATA_GET {
        match loc.get_data(p.dest) {
            Ok(d) => {
                let bytes = d.read().bytes.clone();
                let v = Value::encode(&bytes).expect("Vec<u8> encodes");
                apply_continuation(rt, loc, p.cont, v, p.trace);
            }
            // The object left between the residency check and the store
            // access (a migration's final remove interleaved): chase it
            // rather than stranding the continuation. Wrong-kind targets
            // are a user bug and fail fast — retrying cannot fix them.
            Err(PxError::NoSuchObject(_)) => retry_after_migration(rt, loc, p),
            Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
        }
        return None;
    } else if a == sys::DATA_PUT {
        match p.payload.decode::<Vec<u8>>() {
            Err(e) => {
                let msg = e.to_string();
                kill_parcel(rt, loc, p, FaultCause::Decode, msg);
            }
            Ok(bytes) => match loc.get_data(p.dest) {
                Ok(d) => {
                    let mut g = d.write();
                    // Write freeze, checked under the object's write lock:
                    // a cross-rank migration pins the GID *before* reading
                    // its snapshot, and that read blocks on this lock — so
                    // an unfrozen put seen here is ordered before the
                    // snapshot, never silently after it. A frozen put is
                    // parked and re-sent toward the new owner on drain.
                    if rt.distributed() && rt.agas.migration_in_flight(p.dest) {
                        drop(g);
                        let dest = p.dest;
                        if let Some(back) = rt.agas.defer_during_migration(dest, p) {
                            // The protocol settled between the two checks:
                            // chase the object to wherever it landed.
                            retry_after_migration(rt, loc, back);
                        }
                        // px-analyze: allow(no-silent-loss): the parked parcel lives in the migration-sync map — `end_migration` drains and re-sends it; a handoff, not a loss.
                        return None;
                    }
                    g.bytes = bytes;
                    g.version += 1;
                    drop(g);
                    apply_continuation(rt, loc, p.cont, Value::unit(), p.trace);
                }
                Err(PxError::NoSuchObject(_)) => retry_after_migration(rt, loc, p),
                Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
            },
        }
        return None;
    } else if a == sys::ECHO_UPDATE || a == sys::ECHO_PROP || a == sys::ECHO_VALIDATE {
        crate::echo::handle_sys(rt, loc, p);
        return None;
    } else if a == sys::BALANCE_GOSSIP {
        bump!(loc.counters.gossip_parcels);
        if let Some(b) = &loc.balance {
            match px_balance::decode_gossip(p.payload.bytes()) {
                Ok(entries) => b.peers.lock().merge(&entries),
                Err(e) => {
                    let msg = format!("undecodable gossip: {e}");
                    kill_parcel(rt, loc, p, FaultCause::Decode, msg);
                }
            }
        }
        // Without balance state (possible only if a user forges the
        // action name) the parcel is dropped by design: gossip is
        // advisory, carries no continuation, and was counted above.
        // px-analyze: allow(no-silent-loss): gossip is advisory control traffic with no continuation — on the decode path it merged or was killed above; the forged-action path drops a counted parcel by design.
        return None;
    } else if a == sys::METRICS_PULL {
        // Reply this locality's histograms to the continuation. A rank
        // with metrics off answers with empty histograms rather than
        // stalling the requester's merge gate.
        let snap = match &loc.metrics {
            Some(reg) => reg.snapshot(),
            None => crate::metrics::MetricsSnapshot::default(),
        };
        let v = Value::from_bytes(snap.encode());
        apply_continuation(rt, loc, p.cont, v, p.trace);
        return None;
    } else if a == sys::AGAS_MIGRATE {
        handle_agas_migrate(rt, loc, p);
        return None;
    } else if a == sys::DIR_INSTALL {
        handle_dir_install(rt, loc, p);
        return None;
    } else if a == sys::DIR_UPDATE {
        let mut r = px_wire::WireReader::new(p.payload.bytes());
        match (r.get_u64(), r.get_u16()) {
            (Ok(raw), Ok(owner)) => {
                let gid = Gid(raw);
                let owner = LocalityId(owner);
                rt.agas.note_owner(gid, owner);
                rt.agas.repair_cache(loc.id, gid, owner);
                bump!(loc.counters.dir_repairs);
                apply_continuation(rt, loc, p.cont, Value::unit(), p.trace);
            }
            _ => kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "undecodable dir_update payload".into(),
            ),
        }
        return None;
    } else if a == sys::DIR_LOOKUP {
        let mut r = px_wire::WireReader::new(p.payload.bytes());
        match r.get_u64() {
            Ok(raw) => {
                bump!(loc.counters.dir_lookups_local);
                let owner = rt.agas.authoritative_owner(Gid(raw));
                let v = Value::from_bytes(owner.0.to_le_bytes().to_vec());
                apply_continuation(rt, loc, p.cont, v, p.trace);
            }
            Err(_) => kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "undecodable dir_lookup payload".into(),
            ),
        }
        return None;
    } else if a == sys::DIR_REPAIR {
        let mut r = px_wire::WireReader::new(p.payload.bytes());
        if let (Ok(raw), Ok(owner)) = (r.get_u64(), r.get_u16()) {
            rt.agas.repair_cache(loc.id, Gid(raw), LocalityId(owner));
            bump!(loc.counters.dir_repairs);
        }
        // px-analyze: allow(no-silent-loss): repair hints are advisory fire-and-forget control traffic with no continuation — a lost or garbled hint only costs the sender another bounded chase.
        return None;
    } else if a == sys::DIR_COMMIT {
        let mut r = px_wire::WireReader::new(p.payload.bytes());
        match (r.get_u64(), r.get_u8(), r.get_u16()) {
            (Ok(raw), Ok(keep), Ok(owner)) => {
                let gid = Gid(raw);
                if keep == 0 {
                    // The migration failed after our provisional install:
                    // drop the orphan copy and point back at the source,
                    // which never removed its own.
                    loc.remove(gid);
                    rt.agas.note_owner(gid, LocalityId(owner));
                    rt.agas.repair_cache(loc.id, gid, LocalityId(owner));
                }
                if rt.agas.migration_in_flight(gid) {
                    for dp in rt.agas.end_migration(gid) {
                        rt.send_parcel(loc.id, dp);
                    }
                }
                apply_continuation(rt, loc, p.cont, Value::unit(), p.trace);
            }
            _ => kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "undecodable dir_commit payload".into(),
            ),
        }
        return None;
    } else if a == sys::NAME_LOOKUP {
        let resolved = std::str::from_utf8(p.payload.bytes())
            .map_err(|_| "non-UTF-8 name_lookup payload".to_string())
            .and_then(|name| {
                rt.agas
                    .lookup_name(name)
                    .map_err(|_| format!("name not bound at this rank: {name}"))
            });
        match resolved {
            Ok(gid) => {
                let v = Value::from_bytes(gid.0.to_le_bytes().to_vec());
                apply_continuation(rt, loc, p.cont, v, p.trace);
            }
            Err(why) => kill_parcel(rt, loc, p, FaultCause::HandlerError, why),
        }
        return None;
    }

    Some(p)
}

/// Ship a cache-repair hint to a remote rank whose stale resolution made
/// this rank forward a parcel: `__sys/dir_repair`, control lane,
/// fire-and-forget (a lost hint only costs another chase).
fn send_dir_repair(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    at: LocalityId,
    gid: Gid,
    owner: LocalityId,
) {
    let mut w = px_wire::WireWriter::new();
    w.put_u64(gid.0);
    w.put_u16(owner.0);
    let p = Parcel::new(
        Gid::locality_root(at),
        sys::DIR_REPAIR,
        Value::from_bytes(w.into_bytes()),
        Continuation::none(),
    );
    rt.send_parcel(loc.id, p);
}

/// Create a future LCO at `loc` and register a depleted-thread waiter:
/// `f` runs on a worker with the LCO's value once it fires (or with the
/// fault once it is poisoned — transport kills poison the LCO through the
/// dead parcel's continuation). This is the split-phase backbone of the
/// directory protocols: no worker thread ever blocks on a remote ack.
fn when_lco_ready(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    f: impl FnOnce(&mut Ctx<'_>, Value) + Send + 'static,
) -> Gid {
    let fut = loc.new_future_lco();
    let lco = loc.get_lco(fut).expect("future LCO just created");
    let acts = lco.lock().add_waiter(Waiter::Depleted(Box::new(f)));
    rt.schedule_activations(loc, acts);
    fut
}

/// `__sys/agas_migrate` at the object's current resident rank. Same-rank
/// destinations reduce to the in-process move; cross-rank destinations run
/// the split-phase protocol: pin the GID (write freeze) → snapshot bytes →
/// `DIR_INSTALL` at dest → `DIR_UPDATE` at the home rank → remove the
/// source copy → unpin and drain parked writes. No lock is held across any
/// RTT; each ack resumes as a depleted thread.
fn handle_agas_migrate(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) {
    let mut r = px_wire::WireReader::new(p.payload.bytes());
    let (to, cause) = match (r.get_u16(), r.get_u8()) {
        (Ok(t), Ok(c)) => (
            LocalityId(t),
            if c == 1 {
                crate::agas::MigrationCause::Balancer
            } else {
                crate::agas::MigrationCause::Manual
            },
        ),
        _ => {
            kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "undecodable agas_migrate payload".into(),
            );
            return;
        }
    };
    if to.0 as usize >= rt.localities.len() {
        let msg = format!("migrate destination {to} out of range");
        kill_parcel(rt, loc, p, FaultCause::HandlerError, msg);
        return;
    }
    let gid = p.dest;
    if to == loc.id {
        // Already here: the move is a no-op, ack immediately.
        apply_continuation(rt, loc, p.cont, Value::unit(), p.trace);
        return;
    }
    if rt.owns(to) {
        // Destination shares this OS process: the serialized in-process
        // move suffices (no RTT, so holding `migrate_lock` is fine).
        match crate::balance::migrate_object(rt, gid, loc.id, to, cause) {
            Ok(()) => apply_continuation(rt, loc, p.cont, Value::unit(), p.trace),
            Err(PxError::NoSuchObject(_)) => retry_after_migration(rt, loc, p),
            Err(e) => kill_parcel(rt, loc, p, cause_of(&e), e.to_string()),
        }
        return;
    }
    if !rt.agas.begin_migration(gid) {
        // Another migration of this object is mid-protocol: park the
        // request; the drain re-sends it once the store settles (it then
        // chases to wherever the object landed).
        if let Some(back) = rt.agas.defer_during_migration(gid, p) {
            // The race resolved before we could park: just retry.
            retry_after_migration(rt, loc, back);
        }
        return;
    }
    // Snapshot under the pin: parked DATA_PUTs can no longer change the
    // bytes, so the installed copy is the authoritative image.
    let (bytes, version) = match loc.get_data(gid) {
        Ok(d) => {
            let g = d.read();
            (g.bytes.clone(), g.version)
        }
        Err(PxError::NoSuchObject(_)) => {
            for dp in rt.agas.end_migration(gid) {
                rt.send_parcel(loc.id, dp);
            }
            retry_after_migration(rt, loc, p);
            return;
        }
        Err(e) => {
            for dp in rt.agas.end_migration(gid) {
                rt.send_parcel(loc.id, dp);
            }
            kill_parcel(rt, loc, p, cause_of(&e), e.to_string());
            return;
        }
    };
    let Parcel { cont, trace, .. } = p;
    let install_ack = when_lco_ready(rt, loc, move |ctx, v| {
        let rt = ctx.rt_inner().clone();
        let loc = ctx.locality().clone();
        if v.is_fault() {
            fail_cross_rank_migration(&rt, &loc, gid, to, cont, v, trace);
            return;
        }
        // The destination holds the object; flip the authoritative
        // home-directory entry before removing the source copy (the PR 2
        // no-window ordering: at every instant at least one rank serves
        // the GID).
        let home = gid.birthplace();
        if rt.owns(home) {
            finalize_cross_rank_migration(&rt, &loc, gid, to, cause, cont, trace);
            return;
        }
        let update_ack = when_lco_ready(&rt, &loc, move |ctx, v| {
            let rt = ctx.rt_inner().clone();
            let loc = ctx.locality().clone();
            if v.is_fault() {
                fail_cross_rank_migration(&rt, &loc, gid, to, cont, v, trace);
            } else {
                finalize_cross_rank_migration(&rt, &loc, gid, to, cause, cont, trace);
            }
        });
        let mut w = px_wire::WireWriter::new();
        w.put_u64(gid.0);
        w.put_u16(to.0);
        w.put_u8(u8::from(cause == crate::agas::MigrationCause::Balancer));
        let mut up = Parcel::new(
            Gid::locality_root(home),
            sys::DIR_UPDATE,
            Value::from_bytes(w.into_bytes()),
            Continuation::set(update_ack),
        );
        up.trace = trace;
        rt.send_parcel(loc.id, up);
    });
    let mut w = px_wire::WireWriter::new();
    w.put_u64(gid.0);
    w.put_u64(version);
    w.put_len_bytes(&bytes);
    let mut install = Parcel::new(
        Gid::locality_root(to),
        sys::DIR_INSTALL,
        Value::from_bytes(w.into_bytes()),
        Continuation::set(install_ack),
    );
    install.trace = trace;
    rt.send_parcel(loc.id, install);
}

/// A cross-rank migration step died (transport fault to the destination
/// or the home rank): unpin the GID, release parked writes, tell the
/// destination to discard any provisionally installed copy, and deliver
/// the fault to the original `migrate` continuation. The parked writes
/// re-resolve against the unchanged directory — the source copy was never
/// removed, so the object stays served.
fn fail_cross_rank_migration(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    gid: Gid,
    to: LocalityId,
    cont: Continuation,
    fault: Value,
    trace: Option<u64>,
) {
    for dp in rt.agas.end_migration(gid) {
        rt.send_parcel(loc.id, dp);
    }
    // Usually the destination is the dead peer and this dead-letters
    // quietly; when the *home* rank died instead, the discard unpins the
    // destination and removes its orphan copy.
    send_dir_commit(rt, loc, gid, to, 0, loc.id);
    apply_continuation(rt, loc, cont, fault, trace);
}

/// Fire the migration epilogue at the destination rank (see
/// [`sys::DIR_COMMIT`]). `keep = 1` releases the install-time pin;
/// `keep = 0` also discards the installed copy and repoints the
/// destination's directory at `owner`.
fn send_dir_commit(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    gid: Gid,
    to: LocalityId,
    keep: u8,
    owner: LocalityId,
) {
    let mut w = px_wire::WireWriter::new();
    w.put_u64(gid.0);
    w.put_u8(keep);
    w.put_u16(owner.0);
    let c = Parcel::new(
        Gid::locality_root(to),
        sys::DIR_COMMIT,
        Value::from_bytes(w.into_bytes()),
        Continuation::none(),
    );
    rt.send_parcel(loc.id, c);
}

/// Both remote acks landed: retire the source copy, repair the local
/// cache, unpin, release parked writes (they chase to the new owner), and
/// ack the migration.
fn finalize_cross_rank_migration(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    gid: Gid,
    to: LocalityId,
    cause: crate::agas::MigrationCause,
    cont: Continuation,
    trace: Option<u64>,
) {
    // Counted at the initiating rank only; the destination and home
    // ranks wrote their directories via `note_owner` (no tallies).
    rt.agas.record_migration_caused(gid, to, cause);
    loc.remove(gid);
    rt.agas.repair_cache(loc.id, gid, to);
    for dp in rt.agas.end_migration(gid) {
        rt.send_parcel(loc.id, dp);
    }
    // The source copy is gone: release the destination's install-time
    // pin so it drains parked writes and migration requests.
    send_dir_commit(rt, loc, gid, to, 1, to);
    loc.trace_event(
        trace,
        crate::trace::TraceEventKind::Migrate,
        gid.0,
        u64::from(to.0),
    );
    apply_continuation(rt, loc, cont, Value::unit(), trace);
}

/// `__sys/dir_install` at a migration's destination rank: decode the
/// object image, adopt it into the local store, and point the local
/// directory shard at ourselves before acking (a parcel arriving between
/// the ack and the home update must already find the object here).
fn handle_dir_install(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) {
    let mut r = px_wire::WireReader::new(p.payload.bytes());
    let decoded = match (r.get_u64(), r.get_u64(), r.get_len_bytes()) {
        (Ok(raw), Ok(version), Ok(bytes)) => (Gid(raw), version, bytes.to_vec()),
        _ => {
            kill_parcel(
                rt,
                loc,
                p,
                FaultCause::Decode,
                "undecodable dir_install payload".into(),
            );
            return;
        }
    };
    let (gid, version, bytes) = decoded;
    // Pin the GID *before* the copy becomes visible: until the source's
    // `DIR_COMMIT` arrives, this rank may serve reads from the installed
    // image but must park writes and — crucially — migration requests.
    // Without the pin, a second migration could start here while the
    // source is still finalizing the first, and the source's
    // remove-at-source would then delete the copy the second migration
    // just installed: the object would vanish with both directories
    // pointing at each other.
    rt.agas.begin_migration(gid);
    loc.insert_at(
        gid,
        crate::locality::Stored::Data(Arc::new(parking_lot::RwLock::new(
            crate::locality::DataObject { bytes, version },
        ))),
    );
    rt.agas.note_owner(gid, loc.id);
    rt.agas.repair_cache(loc.id, gid, loc.id);
    apply_continuation(rt, loc, p.cont, Value::unit(), p.trace);
}

/// Re-route a parcel whose target object is absent from the locality the
/// directory pointed at — mid-migration (including the final remove
/// interleaving with a check-then-get in a data handler). The directory
/// already knows the current owner, so this is the ordinary bounded
/// chase; a genuinely freed object exhausts the hop budget and dies.
fn retry_after_migration(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) {
    if p.hops >= MAX_HOPS {
        bump!(loc.counters.chase_cap_violations);
        let msg = format!("retry budget exhausted after {MAX_HOPS} hops (object absent — freed?)");
        kill_parcel(rt, loc, p, FaultCause::HopCap, msg);
        return;
    }
    let home = p.dest.birthplace();
    if rt.distributed() && !rt.owns(home) {
        // This rank's directory claims ownership but the object is gone —
        // our view is stale and only the home rank's entry is
        // authoritative. Ask it where the object went (control lane) and
        // re-route on the answer.
        bump!(loc.counters.dir_lookups_remote);
        remote_dir_lookup(rt, loc, p);
        return;
    }
    bump!(loc.counters.dir_lookups_local);
    let owner = rt.agas.authoritative_owner(p.dest);
    let mut retry = p;
    retry.hops += 1;
    loc.trace_event(
        retry.trace,
        crate::trace::TraceEventKind::Chase,
        retry.dest.0,
        u64::from(owner.0),
    );
    rt.route_parcel(loc.id, owner, retry);
}

/// Split-phase remote directory lookup: send `__sys/dir_lookup` to the
/// GID's home rank, park the stranded parcel on a future LCO, and re-route
/// it when the authoritative owner comes back. A dead home rank poisons
/// the future through the transport dead-letter path, which resolves the
/// parcel as a counted `Transport` fault in bounded time.
fn remote_dir_lookup(rt: &Arc<RuntimeInner>, loc: &Arc<Locality>, p: Parcel) {
    let home = p.dest.birthplace();
    let gid = p.dest;
    let trace = p.trace;
    let stamp = loc.metrics_now();
    let mut retry = p;
    retry.hops += 1;
    loc.trace_event(
        trace,
        crate::trace::TraceEventKind::Chase,
        gid.0,
        u64::from(home.0),
    );
    let ack = when_lco_ready(rt, loc, move |ctx, v| {
        let rt = ctx.rt_inner().clone();
        let loc = ctx.locality().clone();
        loc.metric_elapsed(crate::metrics::Instrument::DirLookup, stamp);
        if v.is_fault() {
            let msg = format!("directory home {home} unreachable");
            kill_parcel(&rt, &loc, retry, FaultCause::Transport, msg);
            return;
        }
        let raw: [u8; 2] = match v.bytes().try_into() {
            Ok(r) => r,
            Err(_) => {
                kill_parcel(
                    &rt,
                    &loc,
                    retry,
                    FaultCause::Decode,
                    "short dir_lookup reply".into(),
                );
                return;
            }
        };
        let owner = LocalityId(u16::from_le_bytes(raw));
        rt.agas.repair_cache(loc.id, gid, owner);
        bump!(loc.counters.dir_repairs);
        rt.route_parcel(loc.id, owner, retry);
    });
    let mut w = px_wire::WireWriter::new();
    w.put_u64(gid.0);
    let mut lk = Parcel::new(
        Gid::locality_root(home),
        sys::DIR_LOOKUP,
        Value::from_bytes(w.into_bytes()),
        Continuation::set(ack),
    );
    lk.trace = trace;
    rt.send_parcel(loc.id, lk);
}

/// Record the trace event for a *successful* LCO trigger/contribute: a
/// fault value poisons the object, anything else triggers it. One branch
/// when the parcel is untraced.
fn record_lco_event(loc: &Locality, trace: Option<u64>, gid: Gid, payload: &Value) {
    if trace.is_some() {
        let (kind, aux) = match payload.fault() {
            Some(f) => (
                crate::trace::TraceEventKind::LcoPoison,
                u64::from(f.cause.code()),
            ),
            None => (crate::trace::TraceEventKind::LcoTrigger, 0),
        };
        loc.trace_event(trace, kind, gid.0, aux);
    }
}

/// Run an LCO operation on a local object and schedule any released
/// waiters. The closure runs under the object lock and must not call back
/// into the runtime; activations run after unlock, inheriting `trace` —
/// the causality of a released waiter flows from the event that released
/// it. Errors (missing object, wrong kind, protocol violations like
/// double-trigger) are returned so the caller can deliver them — a
/// parcel-driven caller kills the parcel with the error, an API-driven
/// caller returns it.
pub(crate) fn lco_sys_op(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    gid: Gid,
    trace: Option<u64>,
    op: impl FnOnce(&mut LcoCore) -> crate::error::PxResult<crate::lco::Activations>,
) -> crate::error::PxResult<()> {
    bump!(loc.counters.lco_events);
    let lco = loc.get_lco(gid)?;
    let (acts, resolved) = {
        let mut g = lco.lock();
        let r = op(&mut g);
        // Harvest the creation stamp exactly once, at the event that
        // resolved the LCO (fire or poison) — the spawn→resolution
        // latency, on this locality's clock.
        (r, g.take_resolve_latency())
    };
    if let (Some(reg), Some(d)) = (&loc.metrics, resolved) {
        reg.record_elapsed(crate::metrics::Instrument::SpawnResolve, d);
    }
    let acts = acts?;
    if !acts.is_empty() {
        loc.trace_event(
            trace,
            crate::trace::TraceEventKind::LcoRelease,
            gid.0,
            acts.len() as u64,
        );
    }
    rt.schedule_activations_traced(loc, acts, trace);
    Ok(())
}

/// Apply a continuation specifier with the result value. Local LCO steps
/// run immediately; remote steps and calls become parcels. The causing
/// parcel's trace id rides along every step.
pub(crate) fn apply_continuation(
    rt: &Arc<RuntimeInner>,
    loc: &Arc<Locality>,
    cont: Continuation,
    value: Value,
    trace: Option<u64>,
) {
    for step in cont.steps {
        match step {
            ContStep::SetLco(g) => rt.lco_route_traced(loc, g, sys::LCO_SET, value.clone(), trace),
            ContStep::Contribute(g) => {
                rt.lco_route_traced(loc, g, sys::LCO_CONTRIBUTE, value.clone(), trace)
            }
            ContStep::Call { action, target } => {
                let mut p = Parcel::new(target, action, value.clone(), Continuation::none());
                p.trace = trace;
                rt.send_parcel(loc.id, p);
            }
        }
    }
}

impl RuntimeInner {
    /// Route an LCO event: local objects are handled in place, remote ones
    /// become system parcels (carrying `trace`, so the chain survives the
    /// hop).
    pub(crate) fn lco_route_traced(
        self: &Arc<Self>,
        from: &Arc<Locality>,
        gid: Gid,
        action: ActionId,
        value: Value,
        trace: Option<u64>,
    ) {
        let owner = self.agas.resolve_counted(from, gid);
        if owner == from.id && from.contains(gid) {
            let op_action = action;
            let r = lco_sys_op(self, from, gid, trace, |l| {
                if op_action == sys::LCO_SET {
                    l.trigger(value.clone())
                } else {
                    l.contribute(value.clone())
                }
            });
            match r {
                Ok(()) => record_lco_event(from, trace, gid, &value),
                Err(e) => {
                    // Local LCO event with no parcel continuation to notify:
                    // the error dead-ends here. Count it like the parcel path
                    // would and let the dead-letter hook see it.
                    let fault = Fault::new(cause_of(&e), action, gid, e.to_string());
                    from.counters.count_death(fault.cause, 1);
                    from.trace_event(
                        trace,
                        crate::trace::TraceEventKind::ParcelKill,
                        gid.0,
                        u64::from(fault.cause.code()),
                    );
                    self.notify_dead_letter_traced(&fault, trace);
                }
            }
        } else {
            let mut p = Parcel::new(gid, action, value, Continuation::none());
            p.trace = trace;
            self.send_parcel(from.id, p);
        }
    }

    /// Schedule LCO waiter activations at `loc` (the LCO's locality).
    /// Untraced convenience wrapper.
    pub(crate) fn schedule_activations(
        self: &Arc<Self>,
        loc: &Arc<Locality>,
        acts: crate::lco::Activations,
    ) {
        self.schedule_activations_traced(loc, acts, None);
    }

    /// Schedule activations under the trace of the releasing event:
    /// resumed depleted threads and fired continuations inherit it.
    pub(crate) fn schedule_activations_traced(
        self: &Arc<Self>,
        loc: &Arc<Locality>,
        acts: crate::lco::Activations,
        trace: Option<u64>,
    ) {
        for (w, v) in acts {
            match w {
                Waiter::Depleted(f) => loc.push_task(Task::resume(f, v).with_trace(trace)),
                Waiter::Cont(c) => apply_continuation(self, loc, c, v, trace),
                Waiter::External(slot) => slot.fill(v),
            }
        }
    }

    /// Send a parcel from `from`, resolving the destination and paying the
    /// wire cost when it crosses localities.
    pub(crate) fn send_parcel(self: &Arc<Self>, from: LocalityId, p: Parcel) {
        let from_loc = &self.localities[from.0 as usize];
        let mut p = p;
        // Trace sampler: an untraced parcel entering the send path is a
        // root; one in `sample_every` gets a fresh id here. One `Option`
        // branch when tracing is off.
        if p.trace.is_none() {
            if let Some(ts) = &self.trace {
                p.trace = ts.maybe_sample();
            }
        }
        let owner = self.agas.resolve_counted(from_loc, p.dest);
        // Balancer heat hook: remember that we keep addressing this
        // remote object, so the balancer can pull it toward us (heat is
        // drained every gossip round; see `crate::balance`). Gated on
        // `track_heat` so the default send path — and any policy that
        // never migrates — skips the lock entirely.
        if self.track_heat && owner != from && p.dest.kind() == crate::gid::GidKind::Data {
            self.agas.note_access(from, p.dest);
        }
        from_loc.trace_event(
            p.trace,
            crate::trace::TraceEventKind::ParcelSend,
            p.dest.0,
            u64::from(owner.0),
        );
        p.src = from;
        self.route_parcel(from, owner, p);
    }

    /// Route a parcel to a known owner locality.
    // px-analyze: allow(no-silent-loss): the tail path hands the parcel to `Wire::send_parcel`, which encodes it onto the wire — the local copy is spent, not lost.
    pub(crate) fn route_parcel(self: &Arc<Self>, from: LocalityId, owner: LocalityId, p: Parcel) {
        let from_loc = &self.localities[from.0 as usize];
        bump!(from_loc.counters.parcels_sent);
        if owner == from {
            // Same locality: no wire, no encoding; direct enqueue.
            bump!(from_loc.counters.bytes_sent, 0);
            let staged = p.staged;
            let process = p.process;
            let task = Task::parcel(p).with_process(process);
            if let Some(pg) = process {
                self.process_task_started(pg, owner);
            }
            if staged {
                from_loc.push_staged(task);
            } else {
                from_loc.push_task(task);
            }
            return;
        }
        // Process activity tokens never cross an OS-process boundary:
        // the increment here and the decrement at the receiver must land
        // in the *same* table, or a cross-rank parcel leaks a token and
        // `ProcessRef::wait` hangs forever. In a distributed runtime a
        // parcel bound for another rank therefore carries its pid for
        // cancellation context only; quiescence meters in-process work
        // (see the README's "Distributed deployment").
        if let Some(pg) = p.process {
            if self.owns(owner) {
                self.process_task_started(pg, owner);
            }
        }
        // Control traffic (balancer gossip, metrics pulls, directory
        // lookups/updates/repairs) bypasses the coalescing ports and
        // lands in the destination's control queue: it must outrun the
        // very backlog it reports on or repairs, and may not be dropped
        // or delayed under data-lane backpressure.
        if sys::is_control(p.action) {
            let bytes = p.encode();
            let n = bytes.len();
            self.wire
                .send(crate::net::WireMsg::Control { dest: owner, bytes }, n);
            bump!(from_loc.counters.bytes_sent, n as u64);
            // px-analyze: allow(no-silent-loss): the encoded control-lane frame is already on the wire (accounted above) — the in-memory parcel is spent, not lost.
            return;
        }
        // Parcel-borne process accounting: the receiving worker decrements
        // via the decoded parcel's process field. The wire either ships
        // the parcel alone or coalesces it into the destination's port
        // frame (see `net::BatchPolicy`); either way it reports the
        // encoded size for accounting.
        let n = self.wire.send_parcel(owner, &p);
        bump!(from_loc.counters.bytes_sent, n as u64);
    }

    /// Transfer a closure task to another locality (convenience spawn; see
    /// module docs — pays wire latency with a nominal 64-byte size).
    pub(crate) fn send_task(self: &Arc<Self>, from: LocalityId, dest: LocalityId, task: Task) {
        let from_loc = &self.localities[from.0 as usize];
        // Closures cannot cross an OS-process boundary (they do not
        // serialize). Die loudly here — before any queue push — so a
        // `spawn_at` to a remote rank is a counted, reported failure
        // instead of a task rotting on an unowned stub's queue.
        if !self.owns(dest) {
            let own = self.locality(self.origin);
            own.counters
                .count_death(crate::error::FaultCause::Transport, 1);
            self.notify_dead_letter(&Fault::new(
                crate::error::FaultCause::Transport,
                ActionId(0),
                Gid::locality_root(dest),
                "closure task cannot cross an OS-process boundary; use action parcels",
            ));
            return;
        }
        if let Some(pg) = task.process {
            self.process_task_started(pg, dest);
        }
        if dest == from {
            from_loc.push_task(task);
            return;
        }
        bump!(from_loc.counters.parcels_sent);
        bump!(from_loc.counters.bytes_sent, 64);
        self.wire.send(crate::net::WireMsg::Task { dest, task }, 64);
    }
}

// Parcels executed from `Work::Parcel`/`Work::ParcelBytes` carry their
// process tag inside the parcel; `execute` sees it via `Task::process` for
// local short-circuits, but wire deliveries decode late. Account those
// here: when a parcel with a process tag is decoded and run, the matching
// decrement is issued by `execute` only if `Task::process` was set, so
// `run_parcel` handles the wire case itself.
impl RuntimeInner {
    /// Account one dispatched activation at locality `at` (which is also
    /// recorded in the process's touched-locality bitmap — the broadcast
    /// fan-out set).
    pub(crate) fn process_task_started(&self, gid: Gid, at: LocalityId) {
        if let Some(p) = self.process_table.read().get(&gid) {
            p.note_touched(at);
            p.task_started();
        }
    }

    /// The cancellation fault of process `gid`, if it has been cancelled.
    pub(crate) fn process_cancel_fault(&self, gid: Gid) -> Option<crate::error::Fault> {
        let table = self.process_table.read();
        table
            .get(&gid)
            .filter(|p| p.is_cancelled())
            .map(|p| p.cancel_fault())
    }

    pub(crate) fn process_task_done(self: &Arc<Self>, gid: Gid) {
        let p = self.process_table.read().get(&gid).cloned();
        if let Some(p) = p {
            p.task_done(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_ids_distinct() {
        let ids = [
            sys::LCO_SET,
            sys::LCO_SET_SLOT,
            sys::LCO_CONTRIBUTE,
            sys::LCO_GET,
            sys::LCO_ACQUIRE,
            sys::LCO_RELEASE,
            sys::DATA_GET,
            sys::DATA_PUT,
            sys::PING,
            sys::NOOP,
            sys::ECHO_UPDATE,
            sys::ECHO_PROP,
            sys::ECHO_VALIDATE,
            sys::BALANCE_GOSSIP,
            sys::METRICS_PULL,
            sys::AGAS_MIGRATE,
            sys::DIR_INSTALL,
            sys::DIR_UPDATE,
            sys::DIR_LOOKUP,
            sys::DIR_REPAIR,
            sys::DIR_COMMIT,
            sys::NAME_LOOKUP,
        ];
        let set: std::collections::HashSet<u64> = ids.iter().map(|i| i.0).collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn corrupt_frame_counts_every_lost_record() {
        use crate::parcel::{Continuation, Parcel};
        use crate::runtime::{Config, RuntimeBuilder};
        let rt = RuntimeBuilder::new(Config::small(1, 1)).build().unwrap();
        let p = Parcel::new(
            crate::gid::Gid::locality_root(crate::gid::LocalityId(0)),
            sys::NOOP,
            Value::unit(),
            Continuation::none(),
        );
        let record = p.encode();
        let mut frame = px_wire::FrameBuf::new();
        for _ in 0..5 {
            frame.push_record(&record);
        }
        let mut bytes = frame.take();
        // Cut into record 3: records 1–2 execute, record 3 is corrupt,
        // records 4–5 are hidden behind it — all three must be counted.
        bytes.truncate(
            px_wire::FRAME_HEADER_LEN + 2 * (px_wire::RECORD_HEADER_LEN + record.len()) + 2,
        );
        let loc = rt.inner().localities[0].clone();
        loc.push_task(Task::parcel_frame(bytes));
        let t0 = Instant::now();
        loop {
            let dead = loc.counters.dead_parcels.load(Ordering::Relaxed);
            let recv = loc.counters.parcels_recv.load(Ordering::Relaxed);
            if dead == 3 && recv == 2 {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "counters never settled: dead={dead} recv={recv}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        rt.shutdown();
    }

    #[test]
    fn task_debug_names() {
        assert_eq!(format!("{:?}", Task::thread(|_| {})), "Task::Thread");
        assert_eq!(
            format!("{:?}", Task::parcel_bytes(vec![])),
            "Task::ParcelBytes"
        );
    }
}
