//! The wire layer: inter-locality transport with injectable latency and
//! bandwidth.
//!
//! The real ParalleX target is a machine whose localities are separated by
//! hundreds-to-thousands of cycles of interconnect (§2.1 "latency … to
//! access remote data or services"). On one host we *inject* that latency:
//! every cross-locality message is routed through a [`DelayLine`] thread
//! that holds it until `now + latency + bytes·per_byte` before delivering
//! it to the destination locality's run queue.
//!
//! With a zero latency model the wire is bypassed entirely (direct push),
//! which is the "same box" configuration used by unit tests.
//!
//! [`DelayLine`] is public so the CSP/BSP baseline runtime
//! (`px-baseline`) can route its messages through the *identical*
//! mechanism — the experiments then compare execution models, not
//! transport implementations.
//!
//! Messages are either encoded parcels (the normal case — they pay the
//! serialization cost honestly) or boxed tasks (closure transfers used by
//! `spawn_at`, which model the in-memory handoff of a depleted thread and
//! are accounted with a nominal header size).

use crate::gid::LocalityId;
use crate::locality::Locality;
use crate::sched::Task;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireModel {
    /// Fixed one-way latency added to every cross-locality message.
    pub latency: Duration,
    /// Serialization cost in nanoseconds per payload byte (0 = infinite
    /// bandwidth).
    pub ns_per_byte: u64,
}

impl WireModel {
    /// Zero-cost wire (direct delivery, no thread).
    pub fn instant() -> Self {
        WireModel {
            latency: Duration::ZERO,
            ns_per_byte: 0,
        }
    }

    /// Fixed latency, infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        WireModel {
            latency,
            ns_per_byte: 0,
        }
    }

    /// True if messages can skip the delay line.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.ns_per_byte == 0
    }

    /// Delay for a message of `bytes`.
    #[inline]
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_nanos(self.ns_per_byte * bytes as u64)
    }
}

struct Pending<T> {
    at: Instant,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap by (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A generic software delay line: messages submitted with a byte size are
/// delivered to the sink after `model.delay_for(bytes)`.
///
/// With an instant model the sink is invoked inline by the sender and no
/// thread is spawned. On shutdown (or drop) pending messages are flushed
/// after their remaining delay, then the thread exits.
pub struct DelayLine<T: Send + 'static> {
    model: WireModel,
    tx: Option<Sender<Pending<T>>>,
    handle: Option<JoinHandle<()>>,
    sink: Arc<dyn Fn(T) + Send + Sync + 'static>,
}

impl<T: Send + 'static> std::fmt::Debug for DelayLine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayLine")
            .field("model", &self.model)
            .finish()
    }
}

impl<T: Send + 'static> DelayLine<T> {
    /// Build a delay line delivering into `sink`.
    pub fn new(model: WireModel, sink: Arc<dyn Fn(T) + Send + Sync + 'static>) -> DelayLine<T> {
        if model.is_instant() {
            return DelayLine {
                model,
                tx: None,
                handle: None,
                sink,
            };
        }
        let (tx, rx) = bounded::<Pending<T>>(65536);
        let thread_sink = sink.clone();
        let handle = std::thread::Builder::new()
            .name("px-delay-line".into())
            .spawn(move || delay_loop(rx, thread_sink))
            .expect("spawn delay-line thread");
        DelayLine {
            model,
            tx: Some(tx),
            handle: Some(handle),
            sink,
        }
    }

    /// Submit a message of logical size `bytes`.
    pub fn send(&self, msg: T, bytes: usize) {
        match &self.tx {
            None => (self.sink)(msg),
            Some(tx) => {
                let at = Instant::now() + self.model.delay_for(bytes);
                // seq is assigned by the delay thread; simultaneous
                // messages are unordered by design (like a real network).
                if tx.send(Pending { at, seq: 0, msg }).is_err() {
                    // Delay line already shut down (runtime teardown).
                }
            }
        }
    }

    /// The active model.
    pub fn model(&self) -> WireModel {
        self.model
    }

    /// Stop the thread, flushing pending messages first.
    pub fn shutdown(&mut self) {
        self.tx = None; // closing the channel stops the thread
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for DelayLine<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn delay_loop<T: Send>(rx: Receiver<Pending<T>>, sink: Arc<dyn Fn(T) + Send + Sync>) {
    let mut heap: BinaryHeap<Pending<T>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|p| p.at <= now) {
            let p = heap.pop().unwrap();
            sink(p.msg);
        }
        // Wait for the next due time or the next submission.
        let wait = heap
            .peek()
            .map(|p| p.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(mut p) => {
                seq += 1;
                p.seq = seq;
                heap.push(p);
                // Drain any backlog without sleeping.
                while let Ok(mut p) = rx.try_recv() {
                    seq += 1;
                    p.seq = seq;
                    heap.push(p);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains (delivery beats dropping work on
                // shutdown races), then exit.
                while let Some(p) = heap.pop() {
                    let rem = p.at.saturating_duration_since(Instant::now());
                    if !rem.is_zero() {
                        std::thread::sleep(rem);
                    }
                    sink(p.msg);
                }
                return;
            }
        }
    }
}

/// A message in flight between localities.
pub(crate) enum WireMsg {
    /// Encoded parcel (staged parcels land in the staging buffer).
    Parcel {
        /// Destination locality.
        dest: LocalityId,
        /// Deliver into the staging buffer instead of the run queue.
        staged: bool,
        /// Encoded parcel bytes.
        bytes: Vec<u8>,
    },
    /// Direct task transfer (closure crossing localities in-process).
    Task {
        /// Destination locality.
        dest: LocalityId,
        /// The task to enqueue.
        task: Task,
    },
}

/// The runtime's wire: a [`DelayLine`] sinking into locality run queues.
pub(crate) struct Wire {
    line: DelayLine<WireMsg>,
}

impl Wire {
    /// Build the wire for `localities` under `model`.
    pub(crate) fn new(model: WireModel, localities: Arc<Vec<Arc<Locality>>>) -> Wire {
        let sink: Arc<dyn Fn(WireMsg) + Send + Sync> = Arc::new(move |msg| match msg {
            WireMsg::Parcel {
                dest,
                staged,
                bytes,
            } => {
                let loc = &localities[dest.0 as usize];
                let task = Task::parcel_bytes(bytes);
                if staged {
                    loc.push_staged(task);
                } else {
                    loc.push_task(task);
                }
            }
            WireMsg::Task { dest, task } => {
                localities[dest.0 as usize].push_task(task);
            }
        });
        Wire {
            line: DelayLine::new(model, sink),
        }
    }

    /// Submit a message of logical size `bytes`.
    #[inline]
    pub(crate) fn send(&self, msg: WireMsg, bytes: usize) {
        self.line.send(msg, bytes);
    }

    /// The active model.
    pub(crate) fn model(&self) -> WireModel {
        self.line.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_delay_arithmetic() {
        let m = WireModel {
            latency: Duration::from_micros(10),
            ns_per_byte: 2,
        };
        assert_eq!(m.delay_for(0), Duration::from_micros(10));
        assert_eq!(
            m.delay_for(1000),
            Duration::from_micros(10) + Duration::from_nanos(2000)
        );
        assert!(WireModel::instant().is_instant());
        assert!(!m.is_instant());
    }

    #[test]
    fn instant_line_delivers_inline() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel::instant(),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 100);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "inline delivery expected");
    }

    #[test]
    fn delayed_line_holds_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(30)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(7, 0);
        assert_eq!(hits.load(Ordering::SeqCst), 0, "must not arrive instantly");
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "message lost");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "arrived too early: {:?}",
            t0.elapsed()
        );
        line.shutdown();
    }

    #[test]
    fn bandwidth_cost_scales_with_bytes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel {
                latency: Duration::ZERO,
                ns_per_byte: 20_000, // 20 µs per byte — exaggerated for test
            },
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(1, 1000); // 20 ms
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn shutdown_flushes_pending() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(10)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 0);
        line.shutdown();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "pending message should be flushed on shutdown"
        );
    }

    #[test]
    fn ordering_preserved_for_equal_delays() {
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(5)),
            Arc::new(move |v| s.lock().push(v)),
        );
        for i in 0..50 {
            line.send(i, 0);
        }
        line.shutdown();
        let seen = seen.lock();
        assert_eq!(seen.len(), 50);
        // Same-latency messages submitted in order arrive in order (seq
        // tiebreak), modulo batching races at the heap boundary — allow
        // sortedness check.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(*seen, sorted);
    }
}
