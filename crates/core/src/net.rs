//! The wire layer: inter-locality transport with injectable latency and
//! bandwidth, and per-destination parcel batching.
//!
//! The real ParalleX target is a machine whose localities are separated by
//! hundreds-to-thousands of cycles of interconnect (§2.1 "latency … to
//! access remote data or services"). On one host we *inject* that latency:
//! every cross-locality message is routed through a [`DelayLine`] thread
//! that holds it until `now + latency + bytes·per_byte` before delivering
//! it to the destination locality's run queue.
//!
//! With a zero latency model the wire is bypassed entirely (direct push),
//! which is the "same box" configuration used by unit tests.
//!
//! ## Batching ([`BatchPolicy`], `PortSet`)
//!
//! Per-parcel transport overhead — a `Vec` allocation, a channel
//! submission, a delay-heap operation, an injector push, and a worker
//! wakeup for every message — dominates at fine grain (the AMT overhead
//! studies in PAPERS.md measure exactly this). When batching is enabled,
//! each sender-visible destination gets a **port**: a coalescing
//! [`px_wire::FrameBuf`] into which parcels are encoded *in place*. A port
//! flushes its frame as one wire message when it reaches
//! `max_batch_parcels` records or `max_batch_bytes` bytes, or when the
//! background flusher finds records older than `flush_interval`. The
//! delay model is applied per frame (`delay_for(frame_bytes)`), so the
//! latency and bandwidth arithmetic stays honest while the fixed per-
//! message costs amortize across the batch.
//!
//! Ordering: under a pure-latency model, parcels to the same destination
//! stay in submission order within and across frames (frames ride the
//! same `(time, seq)` min-heap the single-parcel path used). Two
//! relaxations, both of the "simultaneous messages are unordered, like a
//! real network" kind the pre-batching wire already documented:
//!
//! * with a nonzero `ns_per_byte` the delay is size-dependent, so a
//!   small frame submitted after a large one can overtake it at a frame
//!   boundary (the old wire had the same property per *parcel*);
//! * direct task transfers (`spawn_at` closures) do not pass through the
//!   ports — a task sent after a still-coalescing parcel can arrive up
//!   to `flush_interval` earlier. Code that needs a parcel's effects
//!   visible to a subsequently spawned closure must sequence through an
//!   LCO, not through submission order.
//!
//! See `ordering_preserved_for_equal_delays`.
//!
//! [`DelayLine`] is public so the CSP/BSP baseline runtime
//! (`px-baseline`) can route its messages through the *identical*
//! mechanism — the experiments then compare execution models, not
//! transport implementations.
//!
//! Messages are encoded parcels (the normal case — they pay the
//! serialization cost honestly), multi-parcel frames, or boxed tasks
//! (closure transfers used by `spawn_at`, which model the in-memory
//! handoff of a depleted thread and are accounted with a nominal header
//! size).

use crate::gid::LocalityId;
use crate::locality::Locality;
use crate::parcel::Parcel;
use crate::sched::Task;
use crate::stats::bump;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use px_wire::FrameBuf;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireModel {
    /// Fixed one-way latency added to every cross-locality message.
    pub latency: Duration,
    /// Serialization cost in nanoseconds per payload byte (0 = infinite
    /// bandwidth).
    pub ns_per_byte: u64,
}

impl WireModel {
    /// Zero-cost wire (direct delivery, no thread).
    pub fn instant() -> Self {
        WireModel {
            latency: Duration::ZERO,
            ns_per_byte: 0,
        }
    }

    /// Fixed latency, infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        WireModel {
            latency,
            ns_per_byte: 0,
        }
    }

    /// True if messages can skip the delay line.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.ns_per_byte == 0
    }

    /// Delay for a message of `bytes`.
    #[inline]
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_nanos(self.ns_per_byte * bytes as u64)
    }
}

/// Flush policy for the per-destination coalescing ports.
///
/// The default is **batching off** (`max_batch_parcels == 1`): every
/// parcel ships in its own message, exactly like the pre-batching wire,
/// so latency-sensitive request/response chains see no added delay.
/// Throughput-oriented workloads opt in with [`BatchPolicy::batched`] or
/// the [`crate::runtime::Config`] builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a port when its frame holds this many parcels (1 disables
    /// batching).
    pub max_batch_parcels: usize,
    /// Flush a port when its frame reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Maximum time a parcel may wait in a port before the background
    /// flusher ships it.
    pub flush_interval: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::single()
    }
}

impl BatchPolicy {
    /// Batching disabled: one parcel per wire message (the pre-batching
    /// behavior). Byte budget and flush interval keep their tuned values
    /// so later raising `max_batch_parcels` is the only switch to flip.
    pub fn single() -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: 1,
            ..BatchPolicy::batched()
        }
    }

    /// The tuned coalescing configuration: up to 32 parcels or 32 KiB per
    /// frame, 100 µs maximum hold.
    pub fn batched() -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: 32,
            max_batch_bytes: 32 * 1024,
            flush_interval: Duration::from_micros(100),
        }
    }

    /// Batch up to `n` parcels per frame (other limits from
    /// [`BatchPolicy::batched`]).
    pub fn with_max_parcels(n: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch_parcels: n.max(1),
            ..BatchPolicy::batched()
        }
    }

    /// True when coalescing is enabled. `max_batch_parcels` is the single
    /// on/off switch: a byte budget or flush interval alone never batches.
    #[inline]
    pub fn is_batching(&self) -> bool {
        self.max_batch_parcels > 1
    }
}

struct Pending<T> {
    at: Instant,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap by (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A generic software delay line: messages submitted with a byte size are
/// delivered to the sink after `model.delay_for(bytes)`.
///
/// With an instant model the sink is invoked inline by the sender and no
/// thread is spawned. On shutdown (or drop) pending messages are flushed
/// after their remaining delay, then the thread exits.
pub struct DelayLine<T: Send + 'static> {
    model: WireModel,
    tx: Option<Sender<Pending<T>>>,
    handle: Option<JoinHandle<()>>,
    sink: Arc<dyn Fn(T) + Send + Sync + 'static>,
}

impl<T: Send + 'static> std::fmt::Debug for DelayLine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayLine")
            .field("model", &self.model)
            .finish()
    }
}

/// A cheap cloneable submit handle onto a running delay line (used by
/// the port flusher so the timer path shares `DelayLine`'s delay
/// arithmetic instead of re-implementing it).
pub(crate) struct LineSender<T: Send + 'static> {
    tx: Sender<Pending<T>>,
    model: WireModel,
}

impl<T: Send + 'static> Clone for LineSender<T> {
    fn clone(&self) -> Self {
        LineSender {
            tx: self.tx.clone(),
            model: self.model,
        }
    }
}

impl<T: Send + 'static> LineSender<T> {
    /// Submit a message of logical size `bytes`.
    pub(crate) fn send(&self, msg: T, bytes: usize) {
        let at = Instant::now() + self.model.delay_for(bytes);
        // seq is assigned by the delay thread; simultaneous messages are
        // unordered by design (like a real network).
        if self.tx.send(Pending { at, seq: 0, msg }).is_err() {
            // Delay line already shut down (runtime teardown).
        }
    }
}

impl<T: Send + 'static> DelayLine<T> {
    /// Build a delay line delivering into `sink`.
    pub fn new(model: WireModel, sink: Arc<dyn Fn(T) + Send + Sync + 'static>) -> DelayLine<T> {
        if model.is_instant() {
            return DelayLine {
                model,
                tx: None,
                handle: None,
                sink,
            };
        }
        let (tx, rx) = bounded::<Pending<T>>(65536);
        let thread_sink = sink.clone();
        let handle = std::thread::Builder::new()
            .name("px-delay-line".into())
            .spawn(move || delay_loop(rx, thread_sink))
            .expect("spawn delay-line thread");
        DelayLine {
            model,
            tx: Some(tx),
            handle: Some(handle),
            sink,
        }
    }

    /// Submit a message of logical size `bytes`.
    pub fn send(&self, msg: T, bytes: usize) {
        match &self.tx {
            None => (self.sink)(msg),
            Some(tx) => {
                let at = Instant::now() + self.model.delay_for(bytes);
                // seq is assigned by the delay thread; simultaneous
                // messages are unordered by design (like a real network).
                if tx.send(Pending { at, seq: 0, msg }).is_err() {
                    // Delay line already shut down (runtime teardown).
                }
            }
        }
    }

    /// Submit handle bound to the delay thread (`None` on instant lines,
    /// which deliver inline and have no thread).
    pub(crate) fn sender(&self) -> Option<LineSender<T>> {
        self.tx.as_ref().map(|tx| LineSender {
            tx: tx.clone(),
            model: self.model,
        })
    }

    /// The active model.
    pub fn model(&self) -> WireModel {
        self.model
    }

    /// Stop the thread, flushing pending messages first.
    pub fn shutdown(&mut self) {
        self.tx = None; // closing the channel stops the thread
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for DelayLine<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn delay_loop<T: Send>(rx: Receiver<Pending<T>>, sink: Arc<dyn Fn(T) + Send + Sync>) {
    let mut heap: BinaryHeap<Pending<T>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|p| p.at <= now) {
            let p = heap.pop().unwrap();
            sink(p.msg);
        }
        // Wait for the next due time or the next submission.
        let wait = heap
            .peek()
            .map(|p| p.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(mut p) => {
                seq += 1;
                p.seq = seq;
                heap.push(p);
                // Drain any backlog without sleeping.
                while let Ok(mut p) = rx.try_recv() {
                    seq += 1;
                    p.seq = seq;
                    heap.push(p);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains (delivery beats dropping work on
                // shutdown races), then exit.
                while let Some(p) = heap.pop() {
                    let rem = p.at.saturating_duration_since(Instant::now());
                    if !rem.is_zero() {
                        std::thread::sleep(rem);
                    }
                    sink(p.msg);
                }
                return;
            }
        }
    }
}

/// A message in flight between localities.
pub(crate) enum WireMsg {
    /// Single encoded parcel (unbatched path; staged parcels land in the
    /// staging buffer).
    Parcel {
        /// Destination locality.
        dest: LocalityId,
        /// Deliver into the staging buffer instead of the run queue.
        staged: bool,
        /// Encoded parcel bytes.
        bytes: Vec<u8>,
    },
    /// Multi-parcel frame from a coalescing port.
    Frame {
        /// Destination locality.
        dest: LocalityId,
        /// Deliver into the staging buffer instead of the run queue.
        staged: bool,
        /// Encoded frame bytes (see [`px_wire::FrameBuf`]).
        bytes: Vec<u8>,
    },
    /// Direct task transfer (closure crossing localities in-process).
    Task {
        /// Destination locality.
        dest: LocalityId,
        /// The task to enqueue.
        task: Task,
    },
    /// Control-plane parcel (balancer gossip): delivered into the
    /// destination's control queue, drained ahead of all other work so a
    /// saturated locality still learns about idle peers promptly. Never
    /// coalesced — control traffic is latency-sensitive by nature.
    Control {
        /// Destination locality.
        dest: LocalityId,
        /// Encoded parcel bytes.
        bytes: Vec<u8>,
    },
}

/// Why a port's frame was flushed (drives stats attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// Hit `max_batch_parcels` or `max_batch_bytes`.
    Full,
    /// Aged out by the background flusher (or a shutdown drain).
    Timer,
}

/// One coalescing queue: pending frame plus the age of its oldest record.
struct Port {
    frame: FrameBuf,
    opened_at: Option<Instant>,
}

/// Per-destination coalescing ports. Index = `dest * 2 + staged`, so
/// percolation traffic batches separately from general parcels and a
/// frame is homogeneous in its delivery queue.
pub(crate) struct PortSet {
    policy: BatchPolicy,
    ports: Vec<Mutex<Port>>,
}

impl PortSet {
    fn new(policy: BatchPolicy, localities: usize) -> PortSet {
        PortSet {
            policy,
            ports: (0..localities * 2)
                .map(|_| {
                    Mutex::new(Port {
                        frame: FrameBuf::new(),
                        opened_at: None,
                    })
                })
                .collect(),
        }
    }

    #[inline]
    fn port(&self, dest: LocalityId, staged: bool) -> &Mutex<Port> {
        &self.ports[dest.0 as usize * 2 + staged as usize]
    }
}

/// The runtime's wire: coalescing ports in front of a [`DelayLine`]
/// sinking into locality run queues.
pub(crate) struct Wire {
    line: DelayLine<WireMsg>,
    ports: Option<Arc<PortSet>>,
    localities: Arc<Vec<Arc<Locality>>>,
    flusher_stop: Option<Sender<()>>,
    flusher: Option<JoinHandle<()>>,
}

impl Wire {
    /// Build the wire for `localities` under `model`, coalescing per
    /// `policy`. Batching engages only when the model is not instant and
    /// the policy asks for more than one parcel per message.
    pub(crate) fn new(
        model: WireModel,
        localities: Arc<Vec<Arc<Locality>>>,
        policy: BatchPolicy,
    ) -> Wire {
        let sink_locs = localities.clone();
        let sink: Arc<dyn Fn(WireMsg) + Send + Sync> = Arc::new(move |msg| match msg {
            WireMsg::Parcel {
                dest,
                staged,
                bytes,
            } => {
                let loc = &sink_locs[dest.0 as usize];
                let task = Task::parcel_bytes(bytes);
                if staged {
                    loc.push_staged(task);
                } else {
                    loc.push_task(task);
                }
            }
            WireMsg::Frame {
                dest,
                staged,
                bytes,
            } => {
                let loc = &sink_locs[dest.0 as usize];
                let task = Task::parcel_frame(bytes);
                if staged {
                    loc.push_staged(task);
                } else {
                    loc.push_task(task);
                }
            }
            WireMsg::Task { dest, task } => {
                sink_locs[dest.0 as usize].push_task(task);
            }
            WireMsg::Control { dest, bytes } => {
                sink_locs[dest.0 as usize].push_control(Task::parcel_bytes(bytes));
            }
        });
        let line = DelayLine::new(model, sink);
        let batching = policy.is_batching() && !model.is_instant();
        let ports = batching.then(|| Arc::new(PortSet::new(policy, localities.len())));
        let (flusher_stop, flusher) = match &ports {
            None => (None, None),
            Some(ports) => {
                let (stop_tx, stop_rx) = bounded::<()>(1);
                let handle = {
                    let ports = ports.clone();
                    let localities = localities.clone();
                    let sender = line.sender().expect("batching implies a delay thread");
                    std::thread::Builder::new()
                        .name("px-port-flusher".into())
                        .spawn(move || flusher_loop(ports, localities, sender, stop_rx))
                        .expect("spawn port-flusher thread")
                };
                (Some(stop_tx), Some(handle))
            }
        };
        Wire {
            line,
            ports,
            localities,
            flusher_stop,
            flusher,
        }
    }

    /// Encode and submit one parcel toward `dest`, batching according to
    /// the policy. Returns the parcel's encoded size for accounting.
    pub(crate) fn send_parcel(&self, dest: LocalityId, p: &Parcel) -> usize {
        let Some(ports) = &self.ports else {
            // Unbatched path: identical to the pre-batching wire.
            let bytes = p.encode();
            let n = bytes.len();
            self.line.send(
                WireMsg::Parcel {
                    dest,
                    staged: p.staged,
                    bytes,
                },
                n,
            );
            return n;
        };
        let dest_loc = &self.localities[dest.0 as usize];
        let mut port = ports.port(dest, p.staged).lock();
        if port.frame.is_empty() {
            port.opened_at = Some(Instant::now());
        }
        // Report the record's full wire footprint (parcel + length
        // prefix) so `bytes_sent` tracks what the delay model charges; of
        // the frame, only the fixed 5-byte header goes unattributed.
        let n = port.frame.push_record_with(|w| p.encode_into(w)) + px_wire::RECORD_HEADER_LEN;
        let policy = &ports.policy;
        if port.frame.record_count() as usize >= policy.max_batch_parcels
            || port.frame.len() >= policy.max_batch_bytes
        {
            flush_port(
                &mut port,
                dest,
                p.staged,
                FlushCause::Full,
                dest_loc,
                |msg, bytes| self.line.send(msg, bytes),
            );
        }
        n
    }

    /// Submit a non-parcel message (tasks; single parcels from callers
    /// that bypass batching).
    #[inline]
    pub(crate) fn send(&self, msg: WireMsg, bytes: usize) {
        self.line.send(msg, bytes);
    }

    /// The active model.
    pub(crate) fn model(&self) -> WireModel {
        self.line.model()
    }

    /// Drain every port (shutdown, or tests that need determinism).
    pub(crate) fn flush_all(&self) {
        if let Some(ports) = &self.ports {
            flush_aged(ports, &self.localities, Duration::ZERO, |msg, bytes| {
                self.line.send(msg, bytes)
            });
        }
    }

    /// Stop the flusher, drain the ports, stop the delay line.
    pub(crate) fn shutdown(&mut self) {
        self.flusher_stop = None; // closing the channel stops the flusher
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        self.flush_all();
        self.line.shutdown();
    }
}

impl Drop for Wire {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flush one port's frame as a wire message (no-op when empty).
fn flush_port(
    port: &mut Port,
    dest: LocalityId,
    staged: bool,
    cause: FlushCause,
    dest_loc: &Locality,
    submit: impl FnOnce(WireMsg, usize),
) {
    if port.frame.is_empty() {
        return;
    }
    let records = u64::from(port.frame.record_count());
    let bytes = port.frame.take();
    port.opened_at = None;
    bump!(dest_loc.counters.frames_sent);
    // Counted at flush, under the port lock, so coalesced_parcels and
    // frames_sent advance together and their ratio never exceeds the cap.
    bump!(dest_loc.counters.coalesced_parcels, records - 1);
    match cause {
        FlushCause::Full => bump!(dest_loc.counters.batch_flush_full),
        FlushCause::Timer => bump!(dest_loc.counters.batch_flush_timer),
    }
    let n = bytes.len();
    submit(
        WireMsg::Frame {
            dest,
            staged,
            bytes,
        },
        n,
    );
}

/// Flush every port whose oldest record is older than `min_age`.
fn flush_aged(
    ports: &PortSet,
    localities: &[Arc<Locality>],
    min_age: Duration,
    mut submit: impl FnMut(WireMsg, usize),
) {
    for (idx, slot) in ports.ports.iter().enumerate() {
        let dest = LocalityId((idx / 2) as u16);
        let staged = idx % 2 == 1;
        let mut port = slot.lock();
        let aged = port.opened_at.is_some_and(|t0| t0.elapsed() >= min_age);
        if aged {
            flush_port(
                &mut port,
                dest,
                staged,
                FlushCause::Timer,
                &localities[dest.0 as usize],
                &mut submit,
            );
        }
    }
}

/// Background flusher honoring `flush_interval`: wakes at half the
/// interval and ships any frame whose oldest parcel has waited too long.
fn flusher_loop(
    ports: Arc<PortSet>,
    localities: Arc<Vec<Arc<Locality>>>,
    sender: LineSender<WireMsg>,
    stop_rx: Receiver<()>,
) {
    let interval = ports.policy.flush_interval;
    let tick = (interval / 2).clamp(Duration::from_micros(20), Duration::from_millis(10));
    loop {
        match stop_rx.recv_timeout(tick) {
            Err(RecvTimeoutError::Timeout) => {
                flush_aged(&ports, &localities, interval, |msg, bytes| {
                    sender.send(msg, bytes)
                });
            }
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Value;
    use crate::gid::Gid;
    use crate::parcel::Continuation;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_delay_arithmetic() {
        let m = WireModel {
            latency: Duration::from_micros(10),
            ns_per_byte: 2,
        };
        assert_eq!(m.delay_for(0), Duration::from_micros(10));
        assert_eq!(
            m.delay_for(1000),
            Duration::from_micros(10) + Duration::from_nanos(2000)
        );
        assert!(WireModel::instant().is_instant());
        assert!(!m.is_instant());
    }

    #[test]
    fn instant_line_delivers_inline() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel::instant(),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 100);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "inline delivery expected");
    }

    #[test]
    fn delayed_line_holds_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(30)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(7, 0);
        assert_eq!(hits.load(Ordering::SeqCst), 0, "must not arrive instantly");
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "message lost");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "arrived too early: {:?}",
            t0.elapsed()
        );
        line.shutdown();
    }

    #[test]
    fn bandwidth_cost_scales_with_bytes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let line: DelayLine<u32> = DelayLine::new(
            WireModel {
                latency: Duration::ZERO,
                ns_per_byte: 20_000, // 20 µs per byte — exaggerated for test
            },
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let t0 = Instant::now();
        line.send(1, 1000); // 20 ms
        while hits.load(Ordering::SeqCst) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn shutdown_flushes_pending() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(10)),
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        line.send(1, 0);
        line.shutdown();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "pending message should be flushed on shutdown"
        );
    }

    #[test]
    fn ordering_preserved_for_equal_delays() {
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = seen.clone();
        let mut line: DelayLine<u32> = DelayLine::new(
            WireModel::with_latency(Duration::from_millis(5)),
            Arc::new(move |v| s.lock().push(v)),
        );
        for i in 0..50 {
            line.send(i, 0);
        }
        line.shutdown();
        let seen = seen.lock();
        assert_eq!(seen.len(), 50);
        // Same-latency messages submitted in order arrive in order (seq
        // tiebreak), modulo batching races at the heap boundary — allow
        // sortedness check. With ports enabled the same relaxation applies
        // at frame boundaries: records within a frame are strictly
        // ordered, frames inherit this (time, seq) discipline.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(*seen, sorted);
    }

    // ---- batching ---------------------------------------------------------

    fn test_localities(n: usize) -> Arc<Vec<Arc<Locality>>> {
        Arc::new(
            (0..n)
                .map(|i| Arc::new(Locality::new(LocalityId(i as u16), false)))
                .collect(),
        )
    }

    fn noop_parcel(dest: LocalityId) -> Parcel {
        Parcel::new(
            Gid::locality_root(dest),
            crate::sched::sys::NOOP,
            Value::unit(),
            Continuation::none(),
        )
    }

    fn drain_count(loc: &Locality) -> (usize, usize) {
        // (tasks, parcels) delivered to the general injector.
        let mut tasks = 0;
        let mut parcels = 0;
        while let crossbeam::deque::Steal::Success(t) = loc.injector.steal() {
            tasks += 1;
            parcels += t.parcel_records();
        }
        (tasks, parcels)
    }

    #[test]
    fn batch_flushes_on_parcel_count() {
        let locs = test_localities(2);
        let wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(50)),
            locs.clone(),
            BatchPolicy {
                max_batch_parcels: 4,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10), // timer disabled
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..8 {
            wire.send_parcel(LocalityId(1), &p);
        }
        // Two full frames of four parcels each. Accumulate across polls:
        // the delay thread may deliver the frames on either side of a
        // drain.
        let t0 = Instant::now();
        let (mut tasks, mut parcels) = (0, 0);
        while parcels < 8 {
            let (t, p) = drain_count(&locs[1]);
            tasks += t;
            parcels += p;
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "frames never arrived"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(tasks, 2, "expected two frames");
        assert_eq!(parcels, 8, "expected all parcels");
        assert_eq!(locs[1].counters.frames_sent.load(Ordering::Relaxed), 2);
        assert_eq!(locs[1].counters.batch_flush_full.load(Ordering::Relaxed), 2);
        assert_eq!(
            locs[1].counters.coalesced_parcels.load(Ordering::Relaxed),
            6,
            "three of each four shared a frame"
        );
    }

    #[test]
    fn batch_flushes_on_byte_budget() {
        let locs = test_localities(2);
        let wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(50)),
            locs.clone(),
            BatchPolicy {
                max_batch_parcels: usize::MAX,
                max_batch_bytes: 64,
                flush_interval: Duration::from_secs(10),
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..4 {
            wire.send_parcel(LocalityId(1), &p);
        }
        let t0 = Instant::now();
        loop {
            let (tasks, _) = drain_count(&locs[1]);
            if tasks > 0 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(locs[1].counters.batch_flush_full.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn flusher_ships_stragglers() {
        let locs = test_localities(2);
        let wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(10)),
            locs.clone(),
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_micros(200),
            },
        );
        let p = noop_parcel(LocalityId(1));
        wire.send_parcel(LocalityId(1), &p);
        let t0 = Instant::now();
        loop {
            let (tasks, parcels) = drain_count(&locs[1]);
            if tasks > 0 {
                assert_eq!(parcels, 1);
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "straggler never flushed"
            );
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(
            locs[1].counters.batch_flush_timer.load(Ordering::Relaxed),
            1
        );
        drop(wire);
    }

    #[test]
    fn shutdown_drains_ports() {
        let locs = test_localities(2);
        let mut wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(10)),
            locs.clone(),
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10),
            },
        );
        let p = noop_parcel(LocalityId(1));
        for _ in 0..3 {
            wire.send_parcel(LocalityId(1), &p);
        }
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!(tasks, 1, "one shutdown frame");
        assert_eq!(parcels, 3, "all pending parcels delivered");
    }

    #[test]
    fn staged_and_plain_parcels_batch_separately() {
        let locs = test_localities(2);
        let mut wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(10)),
            locs.clone(),
            BatchPolicy {
                max_batch_parcels: 1000,
                max_batch_bytes: usize::MAX,
                flush_interval: Duration::from_secs(10),
            },
        );
        let plain = noop_parcel(LocalityId(1));
        let mut staged = noop_parcel(LocalityId(1));
        staged.staged = true;
        wire.send_parcel(LocalityId(1), &plain);
        wire.send_parcel(LocalityId(1), &staged);
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!((tasks, parcels), (1, 1), "plain frame in the injector");
        let mut staged_tasks = 0;
        while let crossbeam::deque::Steal::Success(t) = locs[1].staging.steal() {
            staged_tasks += t.parcel_records();
        }
        assert_eq!(staged_tasks, 1, "staged frame in the staging buffer");
    }

    #[test]
    fn unbatched_policy_sends_single_parcels() {
        let locs = test_localities(2);
        let mut wire = Wire::new(
            WireModel::with_latency(Duration::from_micros(10)),
            locs.clone(),
            BatchPolicy::single(),
        );
        let p = noop_parcel(LocalityId(1));
        let n = wire.send_parcel(LocalityId(1), &p);
        assert_eq!(n, p.encode().len());
        wire.shutdown();
        let (tasks, parcels) = drain_count(&locs[1]);
        assert_eq!((tasks, parcels), (1, 1));
        assert_eq!(
            locs[1].counters.frames_sent.load(Ordering::Relaxed),
            0,
            "no frames on the single-parcel path"
        );
    }
}
