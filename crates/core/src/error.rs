//! Error type for runtime operations, and the first-class fault value
//! that carries a parcel's cause of death along its continuation chain.

use crate::action::ActionId;
use crate::gid::Gid;
use std::fmt;

/// Result alias for runtime operations.
pub type PxResult<T> = Result<T, PxError>;

/// Why a parcel (or an LCO it was feeding) died. The kill paths of the
/// scheduler, mirrored one-to-one by the by-cause dead-parcel counters
/// in [`crate::stats::LocalityStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// The forwarding/retry hop budget was exhausted chasing a migrating
    /// or freed object.
    HopCap,
    /// The parcel named an action absent from the registry.
    UnknownAction,
    /// The action handler (user or system) returned an error — including
    /// LCO protocol violations such as double-triggering a future.
    HandlerError,
    /// The action handler panicked (the worker survived; the panic
    /// message rides in the fault).
    Panic,
    /// The parcel payload (or frame record) could not be decoded.
    Decode,
    /// The parcel's owning parallel process was cancelled: the parcel was
    /// killed at dispatch (or an LCO it fed was poisoned) by
    /// [`crate::process::ProcessRef::cancel`].
    Cancelled,
    /// The transport could not deliver: the peer's connection dropped (or
    /// a closure task was addressed to a locality owned by another OS
    /// process). Raised by the TCP backend so waiters on the lost work
    /// resolve instead of hanging.
    Transport,
}

impl FaultCause {
    /// Stable wire code (see [`px_wire::WireFault::cause`]).
    pub fn code(self) -> u8 {
        match self {
            FaultCause::HopCap => 0,
            FaultCause::UnknownAction => 1,
            FaultCause::HandlerError => 2,
            FaultCause::Panic => 3,
            FaultCause::Decode => 4,
            FaultCause::Cancelled => 5,
            FaultCause::Transport => 6,
        }
    }

    /// Decode a wire code; unknown codes (newer peer) map to
    /// [`FaultCause::HandlerError`], the most generic cause.
    pub fn from_code(code: u8) -> FaultCause {
        match code {
            0 => FaultCause::HopCap,
            1 => FaultCause::UnknownAction,
            3 => FaultCause::Panic,
            4 => FaultCause::Decode,
            5 => FaultCause::Cancelled,
            6 => FaultCause::Transport,
            _ => FaultCause::HandlerError,
        }
    }
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultCause::HopCap => "hop-cap exhausted",
            FaultCause::UnknownAction => "unknown action",
            FaultCause::HandlerError => "handler error",
            FaultCause::Panic => "panicked action",
            FaultCause::Decode => "undecodable payload",
            FaultCause::Cancelled => "process cancelled",
            FaultCause::Transport => "transport failure",
        })
    }
}

/// A first-class failure value: created where a parcel dies, delivered
/// along its continuation chain (poisoning LCOs it would have fed), and
/// ultimately surfaced to waiters as [`PxError::Fault`].
///
/// Faults are wire-encodable ([`px_wire::WireFault`] fixes the byte
/// layout) so a continuation on another locality still learns of the
/// death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What killed the parcel.
    pub cause: FaultCause,
    /// Action the dying parcel carried (`ActionId(0)` when the fault did
    /// not originate from an action dispatch).
    pub action: ActionId,
    /// Destination object of the dying parcel.
    pub dest: Gid,
    /// Human-readable description (panic message, error display, …).
    pub message: String,
}

impl Fault {
    /// Build a fault for a parcel addressed to `dest` carrying `action`.
    pub fn new(
        cause: FaultCause,
        action: ActionId,
        dest: Gid,
        message: impl Into<String>,
    ) -> Fault {
        Fault {
            cause,
            action,
            dest,
            message: message.into(),
        }
    }

    /// Convert to the wire schema.
    pub fn to_wire(&self) -> px_wire::WireFault {
        px_wire::WireFault {
            cause: self.cause.code(),
            action: self.action.0,
            dest: self.dest.0,
            message: self.message.clone(),
        }
    }

    /// Convert from the wire schema.
    pub fn from_wire(w: &px_wire::WireFault) -> Fault {
        Fault {
            cause: FaultCause::from_code(w.cause),
            action: ActionId(w.action),
            dest: Gid(w.dest),
            message: w.message.clone(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.cause, self.dest)?;
        if self.action.0 != 0 {
            write!(f, " (action {:?})", self.action)?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        Ok(())
    }
}

/// Errors surfaced by the ParalleX runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PxError {
    /// A parcel named an action that is not in the registry.
    UnknownAction(ActionId),
    /// An action name was registered twice (or two names collided).
    DuplicateAction(&'static str),
    /// The target object does not exist at its resolved locality.
    NoSuchObject(Gid),
    /// The object exists but is of the wrong kind for the operation.
    WrongObjectKind(Gid),
    /// An LCO was triggered twice (single-assignment violation).
    AlreadyTriggered(Gid),
    /// Payload (de)serialization failed.
    Wire(px_wire::WireError),
    /// The runtime is shutting down and cannot accept work.
    ShuttingDown,
    /// A symbolic name was not found in the name service.
    UnknownName(String),
    /// A symbolic name was registered twice.
    DuplicateName(String),
    /// Echo validation found the value stale; carries the current version.
    EchoStale {
        /// Version the reader used.
        used: u64,
        /// Version currently at the root.
        current: u64,
    },
    /// Object migration was requested for a non-migratable object.
    NotMigratable(Gid),
    /// Configuration rejected at build time.
    BadConfig(String),
    /// A parcel died and its fault propagated to this waiter (the loud
    /// replacement for a silent hang).
    Fault(Fault),
}

impl fmt::Display for PxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxError::UnknownAction(id) => write!(f, "unknown action {id:?}"),
            PxError::DuplicateAction(name) => write!(f, "action {name:?} registered twice"),
            PxError::NoSuchObject(g) => write!(f, "no such object {g}"),
            PxError::WrongObjectKind(g) => write!(f, "object {g} has the wrong kind"),
            PxError::AlreadyTriggered(g) => write!(f, "LCO {g} already triggered"),
            PxError::Wire(e) => write!(f, "wire format error: {e}"),
            PxError::ShuttingDown => write!(f, "runtime is shutting down"),
            PxError::UnknownName(n) => write!(f, "unknown symbolic name {n:?}"),
            PxError::DuplicateName(n) => write!(f, "symbolic name {n:?} already registered"),
            PxError::EchoStale { used, current } => {
                write!(f, "echo value stale: used v{used}, current v{current}")
            }
            PxError::NotMigratable(g) => write!(f, "object {g} cannot migrate"),
            PxError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            PxError::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

impl std::error::Error for PxError {}

impl From<px_wire::WireError> for PxError {
    fn from(e: px_wire::WireError) -> Self {
        PxError::Wire(e)
    }
}
