//! Error type for runtime operations.

use crate::action::ActionId;
use crate::gid::Gid;
use std::fmt;

/// Result alias for runtime operations.
pub type PxResult<T> = Result<T, PxError>;

/// Errors surfaced by the ParalleX runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PxError {
    /// A parcel named an action that is not in the registry.
    UnknownAction(ActionId),
    /// An action name was registered twice (or two names collided).
    DuplicateAction(&'static str),
    /// The target object does not exist at its resolved locality.
    NoSuchObject(Gid),
    /// The object exists but is of the wrong kind for the operation.
    WrongObjectKind(Gid),
    /// An LCO was triggered twice (single-assignment violation).
    AlreadyTriggered(Gid),
    /// Payload (de)serialization failed.
    Wire(px_wire::WireError),
    /// The runtime is shutting down and cannot accept work.
    ShuttingDown,
    /// A symbolic name was not found in the name service.
    UnknownName(String),
    /// A symbolic name was registered twice.
    DuplicateName(String),
    /// Echo validation found the value stale; carries the current version.
    EchoStale {
        /// Version the reader used.
        used: u64,
        /// Version currently at the root.
        current: u64,
    },
    /// Object migration was requested for a non-migratable object.
    NotMigratable(Gid),
    /// Configuration rejected at build time.
    BadConfig(String),
}

impl fmt::Display for PxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxError::UnknownAction(id) => write!(f, "unknown action {id:?}"),
            PxError::DuplicateAction(name) => write!(f, "action {name:?} registered twice"),
            PxError::NoSuchObject(g) => write!(f, "no such object {g}"),
            PxError::WrongObjectKind(g) => write!(f, "object {g} has the wrong kind"),
            PxError::AlreadyTriggered(g) => write!(f, "LCO {g} already triggered"),
            PxError::Wire(e) => write!(f, "wire format error: {e}"),
            PxError::ShuttingDown => write!(f, "runtime is shutting down"),
            PxError::UnknownName(n) => write!(f, "unknown symbolic name {n:?}"),
            PxError::DuplicateName(n) => write!(f, "symbolic name {n:?} already registered"),
            PxError::EchoStale { used, current } => {
                write!(f, "echo value stale: used v{used}, current v{current}")
            }
            PxError::NotMigratable(g) => write!(f, "object {g} cannot migrate"),
            PxError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for PxError {}

impl From<px_wire::WireError> for PxError {
    fn from(e: px_wire::WireError) -> Self {
        PxError::Wire(e)
    }
}
