//! Traffic generators shared by all network models.

use rand::{Rng, SeedableRng};

/// A packet to inject: `(cycle, source, destination)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Injection cycle.
    pub cycle: u64,
    /// Source port.
    pub src: usize,
    /// Destination port.
    pub dst: usize,
}

/// Bernoulli traffic: each source injects with probability `load` per
/// cycle; destinations uniform (excluding self).
pub fn uniform(ports: usize, load: f64, cycles: u64, seed: u64) -> Vec<Injection> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for cycle in 0..cycles {
        for src in 0..ports {
            if rng.gen_range(0.0..1.0) < load {
                let mut dst = rng.gen_range(0..ports - 1);
                if dst >= src {
                    dst += 1;
                }
                out.push(Injection { cycle, src, dst });
            }
        }
    }
    out
}

/// Hotspot traffic: as [`uniform`], but a `hot_fraction` of packets target
/// port 0 (the classic adversarial pattern for blocking networks).
pub fn hotspot(
    ports: usize,
    load: f64,
    hot_fraction: f64,
    cycles: u64,
    seed: u64,
) -> Vec<Injection> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for cycle in 0..cycles {
        for src in 0..ports {
            if rng.gen_range(0.0..1.0) < load {
                let dst = if rng.gen_range(0.0..1.0) < hot_fraction && src != 0 {
                    0
                } else {
                    let mut d = rng.gen_range(0..ports - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                };
                out.push(Injection { cycle, src, dst });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_calibration() {
        let inj = uniform(16, 0.5, 2000, 1);
        let rate = inj.len() as f64 / (16.0 * 2000.0);
        assert!((rate - 0.5).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn no_self_traffic() {
        for i in uniform(8, 0.8, 500, 2) {
            assert_ne!(i.src, i.dst);
        }
    }

    #[test]
    fn hotspot_concentrates() {
        let inj = hotspot(16, 0.5, 0.5, 2000, 3);
        let to_zero = inj.iter().filter(|i| i.dst == 0).count() as f64;
        let frac = to_zero / inj.len() as f64;
        assert!(frac > 0.4, "hot fraction = {frac}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(uniform(8, 0.3, 100, 7), uniform(8, 0.3, 100, 7));
    }
}
