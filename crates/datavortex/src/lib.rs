//! # px-datavortex — the Data Vortex interconnect study
//!
//! §3.2: "The system is assumed to be connected by the innovative Data
//! Vortex network (invented by Coke Reed, Interactics Holding)." The Data
//! Vortex is a hierarchical multi-level ring network with **no internal
//! buffers**: contention is resolved by *deflection* — a packet that
//! cannot drop toward its destination keeps circulating on its current
//! cylinder and retries. Its selling points are switching simplicity
//! (optical-friendly) and gracefully flat latency up to high load.
//!
//! This crate implements:
//!
//! * [`vortex`] — a synchronous cycle-level Data Vortex: `C = log2(H)+1`
//!   cylinders of `A angles × H heights`, bit-fixing descent, cylinder
//!   traffic priority, deflection rings.
//! * [`baselines`] — an output-queued ideal crossbar and a 2-D torus with
//!   dimension-ordered routing, under the same synchronous driver, for
//!   experiment E10's comparison.
//! * [`traffic`] — uniform and hotspot Bernoulli traffic generators.
//!
//! All simulators are deterministic given a seed and report the same
//! [`NetStats`] (delivered count, mean/p95 latency, deflections).

#![warn(missing_docs)]

pub mod baselines;
pub mod traffic;
pub mod vortex;

/// Statistics common to all network models.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of packet latencies (cycles).
    pub latency_sum: u64,
    /// Max packet latency.
    pub latency_max: u64,
    /// Deflections (Data Vortex) or queueing events (baselines).
    pub deflections: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NetStats {
    /// Mean delivery latency.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Delivered fraction of injected packets.
    pub fn delivery_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Sustained throughput: packets per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}
