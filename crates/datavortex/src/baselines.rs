//! Reference networks for the E10 comparison.
//!
//! * [`crossbar`] — an ideal output-queued crossbar: every packet reaches
//!   its output queue after `port_latency` cycles; each output drains one
//!   packet per cycle. The lower bound any real switch chases.
//! * [`torus2d`] — a `k × k` bidirectional 2-D torus with dimension-ordered
//!   (X then Y) store-and-forward routing and one packet per link per
//!   cycle, infinite node buffers. The conventional electrical-mesh
//!   alternative a 2007-era MPP would use.

use crate::traffic::Injection;
use crate::NetStats;
use std::collections::VecDeque;

/// Ideal output-queued crossbar: a packet injected at `t` reaches output
/// `dst` at `t + port_latency`; each output serves one packet per cycle
/// in arrival order. `deflections` counts queueing events (packets that
/// had to wait).
pub fn crossbar(
    ports: usize,
    injections: &[Injection],
    port_latency: u64,
    max_cycles: u64,
) -> NetStats {
    let mut stats = NetStats {
        injected: injections.len() as u64,
        ..Default::default()
    };
    let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); ports];
    for i in injections {
        arrivals[i.dst % ports].push(i.cycle);
    }
    for arr in arrivals.iter_mut() {
        arr.sort_unstable();
        let mut free_at = 0u64;
        for &inject in arr.iter() {
            let at_output = inject + port_latency;
            let depart = at_output.max(free_at);
            if depart >= max_cycles {
                continue;
            }
            free_at = depart + 1;
            if depart > at_output {
                stats.deflections += 1;
            }
            let latency = depart + 1 - inject;
            stats.latency_sum += latency;
            stats.latency_max = stats.latency_max.max(latency);
            stats.delivered += 1;
            stats.cycles = stats.cycles.max(depart + 1);
        }
    }
    stats
}

#[derive(Debug, Clone, Copy)]
struct TorusPacket {
    dst: usize,
    injected_at: u64,
}

/// `k × k` torus, dimension-ordered routing, 1 packet/link/cycle.
pub fn torus2d(k: usize, injections: &[Injection], max_cycles: u64) -> NetStats {
    let n = k * k;
    let mut stats = NetStats {
        injected: injections.len() as u64,
        ..Default::default()
    };
    // Each node has 4 outgoing link queues: +x, -x, +y, -y.
    // link index = node * 4 + dir.
    let mut links: Vec<VecDeque<TorusPacket>> = vec![VecDeque::new(); n * 4];
    let mut pending: Vec<Injection> = injections.to_vec();
    pending.sort_by_key(|i| i.cycle);
    let mut next_inj = 0usize;
    let mut in_flight = 0u64;

    // Route one hop: which dir from `node` toward `dst` (X first, shortest
    // way around the ring; ties +).
    let dir_of = |node: usize, dst: usize| -> usize {
        let (x, y) = (node % k, node / k);
        let (dx, dy) = (dst % k, dst / k);
        if x != dx {
            let fwd = (dx + k - x) % k;
            if fwd <= k - fwd {
                0
            } else {
                1
            }
        } else {
            let fwd = (dy + k - y) % k;
            if fwd <= k - fwd {
                2
            } else {
                3
            }
        }
    };
    let neighbor = |node: usize, dir: usize| -> usize {
        let (x, y) = (node % k, node / k);
        match dir {
            0 => (x + 1) % k + y * k,
            1 => (x + k - 1) % k + y * k,
            2 => x + ((y + 1) % k) * k,
            _ => x + ((y + k - 1) % k) * k,
        }
    };

    for cycle in 0..max_cycles {
        // Inject.
        while next_inj < pending.len() && pending[next_inj].cycle == cycle {
            let i = pending[next_inj];
            let src = i.src % n;
            let dst = i.dst % n;
            let d = dir_of(src, dst);
            links[src * 4 + d].push_back(TorusPacket {
                dst,
                injected_at: cycle,
            });
            in_flight += 1;
            next_inj += 1;
        }
        // Each link forwards one packet per cycle into the neighbor.
        let mut moves: Vec<(usize, TorusPacket)> = Vec::new(); // (arriving node, pkt)
        for node in 0..n {
            for dir in 0..4 {
                if let Some(p) = links[node * 4 + dir].pop_front() {
                    moves.push((neighbor(node, dir), p));
                }
            }
        }
        for (node, p) in moves {
            if node == p.dst {
                stats.delivered += 1;
                in_flight -= 1;
                let lat = cycle + 1 - p.injected_at;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
            } else {
                let d = dir_of(node, p.dst);
                let q = &mut links[node * 4 + d];
                if !q.is_empty() {
                    stats.deflections += 1; // queueing event
                }
                q.push_back(p);
            }
        }
        stats.cycles = cycle + 1;
        if next_inj == pending.len() && in_flight == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic;

    #[test]
    fn crossbar_zero_load_latency_is_port_latency() {
        let inj = vec![traffic::Injection {
            cycle: 0,
            src: 1,
            dst: 5,
        }];
        let s = crossbar(16, &inj, 3, 10_000);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.mean_latency(), 4.0); // 3 + 1 service
    }

    #[test]
    fn crossbar_output_contention_queues() {
        // 8 packets to the same output at cycle 0: departures serialize.
        let inj: Vec<_> = (0..8)
            .map(|src| traffic::Injection {
                cycle: 0,
                src,
                dst: 9,
            })
            .collect();
        let s = crossbar(16, &inj, 0, 10_000);
        assert_eq!(s.delivered, 8);
        assert_eq!(s.latency_max, 8); // last one waits 7 then 1 service
        assert_eq!(s.deflections, 7);
    }

    #[test]
    fn torus_single_hop() {
        // 4x4 torus: node 0 → node 1 is one hop.
        let inj = vec![traffic::Injection {
            cycle: 0,
            src: 0,
            dst: 1,
        }];
        let s = torus2d(4, &inj, 1_000);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.mean_latency(), 1.0);
    }

    #[test]
    fn torus_wraps_shortest_path() {
        // 0 → 3 on a 4-ring: 1 hop the wrap way.
        let inj = vec![traffic::Injection {
            cycle: 0,
            src: 0,
            dst: 3,
        }];
        let s = torus2d(4, &inj, 1_000);
        assert_eq!(s.mean_latency(), 1.0);
    }

    #[test]
    fn torus_delivers_uniform_load() {
        let inj = traffic::uniform(16, 0.2, 1_000, 4);
        let s = torus2d(4, &inj, 100_000);
        assert_eq!(s.delivered, s.injected);
    }

    #[test]
    fn torus_diagonal_distance() {
        // 0 (0,0) → (2,2) on 4x4 = node 10: 2+2 hops.
        let inj = vec![traffic::Injection {
            cycle: 0,
            src: 0,
            dst: 10,
        }];
        let s = torus2d(4, &inj, 1_000);
        assert_eq!(s.mean_latency(), 4.0);
    }

    #[test]
    fn crossbar_beats_torus_on_latency() {
        let inj = traffic::uniform(16, 0.3, 2_000, 8);
        let xb = crossbar(16, &inj, 1, 100_000);
        let t = torus2d(4, &inj, 100_000);
        assert!(xb.mean_latency() < t.mean_latency());
    }
}
