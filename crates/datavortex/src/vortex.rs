//! The Data Vortex switch, cycle-level.
//!
//! Topology: `C = L + 1` concentric *cylinders* (levels), each an `A × H`
//! grid of nodes (`A` angles around the ring, `H = 2^L` heights). A packet
//! enters on cylinder 0 and must reach cylinder `L` with its height equal
//! to its destination; it then exits to the output port at its height.
//!
//! Routing is hierarchical bit-fixing: descending from cylinder `ℓ` to
//! `ℓ+1` fixes bit `L-1-ℓ` of the height to the destination's bit. Every
//! hop (descend or not) advances one angle. A node holds at most one
//! packet — there are **no buffers**; if the descent target is occupied,
//! the packet *deflects*: it stays on its cylinder, advancing angle and
//! toggling the bit it is trying to fix (so the descent opportunity
//! recurs with alternating parity, which is how the real Vortex's height
//! permutation behaves). Cylinder traffic has priority over descending
//! traffic, the defining Data Vortex arbitration.
//!
//! Injection backpressure: a source can inject only when its cylinder-0
//! node is free; otherwise the packet waits in the source queue (counted
//! in latency).

// The simulator walks (cylinder, angle, height) coordinates; index loops
// mirror that geometry more directly than iterator chains would.
#![allow(clippy::needless_range_loop)]

use crate::traffic::Injection;
use crate::NetStats;

/// Configuration of a Data Vortex.
#[derive(Debug, Clone, Copy)]
pub struct VortexConfig {
    /// Height exponent: `H = 2^levels`, cylinders = `levels + 1`.
    pub levels: u32,
    /// Angles per cylinder.
    pub angles: usize,
}

impl VortexConfig {
    /// Heights (= output ports).
    pub fn heights(&self) -> usize {
        1 << self.levels
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> usize {
        self.levels as usize + 1
    }

    /// Total switching nodes.
    pub fn nodes(&self) -> usize {
        self.cylinders() * self.angles * self.heights()
    }
}

#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: usize,
    injected_at: u64,
}

/// One simulated Data Vortex run over an injection schedule.
///
/// Runs until all injected packets are delivered or `max_cycles` elapses
/// (undelivered packets then show up in `delivery_rate < 1`).
pub fn simulate(cfg: VortexConfig, injections: &[Injection], max_cycles: u64) -> NetStats {
    let h = cfg.heights();
    let a = cfg.angles;
    let cyl = cfg.cylinders();
    let l = cfg.levels as usize;

    // occupancy[level][angle][height]
    let mut grid: Vec<Vec<Vec<Option<Packet>>>> = vec![vec![vec![None; h]; a]; cyl];
    let mut next_grid = grid.clone();
    let mut stats = NetStats {
        injected: injections.len() as u64,
        ..Default::default()
    };

    // Source queues per input port. Inputs map to (angle, height) pairs of
    // cylinder 0: port p enters at angle p % a, height p % h.
    let ports = h; // one logical port per height (paper-style column ports)
    let mut queues: Vec<std::collections::VecDeque<Packet>> =
        (0..ports).map(|_| Default::default()).collect();
    let mut pending = injections.to_vec();
    pending.sort_by_key(|i| i.cycle);
    let mut next_inj = 0usize;
    let mut in_flight = 0u64;

    for cycle in 0..max_cycles {
        // Enqueue this cycle's injections at their source ports.
        while next_inj < pending.len() && pending[next_inj].cycle == cycle {
            let i = pending[next_inj];
            queues[i.src % ports].push_back(Packet {
                dst: i.dst % h,
                injected_at: cycle,
            });
            next_inj += 1;
        }

        for lvl in next_grid.iter_mut() {
            for col in lvl.iter_mut() {
                col.fill(None);
            }
        }

        // Move bottom cylinder first (exits free nodes), then upper
        // cylinders, honoring cylinder-priority over descents.
        // Bottom cylinder: every packet's height already equals dst; exit.
        for ang in 0..a {
            for hh in 0..h {
                if let Some(p) = grid[l][ang][hh].take() {
                    debug_assert_eq!(p.dst, hh);
                    stats.delivered += 1;
                    in_flight -= 1;
                    let lat = cycle - p.injected_at;
                    stats.latency_sum += lat;
                    stats.latency_max = stats.latency_max.max(lat);
                }
            }
        }

        // Upper cylinders top-down is wrong for priority: cylinder ℓ+1's
        // ring moves must claim nodes before ℓ's descents. Process
        // descending order of level: first each level's *ring* moves are
        // placed into next_grid, then (second pass) descents are attempted
        // against next_grid occupancy.
        // Pass 1: ring moves for all levels (provisional: every packet
        // deflects). Record candidates for descent.
        let mut candidates: Vec<(usize, usize, usize, Packet)> = Vec::new(); // (level, angle, height, pkt)
        for lvl in 0..=l {
            for ang in 0..a {
                for hh in 0..h {
                    if let Some(p) = grid[lvl][ang][hh] {
                        candidates.push((lvl, ang, hh, p));
                    }
                }
            }
        }
        // Deeper levels claim first (their moves are never blocked by
        // shallower traffic); within a level, descents are attempted
        // before deflections are finalized.
        candidates.sort_by_key(|&(lvl, ang, _, _)| (std::cmp::Reverse(lvl), ang));
        for (lvl, ang, hh, p) in candidates {
            let na = (ang + 1) % a;
            if lvl < l {
                // Try to fix bit (l - 1 - lvl).
                let bit = l - 1 - lvl;
                let want = hh & !(1 << bit) | (((p.dst >> bit) & 1) << bit);
                // Descend requires prefix bits above `bit` already fixed.
                let mask_above = !((1usize << (bit + 1)) - 1);
                let prefix_ok = (hh & mask_above) == (p.dst & mask_above);
                let descend_ok = prefix_ok && next_grid[lvl + 1][na][want].is_none();
                if descend_ok {
                    next_grid[lvl + 1][na][want] = Some(p);
                    continue;
                }
                // Deflect on the ring, toggling the bit being fixed so the
                // descent can be retried with the other parity.
                let nh = hh ^ (1 << bit);
                debug_assert!(
                    next_grid[lvl][na][nh].is_none(),
                    "ring move is a permutation"
                );
                next_grid[lvl][na][nh] = Some(p);
                stats.deflections += 1;
            } else {
                // Bottom cylinder: rotate toward exit (exit handled at the
                // top of the next cycle).
                debug_assert!(next_grid[lvl][na][hh].is_none());
                next_grid[lvl][na][hh] = Some(p);
            }
        }

        // Injection: a port's packet enters cylinder 0 at (angle chosen by
        // port, height = src port's row) when that node is still free.
        for (port, q) in queues.iter_mut().enumerate() {
            if let Some(&p) = q.front() {
                let ang = port % a;
                let hh = port % h;
                if next_grid[0][ang][hh].is_none() {
                    next_grid[0][ang][hh] = Some(p);
                    q.pop_front();
                    in_flight += 1;
                }
            }
        }

        std::mem::swap(&mut grid, &mut next_grid);
        stats.cycles = cycle + 1;
        if next_inj == pending.len() && in_flight == 0 && queues.iter().all(|q| q.is_empty()) {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic;

    fn cfg() -> VortexConfig {
        VortexConfig {
            levels: 4,
            angles: 5,
        } // 16 ports, 5 angles, 80 nodes/cylinder
    }

    #[test]
    fn geometry() {
        let c = cfg();
        assert_eq!(c.heights(), 16);
        assert_eq!(c.cylinders(), 5);
        assert_eq!(c.nodes(), 5 * 5 * 16);
    }

    #[test]
    fn single_packet_routes_to_destination() {
        for dst in 0..16 {
            let inj = vec![Injection {
                cycle: 0,
                src: 3,
                dst,
            }];
            let s = simulate(cfg(), &inj, 10_000);
            assert_eq!(s.delivered, 1, "dst {dst}");
            // Zero-load latency: one hop per cylinder plus exit ≈ levels+2.
            assert!(s.mean_latency() <= 16.0, "dst {dst}: {}", s.mean_latency());
        }
    }

    #[test]
    fn all_packets_delivered_at_moderate_load() {
        let inj = traffic::uniform(16, 0.2, 2_000, 42);
        let s = simulate(cfg(), &inj, 50_000);
        assert_eq!(s.delivered, s.injected, "lost packets");
    }

    #[test]
    fn latency_rises_with_load() {
        let lo = simulate(cfg(), &traffic::uniform(16, 0.05, 3_000, 1), 100_000);
        let hi = simulate(cfg(), &traffic::uniform(16, 0.6, 3_000, 1), 200_000);
        assert!(
            hi.mean_latency() > lo.mean_latency(),
            "lo {} hi {}",
            lo.mean_latency(),
            hi.mean_latency()
        );
    }

    #[test]
    fn deflections_increase_with_load() {
        let lo = simulate(cfg(), &traffic::uniform(16, 0.05, 3_000, 2), 100_000);
        let hi = simulate(cfg(), &traffic::uniform(16, 0.6, 3_000, 2), 200_000);
        let lo_rate = lo.deflections as f64 / lo.delivered.max(1) as f64;
        let hi_rate = hi.deflections as f64 / hi.delivered.max(1) as f64;
        assert!(hi_rate > lo_rate, "lo {lo_rate} hi {hi_rate}");
    }

    #[test]
    fn deterministic() {
        let inj = traffic::uniform(16, 0.3, 1_000, 9);
        let a = simulate(cfg(), &inj, 100_000);
        let b = simulate(cfg(), &inj, 100_000);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_sum, b.latency_sum);
        assert_eq!(a.deflections, b.deflections);
    }

    #[test]
    fn larger_vortex_still_routes() {
        let c = VortexConfig {
            levels: 6,
            angles: 7,
        }; // 64 ports
        let inj = traffic::uniform(64, 0.1, 1_000, 5);
        let s = simulate(c, &inj, 100_000);
        assert_eq!(s.delivered, s.injected);
    }
}
