//! The simulator core: components, contexts, and the run loop.

use crate::queue::EventQueue;
use crate::Time;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Identifies a component registered with a [`Simulator`].
///
/// Ids are assigned densely in registration order starting at 0, so models
/// can precompute id arithmetic (e.g. `node_base + node_index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

/// A simulated hardware or software component.
///
/// Components receive events through [`Component::handle`] and react by
/// mutating their own state and scheduling further events via [`SimCtx`].
pub trait Component<E> {
    /// React to `event` arriving now.
    fn handle(&mut self, event: E, ctx: &mut SimCtx<'_, E>);
}

/// Per-dispatch view of the simulator handed to a component.
pub struct SimCtx<'a, E> {
    now: Time,
    self_id: CompId,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut SmallRng,
    stop: &'a mut bool,
}

impl<E> SimCtx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently handling an event.
    #[inline]
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Schedule `payload` for `dst` after `delay` ticks.
    #[inline]
    pub fn send_after(&mut self, delay: Time, dst: CompId, payload: E) {
        self.queue.push(self.now + delay, dst, payload);
    }

    /// Schedule `payload` for `dst` at absolute time `at` (must not be in
    /// the past — the calendar cannot rewind).
    #[inline]
    pub fn send_at(&mut self, at: Time, dst: CompId, payload: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at.max(self.now), dst, payload);
    }

    /// Schedule an event for the handling component itself.
    #[inline]
    pub fn wake_after(&mut self, delay: Time, payload: E) {
        let id = self.self_id;
        self.send_after(delay, id, payload);
    }

    /// Deterministic per-simulation random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Request that the run loop stop after this dispatch completes.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The discrete-event simulator.
///
/// Owns the component table, the event calendar, and a seeded RNG. The type
/// parameter `E` is the event payload exchanged between components.
pub struct Simulator<E> {
    components: Vec<Option<Box<dyn Component<E>>>>,
    queue: EventQueue<E>,
    now: Time,
    rng: SmallRng,
    stop: bool,
    dispatched: u64,
}

impl<E> Simulator<E> {
    /// New simulator with the given RNG seed (identical seeds replay
    /// identical histories).
    pub fn new(seed: u64) -> Self {
        Self {
            components: Vec::new(),
            queue: EventQueue::new(),
            now: 0,
            rng: SmallRng::seed_from_u64(seed),
            stop: false,
            dispatched: 0,
        }
    }

    /// Register a component, returning its dense id.
    pub fn add<C: Component<E> + 'static>(&mut self, comp: C) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Some(Box::new(comp)));
        id
    }

    /// Register a boxed component (for heterogeneous construction loops).
    pub fn add_boxed(&mut self, comp: Box<dyn Component<E>>) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Some(comp));
        id
    }

    /// Schedule an initial event from outside any component.
    pub fn send_at(&mut self, at: Time, dst: CompId, payload: E) {
        self.queue.push(at, dst, payload);
    }

    /// Current simulated time (time of the last dispatched event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to a component (for reading results after a run).
    ///
    /// Panics if the id is out of range or the component is mid-dispatch.
    pub fn component(&self, id: CompId) -> &dyn Component<E> {
        self.components[id.0 as usize]
            .as_deref()
            .expect("component is mid-dispatch")
    }

    /// Mutable access to a component.
    pub fn component_mut(&mut self, id: CompId) -> &mut (dyn Component<E> + 'static) {
        self.components[id.0 as usize]
            .as_deref_mut()
            .expect("component is mid-dispatch")
    }

    /// Take a component out of the simulator (e.g. to downcast and read
    /// final statistics after the run).
    pub fn remove(&mut self, id: CompId) -> Box<dyn Component<E>> {
        self.components[id.0 as usize]
            .take()
            .expect("component already removed")
    }

    /// Run until the calendar drains or a component calls
    /// [`SimCtx::stop`]. Returns the final simulated time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Run until the calendar drains, a component stops the simulation, or
    /// the next event would fire after `deadline`. Events at exactly
    /// `deadline` are still dispatched.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while !self.stop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            self.now = ev.time;
            self.dispatched += 1;
            let idx = ev.dst.0 as usize;
            // Take the component out so it can receive `&mut self` while the
            // context borrows the queue; re-insert afterwards.
            let mut comp = self.components[idx]
                .take()
                .unwrap_or_else(|| panic!("event sent to missing component {idx}"));
            {
                let mut ctx = SimCtx {
                    now: self.now,
                    self_id: ev.dst,
                    queue: &mut self.queue,
                    rng: &mut self.rng,
                    stop: &mut self.stop,
                };
                comp.handle(ev.payload, &mut ctx);
            }
            self.components[idx] = Some(comp);
        }
        self.now
    }

    /// Clear the stop flag so the simulation can be resumed.
    pub fn clear_stop(&mut self) {
        self.stop = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Ev {
        Tick,
        Add(u64),
    }

    struct Counter {
        total: u64,
        ticks: u32,
    }

    impl Component<Ev> for Counter {
        fn handle(&mut self, event: Ev, ctx: &mut SimCtx<'_, Ev>) {
            match event {
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < 5 {
                        ctx.wake_after(100, Ev::Tick);
                    }
                }
                Ev::Add(n) => self.total += n,
            }
        }
    }

    #[test]
    fn self_wakeups_advance_time() {
        let mut sim = Simulator::new(1);
        let c = sim.add(Counter { total: 0, ticks: 0 });
        sim.send_at(0, c, Ev::Tick);
        let end = sim.run();
        assert_eq!(end, 400); // ticks at 0,100,200,300,400
        assert_eq!(sim.dispatched(), 5);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1);
        let c = sim.add(Counter { total: 0, ticks: 0 });
        sim.send_at(0, c, Ev::Tick);
        sim.run_until(150);
        assert_eq!(sim.now(), 100);
        assert_eq!(sim.pending(), 1); // the t=200 tick remains
    }

    #[test]
    fn events_route_to_correct_component() {
        use std::cell::Cell;
        use std::rc::Rc;

        // Models export results through shared handles; mirror that here.
        struct Acc(Rc<Cell<u64>>);
        impl Component<Ev> for Acc {
            fn handle(&mut self, event: Ev, _ctx: &mut SimCtx<'_, Ev>) {
                if let Ev::Add(n) = event {
                    self.0.set(self.0.get() + n);
                }
            }
        }

        let (ra, rb) = (Rc::new(Cell::new(0)), Rc::new(Cell::new(0)));
        let mut sim = Simulator::new(1);
        let a = sim.add(Acc(ra.clone()));
        let b = sim.add(Acc(rb.clone()));
        sim.send_at(0, a, Ev::Add(3));
        sim.send_at(0, b, Ev::Add(9));
        sim.send_at(1, a, Ev::Add(4));
        sim.run();
        assert_eq!(ra.get(), 7);
        assert_eq!(rb.get(), 9);
    }

    struct Stopper;
    impl Component<Ev> for Stopper {
        fn handle(&mut self, _event: Ev, ctx: &mut SimCtx<'_, Ev>) {
            ctx.stop();
        }
    }

    #[test]
    fn stop_halts_run_loop() {
        let mut sim = Simulator::new(1);
        let s = sim.add(Stopper);
        sim.send_at(10, s, Ev::Tick);
        sim.send_at(20, s, Ev::Tick);
        sim.run();
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.pending(), 1);
        sim.clear_stop();
        sim.run();
        assert_eq!(sim.now(), 20);
    }

    #[test]
    fn deterministic_replay() {
        fn trace() -> (Time, u64) {
            struct R;
            impl Component<Ev> for R {
                fn handle(&mut self, _e: Ev, ctx: &mut SimCtx<'_, Ev>) {
                    use rand::Rng;
                    let d: u64 = ctx.rng().gen_range(1..50);
                    if ctx.now() < 10_000 {
                        ctx.wake_after(d, Ev::Tick);
                    }
                }
            }
            let mut sim = Simulator::new(777);
            let r = sim.add(R);
            sim.send_at(0, r, Ev::Tick);
            let t = sim.run();
            (t, sim.dispatched())
        }
        assert_eq!(trace(), trace());
    }
}
