//! Event calendar: a binary heap keyed on `(time, seq)`.
//!
//! The sequence number makes the ordering total, which makes the simulation
//! deterministic: two events scheduled for the same tick always fire in the
//! order they were scheduled.

use crate::{sim::CompId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event waiting in the calendar.
#[derive(Debug)]
pub struct QueuedEvent<E> {
    /// Delivery time.
    pub time: Time,
    /// Schedule-order tiebreaker.
    pub seq: u64,
    /// Destination component.
    pub dst: CompId,
    /// User payload.
    pub payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by schedule order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Min-queue of events ordered by `(time, seq)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` for `dst` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Time, dst: CompId, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent {
            time,
            seq,
            dst,
            payload,
        });
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, CompId(0), "c");
        q.push(10, CompId(0), "a");
        q.push(20, CompId(0), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, CompId(0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(50, CompId(0), ());
        q.push(7, CompId(1), ());
        assert_eq!(q.peek_time(), Some(7));
        q.pop();
        assert_eq!(q.peek_time(), Some(50));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, CompId(0), ());
        q.push(2, CompId(0), ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
