//! Latency/bandwidth link model.

use crate::Time;

/// A point-to-point channel with fixed latency, finite bandwidth, and
/// serialization occupancy.
///
/// Transfers observe the store-and-forward rule: a message of `bytes`
/// submitted at `now` starts transmitting when the link is free, occupies
/// the link for `ceil(bytes / bytes_per_tick)` ticks, and arrives one
/// `latency` later:
///
/// ```text
/// start   = max(now, next_free)
/// finish  = start + ceil(bytes / bytes_per_tick)
/// arrival = finish + latency
/// ```
///
/// The caller schedules the delivery event at `arrival`; the link just does
/// the bookkeeping and records utilization.
#[derive(Debug, Clone)]
pub struct Link {
    /// Propagation delay in ticks.
    pub latency: Time,
    /// Serialization rate; `bytes_per_tick == 0` means infinite bandwidth.
    pub bytes_per_tick: u64,
    next_free: Time,
    busy_ticks: Time,
    messages: u64,
    bytes: u64,
}

impl Link {
    /// New idle link.
    pub fn new(latency: Time, bytes_per_tick: u64) -> Self {
        Self {
            latency,
            bytes_per_tick,
            next_free: 0,
            busy_ticks: 0,
            messages: 0,
            bytes: 0,
        }
    }

    /// Submit a transfer of `bytes` at time `now`; returns the arrival time
    /// at the far end and advances the link occupancy.
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let start = now.max(self.next_free);
        let ser = if self.bytes_per_tick == 0 {
            0
        } else {
            bytes.div_ceil(self.bytes_per_tick)
        };
        self.next_free = start + ser;
        self.busy_ticks += ser;
        self.messages += 1;
        self.bytes += bytes;
        self.next_free + self.latency
    }

    /// When the link next becomes free.
    #[inline]
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total ticks spent serializing.
    #[inline]
    pub fn busy_ticks(&self) -> Time {
        self.busy_ticks
    }

    /// Messages transferred.
    #[inline]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bytes transferred.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Utilization over `elapsed` ticks (clamped to 1.0).
    pub fn utilization(&self, elapsed: Time) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_ticks as f64 / elapsed as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_link() {
        let mut l = Link::new(100, 0);
        assert_eq!(l.transfer(0, 1_000_000), 100);
        // Infinite bandwidth: no occupancy, next message unaffected.
        assert_eq!(l.transfer(0, 1_000_000), 100);
    }

    #[test]
    fn serialization_occupies_link() {
        let mut l = Link::new(10, 4); // 4 bytes/tick
                                      // 16 bytes → 4 ticks serialize + 10 latency.
        assert_eq!(l.transfer(0, 16), 14);
        // Second message must wait for the first to finish serializing.
        assert_eq!(l.transfer(0, 16), 18);
        assert_eq!(l.busy_ticks(), 8);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut l = Link::new(0, 1);
        l.transfer(0, 5); // busy 0..5
        l.transfer(100, 5); // busy 100..105
        assert_eq!(l.busy_ticks(), 10);
        assert!((l.utilization(105) - 10.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn partial_tick_rounds_up() {
        let mut l = Link::new(0, 4);
        assert_eq!(l.transfer(0, 1), 1); // ceil(1/4) = 1 tick
        assert_eq!(l.transfer(0, 5), 3); // ceil(5/4) = 2 ticks, after 1
    }

    #[test]
    fn counters_accumulate() {
        let mut l = Link::new(1, 8);
        l.transfer(0, 64);
        l.transfer(0, 32);
        assert_eq!(l.messages(), 2);
        assert_eq!(l.bytes(), 96);
    }
}
