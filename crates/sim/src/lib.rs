//! # px-sim — deterministic discrete-event simulation substrate
//!
//! The Gilgamesh II architecture study (§3 of the ParalleX paper) and the
//! Data Vortex interconnect are evaluated on a simulator rather than the
//! authors' hypothetical 2020-era silicon. This crate is that simulator
//! substrate: a classic event-calendar discrete-event core with
//!
//! * a total event order `(time, sequence)` → bit-identical reruns for a
//!   given seed,
//! * components addressed by [`CompId`] exchanging user-defined event
//!   payloads,
//! * occupancy-tracking [`Link`]s that model latency + bandwidth +
//!   serialization (the standard `arrival = max(now, next_free) + L + S/B`
//!   store-and-forward model),
//! * measurement helpers ([`Histogram`], [`RateMeter`]) shared by the
//!   architecture experiments.
//!
//! ```
//! use px_sim::{Component, SimCtx, Simulator};
//!
//! struct Ping { left: u32, peer: px_sim::CompId }
//!
//! impl Component<u64> for Ping {
//!     fn handle(&mut self, token: u64, ctx: &mut SimCtx<'_, u64>) {
//!         if self.left > 0 {
//!             self.left -= 1;
//!             ctx.send_after(10, self.peer, token + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add(Ping { left: 3, peer: px_sim::CompId(1) });
//! let b = sim.add(Ping { left: 3, peer: px_sim::CompId(0) });
//! assert_eq!(a, px_sim::CompId(0));
//! assert_eq!(b, px_sim::CompId(1));
//! sim.send_at(0, a, 0u64);
//! sim.run();
//! assert_eq!(sim.now(), 60); // 6 hops of 10 ticks
//! ```

#![warn(missing_docs)]

mod hist;
mod link;
mod queue;
mod sim;

pub use hist::{Histogram, RateMeter};
pub use link::Link;
pub use queue::{EventQueue, QueuedEvent};
pub use sim::{CompId, Component, SimCtx, Simulator};

/// Simulated time in ticks. The architecture models interpret one tick as
/// one clock cycle of the modeled part.
pub type Time = u64;
