//! Measurement helpers: latency histograms and rate meters.

use crate::Time;

/// Power-of-two bucketed histogram for latency-like quantities.
///
/// Bucket `i` covers values in `[2^(i-1), 2^i)` (bucket 0 covers `{0}` and
/// `{1}` lands in bucket 1). Quantiles are estimated by linear
/// interpolation inside the winning bucket — accurate enough for the
/// order-of-magnitude comparisons the experiments make.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]` via intra-bucket interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo_rank = seen as f64;
            let hi_rank = (seen + n) as f64 - 1.0;
            if target <= hi_rank {
                let (lo, hi) = bucket_bounds(i);
                if hi_rank == lo_rank {
                    return (lo + hi) / 2.0;
                }
                let frac = (target - lo_rank) / (hi_rank - lo_rank);
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[inline]
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 0.0)
    } else {
        (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
    }
}

/// Counts completions over simulated time to report a rate.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    events: u64,
    first: Option<Time>,
    last: Time,
}

impl RateMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event at simulated time `t`.
    #[inline]
    pub fn record(&mut self, t: Time) {
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = self.last.max(t);
        self.events += 1;
    }

    /// Events recorded.
    #[inline]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per tick over the observed interval (0 if fewer than 2 events).
    pub fn rate(&self) -> f64 {
        match self.first {
            Some(f) if self.last > f => self.events as f64 / (self.last - f) as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_bracket_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        // Bucketed estimate: must land within a factor of 2 of the truth.
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((512.0..=1024.0).contains(&p99), "p99={p99}");
        assert!(h.p95() <= p99 + 1e-9);
    }

    #[test]
    fn zero_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
        assert!((a.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn rate_meter() {
        let mut r = RateMeter::new();
        r.record(100);
        r.record(200);
        r.record(300);
        assert_eq!(r.events(), 3);
        assert!((r.rate() - 3.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn rate_meter_degenerate() {
        let mut r = RateMeter::new();
        assert_eq!(r.rate(), 0.0);
        r.record(5);
        assert_eq!(r.rate(), 0.0);
    }
}
