//! Regenerates the e2_latency_hiding experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e2_latency_hiding::run();
}
