//! Regenerates the e3_lco_vs_barrier experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e3_lco_vs_barrier::run();
}
