//! Criterion microbenchmarks quantifying the mechanism overheads that the
//! DESIGN.md ablations call out: wire serialization, parcel
//! encode/decode, AGAS resolution (cold / cached / migrated), LCO
//! operations, thread spawn, and cross-locality parcel round trips — plus
//! the batched-transport throughput comparison, whose results are written
//! to `BENCH_micro.json` at the workspace root so the perf trajectory is
//! tracked across PRs.

use criterion::{criterion_group, BatchSize, Criterion};
use px_core::agas::Agas;
use px_core::gid::{Gid, GidKind, LocalityId};
use px_core::parcel::{Continuation, Parcel};
use px_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Serialize, Deserialize)]
struct Payload {
    pos: [f64; 3],
    vel: [f64; 3],
    id: u64,
    tags: Vec<u32>,
}

fn sample_payload() -> Payload {
    Payload {
        pos: [1.0, 2.0, 3.0],
        vel: [0.1, 0.2, 0.3],
        id: 42,
        tags: vec![1, 2, 3, 4, 5, 6, 7, 8],
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let p = sample_payload();
    g.bench_function("encode_struct_96B", |b| {
        b.iter(|| px_wire::to_bytes(black_box(&p)).unwrap())
    });
    let bytes = px_wire::to_bytes(&p).unwrap();
    g.bench_function("decode_struct_96B", |b| {
        b.iter(|| px_wire::from_bytes::<Payload>(black_box(&bytes)).unwrap())
    });
    let big = vec![7u8; 64 * 1024];
    g.bench_function("encode_64KiB_vec", |b| {
        b.iter(|| px_wire::to_bytes(black_box(&big)).unwrap())
    });
    g.finish();
}

fn bench_parcel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parcel");
    let payload = px_core::action::Value::encode(&sample_payload()).unwrap();
    let parcel = Parcel::new(
        Gid::new(LocalityId(3), GidKind::Data, 99),
        px_core::action::ActionId::of("bench/action"),
        payload,
        Continuation::set(Gid::new(LocalityId(0), GidKind::Lco, 7)),
    );
    g.bench_function("encode", |b| b.iter(|| black_box(&parcel).encode()));
    let bytes = parcel.encode();
    g.bench_function("decode", |b| {
        b.iter(|| Parcel::decode(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_agas(c: &mut Criterion) {
    let mut g = c.benchmark_group("agas");
    let agas = Agas::new(8);
    let home = Gid::new(LocalityId(3), GidKind::Data, 10);
    g.bench_function("resolve_birthplace", |b| {
        b.iter(|| agas.resolve(LocalityId(0), black_box(home)))
    });
    let moved = Gid::new(LocalityId(2), GidKind::Data, 11);
    agas.record_migration(moved, LocalityId(5));
    agas.resolve(LocalityId(0), moved); // warm the cache
    g.bench_function("resolve_cached_migrated", |b| {
        b.iter(|| agas.resolve(LocalityId(0), black_box(moved)))
    });
    g.bench_function("resolve_directory_cold", |b| {
        b.iter_batched(
            || {
                agas.invalidate_cache(LocalityId(1), moved);
            },
            |_| agas.resolve(LocalityId(1), black_box(moved)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_lco(c: &mut Criterion) {
    let mut g = c.benchmark_group("lco");
    use px_core::lco::LcoCore;
    let gid = Gid::new(LocalityId(0), GidKind::Lco, 1);
    let v = px_core::action::Value::encode(&1u64).unwrap();
    g.bench_function("future_trigger", |b| {
        b.iter_batched(
            || LcoCore::new_future(gid),
            |mut f| f.trigger(v.clone()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("and_gate_trigger_x8", |b| {
        b.iter_batched(
            || LcoCore::new_and_gate(gid, 8),
            |mut gate| {
                for _ in 0..8 {
                    gate.trigger(px_core::action::Value::unit()).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

struct Ping64;
impl Action for Ping64 {
    const NAME: &'static str = "micro/ping64";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, v: u64) -> u64 {
        v
    }
}

// The runtime bench needs the action registered; rebuild with it.
fn bench_runtime_registered(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_parcels");
    g.sample_size(10);
    let rt = RuntimeBuilder::new(Config::small(2, 1))
        .register::<Ping64>()
        .build()
        .unwrap();
    g.bench_function("typed_action_rtt", |b| {
        b.iter(|| {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Ping64>(
                Gid::locality_root(LocalityId(1)),
                7,
                Continuation::set(fut.gid()),
            )
            .unwrap();
            assert_eq!(rt.wait_future(fut).unwrap(), 7);
        })
    });
    drop(g);
    rt.shutdown();
}

// ---- batched transport throughput ------------------------------------------
//
// The tentpole comparison: parcels/second through the inter-locality wire
// with a real latency model, coalescing disabled (`max_batch_parcels = 1`,
// the pre-batching single-parcel path) vs. enabled at several batch sizes.

/// Wire latency for the throughput runs.
const WIRE_LATENCY_US: u64 = 50;
/// Parcels pushed through the wire per run.
const THROUGHPUT_PARCELS: u64 = 8192;
/// Batch sizes compared (1 = batching off).
const BATCH_SIZES: &[usize] = &[1, 16, 64];

/// One throughput measurement: drive `n` LCO-trigger parcels from
/// locality 0 to an and-gate on locality 1 and wait for the gate.
fn transport_run(batch: usize, n: u64) -> Duration {
    let cfg = Config::small(2, 1)
        .with_latency(Duration::from_micros(WIRE_LATENCY_US))
        .with_max_batch_parcels(batch);
    let rt = RuntimeBuilder::new(cfg).build().unwrap();
    let gate = rt.new_and_gate(LocalityId(1), n);
    let t0 = Instant::now();
    for _ in 0..n {
        rt.trigger(gate, &()).unwrap();
    }
    rt.wait_value(gate).unwrap();
    let elapsed = t0.elapsed();
    rt.shutdown();
    elapsed
}

struct TransportRow {
    batch: usize,
    parcels_per_sec: f64,
    elapsed: Duration,
}

#[derive(Serialize)]
struct TransportRowJson {
    max_batch_parcels: u64,
    parcels_per_sec: f64,
    elapsed_ms: f64,
    speedup_vs_unbatched: f64,
}

#[derive(Serialize)]
struct TransportJson {
    wire_latency_us: u64,
    parcels: u64,
    results: Vec<TransportRowJson>,
}

#[derive(Serialize)]
struct MicroJson {
    bench: String,
    transport: TransportJson,
}

fn bench_transport() -> Vec<TransportRow> {
    println!(
        "\ntransport: {THROUGHPUT_PARCELS} parcels, {WIRE_LATENCY_US} µs wire, \
         batch sizes {BATCH_SIZES:?}"
    );
    BATCH_SIZES
        .iter()
        .map(|&batch| {
            // Best of three: wall-clock runs on shared hosts are noisy
            // and the comparison wants each mode's capability, not its
            // worst interference.
            let elapsed = (0..3)
                .map(|_| transport_run(batch, THROUGHPUT_PARCELS))
                .min()
                .unwrap();
            let pps = THROUGHPUT_PARCELS as f64 / elapsed.as_secs_f64();
            println!(
                "bench transport/parcel_throughput/batch_{batch:<4} \
                 {pps:>12.0} parcels/s  ({elapsed:.2?})"
            );
            TransportRow {
                batch,
                parcels_per_sec: pps,
                elapsed,
            }
        })
        .collect()
}

/// Write `BENCH_micro.json` at the workspace root through the derived
/// `Serialize` impls (the px-bench JSON emitter; no serde_json in the
/// offline crate set, no hand-formatted strings either).
fn write_json(rows: &[TransportRow]) {
    let base = rows
        .iter()
        .find(|r| r.batch == 1)
        .map(|r| r.parcels_per_sec)
        .unwrap_or(f64::NAN);
    let doc = MicroJson {
        bench: "micro".into(),
        transport: TransportJson {
            wire_latency_us: WIRE_LATENCY_US,
            parcels: THROUGHPUT_PARCELS,
            results: rows
                .iter()
                .map(|r| TransportRowJson {
                    max_batch_parcels: r.batch as u64,
                    parcels_per_sec: r.parcels_per_sec,
                    elapsed_ms: r.elapsed.as_secs_f64() * 1e3,
                    speedup_vs_unbatched: r.parcels_per_sec / base,
                })
                .collect(),
        },
    };
    let json = px_bench::json::to_json_pretty(&doc);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_wire,
    bench_parcel,
    bench_agas,
    bench_lco,
    bench_runtime_registered
);

fn main() {
    benches();
    let rows = bench_transport();
    write_json(&rows);
}
