//! Regenerates the e4_percolation experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e4_percolation::run();
}
