//! Regenerates the e8_irregular experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e8_irregular::run();
}
