//! Regenerates the e1_design_point experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e1_design_point::run();
}
