//! Regenerates the e7_modality experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e7_modality::run();
}
