//! Regenerates the e11_starvation experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e11_starvation::run();
}
