//! Regenerates the e9_litlx_overhead experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e9_litlx_overhead::run();
}
