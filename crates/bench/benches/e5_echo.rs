//! Regenerates the e5_echo experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e5_echo::run();
}
