//! Regenerates the e6_work_to_data experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e6_work_to_data::run();
}
