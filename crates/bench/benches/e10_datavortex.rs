//! Regenerates the e10_datavortex experiment table (see DESIGN.md §4, EXPERIMENTS.md).
fn main() {
    px_bench::e10_datavortex::run();
}
