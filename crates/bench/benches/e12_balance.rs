//! E12 bench target: adaptive cross-locality load balancing. Prints both
//! policy-comparison tables and writes `BENCH_balance.json`.

fn main() {
    px_bench::e12_balance::run();
}
