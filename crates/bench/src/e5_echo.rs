//! E5: echo split-phase copy semantics (§2.2).
//!
//! The claim: echo "permits overlap between coherency verification and
//! continued computation with the latest known value, thus reducing the
//! apparent latency and increasing the available parallelism."
//!
//! Workload: a shared writable variable in an echo tree rooted at L0;
//! reader threads at the other localities run `M` iterations of
//! (read replica → compute `G` µs → commit side effects). Two protocols:
//!
//! * **echo split-phase** — the reader issues the validation parcel and
//!   immediately continues into the next iteration with its current
//!   replica value; commits resolve asynchronously (some come back
//!   stale — that is the protocol working, not failing).
//! * **validate-first (blocking analogue)** — the reader fetches the
//!   authoritative value from the root *before* each compute, serializing
//!   a round trip into every iteration — what a coherent-read protocol
//!   costs on this topology.
//!
//! A writer updates the root throughout, so staleness is real.

use crate::table::{ms, print_table};
use px_core::echo;
use px_core::prelude::*;
use px_workloads::synth::spin_for_ns;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Localities (root + readers).
pub const LOCALITIES: usize = 4;
/// Iterations per reader.
pub const ITERS: usize = 100;
/// Compute grain, ns.
pub const GRAIN_NS: u64 = 25_000;
/// Wire latency.
pub const LATENCY: Duration = Duration::from_micros(25);
/// Writer updates during the run.
pub const UPDATES: usize = 20;

/// Result of one protocol run.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Protocol name.
    pub mode: &'static str,
    /// Time until all reader iterations completed.
    pub elapsed: Duration,
    /// Commits validated as current.
    pub ok: u64,
    /// Commits found stale (recomputed with the fresh value).
    pub stale: u64,
}

/// Echo split-phase protocol.
pub fn run_echo() -> Row {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1).with_latency(LATENCY))
        .build()
        .unwrap();
    let tree = echo::create_tree(&rt, LocalityId(0), 2, &0u64).unwrap();
    let gate = rt.new_and_gate(LocalityId(0), ((LOCALITIES - 1) * ITERS) as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let stale_count = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    for l in 1..LOCALITIES {
        let node = tree.local_node(LocalityId(l as u16));
        let root = tree.root;
        let stale_count = stale_count.clone();
        rt.spawn_at(LocalityId(l as u16), move |ctx| {
            fn iterate(
                ctx: &mut Ctx<'_>,
                node: Gid,
                root: Gid,
                gate: Gid,
                left: usize,
                stale_count: Arc<AtomicU64>,
            ) {
                if left == 0 {
                    return;
                }
                // Read the local replica (free), compute with it.
                let (_val, version) =
                    echo::read_local::<u64>(ctx.locality(), node).expect("replica present");
                spin_for_ns(GRAIN_NS);
                // Split-phase commit: issue validation, then continue into
                // the next iteration immediately (the overlap).
                let sc = stale_count.clone();
                echo::commit::<u64, _>(ctx, root, version, move |ctx, outcome| {
                    if matches!(outcome, Ok(echo::CommitOutcome::Stale { .. })) {
                        // Relaxed: stat tally, read after the run joins.
                        sc.fetch_add(1, Ordering::Relaxed);
                    }
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                })
                .unwrap();
                let sc = stale_count;
                iterate_tail(ctx, node, root, gate, left - 1, sc);
            }
            fn iterate_tail(
                ctx: &mut Ctx<'_>,
                node: Gid,
                root: Gid,
                gate: Gid,
                left: usize,
                stale_count: Arc<AtomicU64>,
            ) {
                ctx.spawn(move |ctx| iterate(ctx, node, root, gate, left, stale_count));
            }
            iterate(ctx, node, root, gate, ITERS, stale_count);
        });
    }
    // Writer: periodic root updates.
    let writer_root = tree.root;
    let rt_inner_updates = UPDATES;
    rt.spawn_at(LocalityId(0), move |ctx| {
        fn tick(ctx: &mut Ctx<'_>, root: Gid, k: usize) {
            if k == 0 {
                return;
            }
            spin_for_ns(200_000); // every 200 µs
            let _ = px_core::echo::update_ctx(ctx, root, &(k as u64));
            ctx.spawn(move |ctx| tick(ctx, root, k - 1));
        }
        tick(ctx, writer_root, rt_inner_updates);
    });

    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let (ok, stale) = echo::validation_stats(&rt, tree.root).unwrap();
    rt.shutdown();
    Row {
        mode: "echo split-phase",
        elapsed,
        ok,
        stale,
    }
}

/// Validate-first protocol: a coherent read (root fetch) before every
/// compute.
pub fn run_validate_first() -> Row {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1).with_latency(LATENCY))
        .build()
        .unwrap();
    let tree = echo::create_tree(&rt, LocalityId(0), 2, &0u64).unwrap();
    let gate = rt.new_and_gate(LocalityId(0), ((LOCALITIES - 1) * ITERS) as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);

    let t0 = Instant::now();
    for l in 1..LOCALITIES {
        let root = tree.root;
        rt.spawn_at(LocalityId(l as u16), move |ctx| {
            fn iterate(ctx: &mut Ctx<'_>, root: Gid, gate: Gid, left: usize) {
                if left == 0 {
                    return;
                }
                // Coherent read: validation round trip *before* compute
                // (used version 0 never matches, so the root returns the
                // current value — a fetch).
                echo::commit::<u64, _>(ctx, root, 0, move |ctx, _outcome| {
                    spin_for_ns(GRAIN_NS);
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                    ctx.spawn(move |ctx| iterate(ctx, root, gate, left - 1));
                })
                .unwrap();
            }
            iterate(ctx, root, gate, ITERS);
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let (ok, stale) = echo::validation_stats(&rt, tree.root).unwrap();
    rt.shutdown();
    Row {
        mode: "validate-first",
        elapsed,
        ok,
        stale,
    }
}

/// Print the E5 table.
pub fn run() -> Vec<Row> {
    let rows = vec![run_echo(), run_validate_first()];
    println!(
        "\n[E5] {} readers × {ITERS} iterations, grain {} µs, {} µs wire, {UPDATES} writer updates",
        LOCALITIES - 1,
        GRAIN_NS / 1000,
        LATENCY.as_micros(),
    );
    print_table(
        "E5 — echo split-phase commit vs validate-first (coherent read)",
        &["protocol", "makespan ms", "valid commits", "stale commits"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    ms(r.elapsed),
                    r.ok.to_string(),
                    r.stale.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_phase_overlaps_validation() {
        let _gate = crate::TIMING_GATE.lock();
        let echo = run_echo();
        let blocking = run_validate_first();
        // validate-first serializes an RTT (≥ 50 µs) into each of 100
        // iterations per reader: ≥ 5 ms over the echo run.
        assert!(
            blocking.elapsed > echo.elapsed + Duration::from_millis(3),
            "blocking {:?} vs echo {:?}",
            blocking.elapsed,
            echo.elapsed
        );
        // All commits resolve one way or the other.
        assert_eq!(echo.ok + echo.stale, ((LOCALITIES - 1) * ITERS) as u64);
    }
}
