//! E4: percolation keeps the precious resource busy (§2.2).
//!
//! The claim: "For a precious resource, overhead and latency can greatly
//! degrade system efficiency. Percolation … employs ancillary mechanisms
//! to prestage data and tasks … Prefetching is also a form of prestaging
//! but performed by the compute element itself, thus imposing the
//! overhead burden, and possibly the impact of latency, on it as well."
//!
//! Three deliveries of the same `N × (4 KiB data + G µs kernel)` stream
//! to a one-worker accelerator locality behind a 25 µs wire:
//!
//! * **percolation** — data travels *with* the staged task; the
//!   accelerator only computes;
//! * **prefetch** — the accelerator receives descriptors and issues its
//!   own split-phase fetches (latency largely hidden by task overlap, but
//!   the fetch overhead lands on the accelerator);
//! * **demand (serialized)** — one task in flight at a time, the
//!   accelerator idles for a full fetch round trip per task (no latency
//!   tolerance — the conventional accelerator offload pattern).

use crate::table::{f2, ms, print_table};
use px_core::parcel::Continuation;
use px_core::prelude::*;
use px_litlx::percolate::Directive;
use px_workloads::synth::spin_for_ns;
use std::time::{Duration, Instant};

/// Tasks.
pub const TASKS: usize = 100;
/// Kernel grain, ns.
pub const GRAIN_NS: u64 = 30_000;
/// Data block per task, bytes.
pub const BLOCK: usize = 4096;
/// Wire latency.
pub const LATENCY: Duration = Duration::from_micros(25);

/// Accelerator locality id.
const ACCEL: LocalityId = LocalityId(2);
/// Data home locality id.
const HOME: LocalityId = LocalityId(0);

struct Kernel;
impl Action for Kernel {
    const NAME: &'static str = "e4/kernel";
    type Args = Vec<u8>;
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, data: Vec<u8>) {
        assert_eq!(data.len(), BLOCK);
        spin_for_ns(GRAIN_NS);
    }
}

/// Prefetch-mode descriptor: fetch `block`, compute, signal `gate`.
struct FetchKernel;
impl Action for FetchKernel {
    const NAME: &'static str = "e4/fetch_kernel";
    type Args = (Gid, Gid); // (block, gate)
    type Out = ();
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, (block, gate): (Gid, Gid)) {
        let fut = ctx.fetch_data(block);
        ctx.when_future(fut, move |ctx, data: Vec<u8>| {
            assert_eq!(data.len(), BLOCK);
            spin_for_ns(GRAIN_NS);
            ctx.trigger_value(gate, px_core::action::Value::unit());
        });
    }
}

fn build_rt() -> Runtime {
    RuntimeBuilder::new(
        Config::small(3, 1)
            .with_latency(LATENCY)
            .with_accelerator(ACCEL),
    )
    .register::<Kernel>()
    .register::<FetchKernel>()
    .build()
    .unwrap()
}

/// Measurement for one delivery mode.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Mode name.
    pub mode: &'static str,
    /// Makespan.
    pub elapsed: Duration,
    /// Accelerator busy fraction during the run.
    pub accel_busy: f64,
    /// Staged tasks executed on the accelerator.
    pub staged: u64,
}

fn accel_busy(rt: &Runtime, before: &px_core::stats::LocalityStats) -> f64 {
    let after = rt.stats().localities[ACCEL.0 as usize];
    let d = after.delta_from(before);
    d.busy_ns as f64 / (d.busy_ns + d.idle_ns).max(1) as f64
}

/// Percolation: data rides with the staged task.
pub fn run_percolation() -> Row {
    let rt = build_rt();
    let gate = rt.new_and_gate(HOME, TASKS as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let block = vec![7u8; BLOCK];
    let before = rt.stats().localities[ACCEL.0 as usize];
    let t0 = Instant::now();
    for _ in 0..TASKS {
        Directive::<Kernel>::block(ACCEL, block.clone())
            .with_continuation(Continuation::set(gate))
            .issue_from_driver(&rt)
            .unwrap();
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let row = Row {
        mode: "percolation",
        elapsed,
        accel_busy: accel_busy(&rt, &before),
        staged: rt.stats().localities[ACCEL.0 as usize].staged_executed,
    };
    rt.shutdown();
    row
}

/// Prefetch: the accelerator pulls its own data, split-phase.
pub fn run_prefetch() -> Row {
    let rt = build_rt();
    let gate = rt.new_and_gate(HOME, TASKS as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let blocks: Vec<Gid> = (0..TASKS)
        .map(|_| rt.new_data_at(HOME, vec![7u8; BLOCK]))
        .collect();
    let before = rt.stats().localities[ACCEL.0 as usize];
    let t0 = Instant::now();
    for &b in &blocks {
        rt.send_action::<FetchKernel>(Gid::locality_root(ACCEL), (b, gate), Continuation::none())
            .unwrap();
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let row = Row {
        mode: "prefetch",
        elapsed,
        accel_busy: accel_busy(&rt, &before),
        staged: rt.stats().localities[ACCEL.0 as usize].staged_executed,
    };
    rt.shutdown();
    row
}

/// Demand, serialized: the next task is only dispatched after the
/// previous completes (no latency tolerance at the accelerator).
pub fn run_demand_serialized() -> Row {
    let rt = build_rt();
    let blocks: Vec<Gid> = (0..TASKS)
        .map(|_| rt.new_data_at(HOME, vec![7u8; BLOCK]))
        .collect();
    let before = rt.stats().localities[ACCEL.0 as usize];
    let t0 = Instant::now();
    for &b in &blocks {
        // One-task gate; the driver (standing in for a conventional
        // offload host) waits before dispatching the next task.
        let gate1 = rt.new_and_gate(HOME, 1);
        rt.send_action::<FetchKernel>(Gid::locality_root(ACCEL), (b, gate1), Continuation::none())
            .unwrap();
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate1);
        rt.wait_future(gate_fut).unwrap();
    }
    let elapsed = t0.elapsed();
    let row = Row {
        mode: "demand-serial",
        elapsed,
        accel_busy: accel_busy(&rt, &before),
        staged: rt.stats().localities[ACCEL.0 as usize].staged_executed,
    };
    rt.shutdown();
    row
}

/// Print the E4 table.
pub fn run() -> Vec<Row> {
    let rows = vec![run_percolation(), run_prefetch(), run_demand_serialized()];
    println!(
        "\n[E4] {TASKS} kernels × {} µs on a 1-worker accelerator, {BLOCK} B/task, {} µs wire; compute bound = {} ms",
        GRAIN_NS / 1000,
        LATENCY.as_micros(),
        ms(Duration::from_nanos(TASKS as u64 * GRAIN_NS)),
    );
    print_table(
        "E4 — percolation vs accelerator-side prefetch vs serialized demand fetch",
        &["mode", "makespan ms", "accel busy", "staged tasks"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    ms(r.elapsed),
                    f2(r.accel_busy),
                    r.staged.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percolation_executes_staged() {
        let _gate = crate::TIMING_GATE.lock();
        let r = run_percolation();
        assert_eq!(r.staged as usize, TASKS);
    }

    #[test]
    fn ordering_percolation_beats_serialized_demand() {
        let _gate = crate::TIMING_GATE.lock();
        let perc = run_percolation();
        let demand = run_demand_serialized();
        // Serialized demand pays ≥ one RTT per task: ≥ 100 × 50 µs = 5 ms
        // over the compute bound.
        assert!(
            demand.elapsed > perc.elapsed + Duration::from_millis(3),
            "demand {:?} vs percolation {:?}",
            demand.elapsed,
            perc.elapsed
        );
    }
}
