//! E11: starvation under skewed load (§2.1).
//!
//! The requirement: starvation is "the lack of work and therefore the
//! idle cycles experienced by an execution site … caused either due to
//! inadequate program parallelism or due to poor load balancing";
//! §2.2: "Message-driven computing through parcels allows physical
//! resources (execution locality) to operate via a work queue model."
//!
//! Workload: `N` equal tasks whose *natural* homes are Zipf-skewed over
//! localities (hot data ⇒ hot home). Two placements:
//!
//! * **static-affinity** — every task runs at its skewed home (what a
//!   partitioned-ownership model does);
//! * **work-queue spray** — tasks are dealt round-robin through parcels
//!   (the message-driven work-queue model; affinity traded for balance).
//!
//! The table reports makespan and the idle fraction of the starved
//! localities.

use crate::table::{f2, ms, print_table};
use px_core::prelude::*;
use px_workloads::synth::{spin_for_ns, zipf_assign};
use std::time::{Duration, Instant};

/// Localities. Sized to small physical-core counts: with many more
/// spinning workers than cores, OS fair-share scheduling launders the
/// imbalance this experiment exists to expose (and per-worker wall-clock
/// busy/idle accounting stops meaning anything).
pub const LOCALITIES: usize = 2;
/// Tasks injected.
pub const TASKS: usize = 3_000;
/// Task grain, ns.
pub const GRAIN_NS: u64 = 15_000;

/// One measurement row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Zipf skew of the natural homes.
    pub skew: f64,
    /// Static-affinity makespan.
    pub static_ms: Duration,
    /// Static-affinity mean idle fraction.
    pub static_idle: f64,
    /// Work-queue spray makespan.
    pub spray_ms: Duration,
    /// Spray mean idle fraction.
    pub spray_idle: f64,
}

fn run_placement(homes: &[u32], spray: bool) -> (Duration, f64) {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1))
        .build()
        .unwrap();
    // Completion counting must cost the same under both placements: each
    // task triggers an and-gate *on its own locality* (always the local
    // fast path), and the driver joins all gates.
    let dests: Vec<u16> = homes
        .iter()
        .enumerate()
        .map(|(k, &home)| {
            if spray {
                (k % LOCALITIES) as u16
            } else {
                home as u16
            }
        })
        .collect();
    let mut counts = [0u64; LOCALITIES];
    for &d in &dests {
        counts[d as usize] += 1;
    }
    let gates: Vec<Gid> = counts
        .iter()
        .enumerate()
        .map(|(l, &c)| rt.new_and_gate(LocalityId(l as u16), c))
        .collect();
    let before = rt.stats();
    let t0 = Instant::now();
    for &d in &dests {
        let gate = gates[d as usize];
        rt.spawn_at(LocalityId(d), move |ctx| {
            spin_for_ns(GRAIN_NS);
            ctx.trigger_value(gate, px_core::action::Value::unit());
        });
    }
    for (l, &gate) in gates.iter().enumerate() {
        if counts[l] > 0 {
            let fut: FutureRef<()> = FutureRef::from_gid(gate);
            rt.wait_future(fut).unwrap();
        }
    }
    let elapsed = t0.elapsed();
    let after = rt.stats();
    let d = after.delta_from(&before);
    let idle = 1.0 - d.mean_busy_fraction();
    rt.shutdown();
    (elapsed, idle)
}

/// Sweep skews.
pub fn sweep(skews: &[f64]) -> Vec<Row> {
    skews
        .iter()
        .map(|&skew| {
            let homes = zipf_assign(TASKS, LOCALITIES, skew, 0xcafe);
            let (static_ms, static_idle) = run_placement(&homes, false);
            let (spray_ms, spray_idle) = run_placement(&homes, true);
            Row {
                skew,
                static_ms,
                static_idle,
                spray_ms,
                spray_idle,
            }
        })
        .collect()
}

/// Print the E11 table.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[0.0, 1.5, 3.0]);
    // With LOCALITIES = 2, zipf s = 3.0 puts ~89% of tasks on one home.
    println!(
        "\n[E11] {TASKS} × {} µs tasks over {LOCALITIES} single-worker localities",
        GRAIN_NS / 1000
    );
    print_table(
        "E11 — starvation: static skewed placement vs message-driven work queue",
        &[
            "zipf s",
            "static ms",
            "static idle",
            "work-queue ms",
            "work-queue idle",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    f2(r.skew),
                    ms(r.static_ms),
                    f2(r.static_idle),
                    ms(r.spray_ms),
                    f2(r.spray_idle),
                    f2(r.static_ms.as_secs_f64() / r.spray_ms.as_secs_f64()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn work_queue_beats_static_under_skew() {
        if !crate::has_cores(super::LOCALITIES) {
            return; // no physical parallelism: both placements serialize
        }
        let _gate = crate::TIMING_GATE.lock();
        // Skew 3.0 puts ~89% of the work on one of the two localities —
        // beyond what fair-share scheduling can repair. Timing comparisons
        // on shared hosts are retried; one clean pass demonstrates the
        // mechanism.
        let mut last = String::new();
        for _ in 0..3 {
            let rows = super::sweep(&[3.0]);
            let r = rows[0];
            let ratio = r.static_ms.as_secs_f64() / r.spray_ms.as_secs_f64();
            if ratio > 1.25 && r.static_idle > r.spray_idle {
                return;
            }
            last = format!(
                "static {:?} (idle {:.3}) vs spray {:?} (idle {:.3})",
                r.static_ms, r.static_idle, r.spray_ms, r.spray_idle
            );
        }
        panic!("{last}");
    }
}
