//! E2: intrinsic latency hiding (§2.2).
//!
//! The claim: "Message-driven computing through parcels … largely
//! circumvents idle cycles due to blocking on remote access delays."
//!
//! Workload: each of `L` localities/ranks processes `T` tasks; a task
//! needs one remote datum (1 KiB from the neighbor) and then `G` µs of
//! compute. The ParalleX version issues all fetches split-phase and
//! computes as values arrive; the CSP version does the MPI-natural thing —
//! blocking get, then compute — with a zero-cost remote responder
//! (deliberately generous to the baseline). Sweep the injected wire
//! latency and watch the blocking model's time grow linearly while the
//! split-phase model stays near the compute bound.

use crate::table::{f2, ms, print_table};
use px_baseline::csp::World;
use px_core::net::WireModel;
use px_core::prelude::*;
use px_workloads::synth::spin_for_ns;
use std::time::{Duration, Instant};

/// Localities / ranks.
pub const LOCALITIES: usize = 4;
/// Tasks per locality.
pub const TASKS: usize = 200;
/// Compute grain per task, ns.
pub const GRAIN_NS: u64 = 20_000;
/// Remote datum size, bytes.
pub const BLOCK: usize = 1024;

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Injected one-way latency.
    pub latency: Duration,
    /// ParalleX makespan.
    pub px: Duration,
    /// CSP makespan (max over ranks).
    pub csp: Duration,
    /// ParalleX worker busy fraction during the run.
    pub px_busy: f64,
    /// csp / px speedup.
    pub speedup: f64,
}

/// Run the ParalleX side once; returns (elapsed, busy fraction).
pub fn run_parallex(latency: Duration) -> (Duration, f64) {
    run_parallex_n(latency, TASKS)
}

/// [`run_parallex`] with an explicit per-locality task count.
pub fn run_parallex_n(latency: Duration, tasks: usize) -> (Duration, f64) {
    let cfg = Config::small(LOCALITIES, 1).with_latency(latency);
    let rt = RuntimeBuilder::new(cfg).build().unwrap();
    // One 1 KiB block per locality, fetched by the neighbor.
    let blocks: Vec<Gid> = (0..LOCALITIES)
        .map(|i| rt.new_data_at(LocalityId(i as u16), vec![0xabu8; BLOCK]))
        .collect();
    let gate = rt.new_and_gate(LocalityId(0), (LOCALITIES * tasks) as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);

    let before = rt.stats().total();
    let t0 = Instant::now();
    for i in 0..LOCALITIES {
        let remote = blocks[(i + 1) % LOCALITIES];
        rt.spawn_at(LocalityId(i as u16), move |ctx| {
            for _ in 0..tasks {
                let fut = ctx.fetch_data(remote);
                ctx.when_future(fut, move |ctx, _bytes: Vec<u8>| {
                    spin_for_ns(GRAIN_NS);
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                });
            }
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let after = rt.stats().total();
    let d = after.delta_from(&before);
    let busy = d.busy_ns as f64 / (d.busy_ns + d.idle_ns).max(1) as f64;
    rt.shutdown();
    (elapsed, busy)
}

/// Run the CSP side once; returns the max rank makespan.
pub fn run_csp(latency: Duration) -> Duration {
    run_csp_n(latency, TASKS)
}

/// [`run_csp`] with an explicit per-rank task count.
pub fn run_csp_n(latency: Duration, tasks: usize) -> Duration {
    let model = WireModel {
        latency,
        ns_per_byte: 0,
    };
    let times = World::run(LOCALITIES, model, move |mut rank| {
        rank.store_put(0, vec![0xabu8; BLOCK]);
        rank.barrier();
        let neighbor = (rank.id() + 1) % rank.world_size();
        let t0 = Instant::now();
        for _ in 0..tasks {
            let _block = rank.store_get(neighbor, 0); // blocking RTT
            spin_for_ns(GRAIN_NS);
        }
        t0.elapsed()
    });
    times.into_iter().max().unwrap()
}

/// Full sweep (median of `reps`).
pub fn sweep(latencies_us: &[u64], reps: usize) -> Vec<Row> {
    latencies_us
        .iter()
        .map(|&us| {
            let latency = Duration::from_micros(us);
            let mut pxs = Vec::new();
            let mut busys = Vec::new();
            let mut csps = Vec::new();
            for _ in 0..reps {
                let (p, b) = run_parallex(latency);
                pxs.push(p);
                busys.push(b);
                csps.push(run_csp(latency));
            }
            pxs.sort();
            csps.sort();
            busys.sort_by(f64::total_cmp);
            let px = pxs[pxs.len() / 2];
            let csp = csps[csps.len() / 2];
            Row {
                latency,
                px,
                csp,
                px_busy: busys[busys.len() / 2],
                speedup: csp.as_secs_f64() / px.as_secs_f64(),
            }
        })
        .collect()
}

/// Print the E2 table.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[0, 10, 25, 50, 100], 3);
    let compute_bound = Duration::from_nanos(TASKS as u64 * GRAIN_NS);
    println!(
        "\n[E2] {LOCALITIES} localities × {TASKS} tasks, grain {} µs, block {BLOCK} B; per-locality compute bound = {} ms",
        GRAIN_NS / 1000,
        ms(compute_bound),
    );
    print_table(
        "E2 — latency hiding: split-phase parcels vs blocking CSP",
        &["latency µs", "ParalleX ms", "CSP ms", "PX busy", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.latency.as_micros().to_string(),
                    ms(r.px),
                    ms(r.csp),
                    f2(r.px_busy),
                    f2(r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-only variant with few tasks and a large latency: the blocking
    /// penalty (tasks × 2 × latency) then dwarfs debug-build overhead and
    /// scheduler noise, so the shape assertion is robust even on a 2-core
    /// CI host. The printed table uses the finer sweep.
    fn shape_once() -> Result<(), String> {
        // 50 tasks × 2 × 500 µs = 50 ms of serialized blocking per rank.
        let latency = Duration::from_micros(500);
        let (px_zero, _) = run_parallex_n(Duration::ZERO, 50);
        let (px_high, _) = run_parallex_n(latency, 50);
        let csp_zero = run_csp_n(Duration::ZERO, 50);
        let csp_high = run_csp_n(latency, 50);
        let csp_delta = csp_high.saturating_sub(csp_zero);
        let px_delta = px_high.saturating_sub(px_zero);
        if csp_delta < Duration::from_millis(30) {
            return Err(format!("CSP must degrade ≥30ms, got {csp_delta:?}"));
        }
        if px_delta > csp_delta / 2 {
            return Err(format!(
                "ParalleX absorbed too much latency: {px_delta:?} vs CSP {csp_delta:?}"
            ));
        }
        if csp_high.as_secs_f64() / px_high.as_secs_f64() < 1.5 {
            return Err(format!("speedup too low: csp {csp_high:?} px {px_high:?}"));
        }
        Ok(())
    }

    #[test]
    fn latency_hiding_shape() {
        let _gate = crate::TIMING_GATE.lock();
        // Timing comparisons on shared CI hosts are retried: one clean
        // pass out of three demonstrates the mechanism.
        let mut last = String::new();
        for _ in 0..3 {
            match shape_once() {
                Ok(()) => return,
                Err(e) => last = e,
            }
        }
        panic!("{last}");
    }
}
