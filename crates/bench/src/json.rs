//! JSON emission for the `BENCH_*.json` artifacts, driven by the same
//! derived `serde::Serialize` impls that feed the wire format.
//!
//! The offline crate set has no `serde_json`, and the wire data model is
//! positional — but the derive also emits *structural markers*
//! (`begin_struct`/`field`/`end_struct`, tuple and variant markers; see
//! `serde::ser::Serializer`) that the wire serializer ignores. This
//! module overrides them to reconstruct named JSON objects, so every
//! bench result struct (`#[derive(Serialize)]`) — including
//! `px_core::stats::StatsSnapshot` — prints as real JSON without a
//! hand-formatted string in sight.
//!
//! Supported shapes: named structs, tuple structs, slices/`Vec`s,
//! `Option` (as `null`/value), scalars, strings, and enums (unit
//! variants as `"Name"`, payload variants as `{"Name": ...}`). Maps and
//! fixed-size arrays serialize without self-delimiting markers in this
//! data model and are not supported here — bench artifacts don't use
//! them.

use serde::ser::{Error as SerError, Serialize, Serializer};
use std::fmt::Display;

/// Serialize any derived value to pretty-printed JSON.
pub fn to_json_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = JsonSerializer::default();
    value
        .serialize(&mut s)
        .expect("JSON emission is infallible for supported shapes");
    s.finish()
}

/// Error type (never actually produced; required by the trait).
#[derive(Debug)]
pub struct JsonError(String);

impl Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}
impl std::error::Error for JsonError {}
impl SerError for JsonError {
    fn custom<T: Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

enum Frame {
    /// `{` opened by `begin_struct`; closed by `end_struct`.
    Struct { any_field: bool },
    /// `[` opened by `put_seq_len`/`begin_tuple`; closes when `remaining`
    /// completed child values have been written.
    Seq { remaining: usize, any: bool },
    /// `{"Variant":` wrapper awaiting one payload value.
    Variant,
}

/// The JSON-emitting [`Serializer`]. Indentation is two spaces; output
/// ends with a trailing newline (diff-friendly committed artifacts).
#[derive(Default)]
pub struct JsonSerializer {
    out: String,
    stack: Vec<Frame>,
    /// Variant name announced but not yet resolved to unit-vs-payload.
    pending_variant: Option<&'static str>,
}

impl JsonSerializer {
    fn finish(mut self) -> String {
        self.flush_pending_variant();
        self.out.push('\n');
        self.out
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// A unit variant is only recognizable once the *next* event arrives
    /// (payload variants open a struct/tuple immediately): emit the
    /// pending name as a complete string value.
    fn flush_pending_variant(&mut self) {
        if let Some(name) = self.pending_variant.take() {
            self.sep();
            self.push_str_escaped(name);
            self.value_done();
        }
    }

    /// Separator/newline bookkeeping before a value in a sequence
    /// position (fields handle their own separators in `field`).
    fn sep(&mut self) {
        if let Some(Frame::Seq { any, .. }) = self.stack.last_mut() {
            let first = !*any;
            *any = true;
            if !first {
                self.out.push(',');
            }
            self.out.push('\n');
            self.indent();
        }
    }

    /// A complete value was written: close any sequences it completed.
    fn value_done(&mut self) {
        loop {
            match self.stack.last_mut() {
                Some(Frame::Seq { remaining, .. }) => {
                    *remaining -= 1;
                    if *remaining > 0 {
                        return;
                    }
                    self.stack.pop();
                    self.out.push('\n');
                    self.indent();
                    self.out.push(']');
                    // The closed array is itself a completed value.
                }
                Some(Frame::Variant) => {
                    self.stack.pop();
                    self.out.push('}');
                }
                _ => return,
            }
        }
    }

    fn scalar(&mut self, v: impl Display) -> Result<(), JsonError> {
        self.flush_pending_variant();
        self.sep();
        self.out.push_str(&v.to_string());
        self.value_done();
        Ok(())
    }

    fn push_str_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn float(&mut self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            // Always keep a decimal point so the value reads back as a
            // float, and cap noise at 6 fractional digits like the
            // hand-formatted artifacts did.
            let mut s = format!("{v:.6}");
            while s.ends_with('0') && !s.ends_with(".0") {
                s.pop();
            }
            self.scalar(s)
        } else {
            self.scalar("null") // JSON has no NaN/inf
        }
    }
}

impl Serializer for JsonSerializer {
    type Error = JsonError;

    fn put_bool(&mut self, v: bool) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_u8(&mut self, v: u8) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_u16(&mut self, v: u16) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_u32(&mut self, v: u32) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_u64(&mut self, v: u64) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_u128(&mut self, v: u128) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_i8(&mut self, v: i8) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_i16(&mut self, v: i16) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_i32(&mut self, v: i32) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_i64(&mut self, v: i64) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_i128(&mut self, v: i128) -> Result<(), JsonError> {
        self.scalar(v)
    }
    fn put_f32(&mut self, v: f32) -> Result<(), JsonError> {
        self.float(f64::from(v))
    }
    fn put_f64(&mut self, v: f64) -> Result<(), JsonError> {
        self.float(v)
    }
    fn put_char(&mut self, v: char) -> Result<(), JsonError> {
        self.put_str(&v.to_string())
    }

    fn put_str(&mut self, v: &str) -> Result<(), JsonError> {
        self.flush_pending_variant();
        self.sep();
        self.push_str_escaped(v);
        self.value_done();
        Ok(())
    }

    fn put_seq_len(&mut self, len: usize) -> Result<(), JsonError> {
        self.flush_pending_variant();
        self.sep();
        self.out.push('[');
        if len == 0 {
            self.out.push(']');
            self.value_done();
        } else {
            self.stack.push(Frame::Seq {
                remaining: len,
                any: false,
            });
        }
        Ok(())
    }

    fn put_opt_tag(&mut self, is_some: bool) -> Result<(), JsonError> {
        if !is_some {
            self.scalar("null")?;
        }
        // `Some` is transparent: the payload is the value.
        Ok(())
    }

    fn put_variant(&mut self, _index: u32) -> Result<(), JsonError> {
        // The name (from `variant`) drives JSON; the index is the wire
        // format's concern.
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _fields: usize) -> Result<(), JsonError> {
        if let Some(name) = self.pending_variant.take() {
            self.sep();
            self.out.push('{');
            self.push_str_escaped(name);
            self.out.push_str(": ");
            self.stack.push(Frame::Variant);
        } else {
            self.sep();
        }
        self.out.push('{');
        self.stack.push(Frame::Struct { any_field: false });
        Ok(())
    }

    fn field(&mut self, name: &'static str) -> Result<(), JsonError> {
        // A pending unit variant is the *previous* field's value.
        self.flush_pending_variant();
        if let Some(Frame::Struct { any_field }) = self.stack.last_mut() {
            let first = !*any_field;
            *any_field = true;
            if !first {
                self.out.push(',');
            }
        }
        self.out.push('\n');
        self.indent();
        self.push_str_escaped(name);
        self.out.push_str(": ");
        Ok(())
    }

    fn end_struct(&mut self) -> Result<(), JsonError> {
        // A pending unit variant is the last field's value.
        self.flush_pending_variant();
        if let Some(Frame::Struct { any_field }) = self.stack.pop() {
            if any_field {
                self.out.push('\n');
                self.indent();
            }
        }
        self.out.push('}');
        self.value_done();
        Ok(())
    }

    fn begin_tuple(&mut self, len: usize) -> Result<(), JsonError> {
        if let Some(name) = self.pending_variant.take() {
            self.sep();
            self.out.push('{');
            self.push_str_escaped(name);
            self.out.push_str(": ");
            self.stack.push(Frame::Variant);
            self.out.push('[');
            if len == 0 {
                self.out.push(']');
                self.value_done();
            } else {
                self.stack.push(Frame::Seq {
                    remaining: len,
                    any: false,
                });
            }
            Ok(())
        } else {
            self.put_seq_len(len)
        }
    }

    fn end_tuple(&mut self) -> Result<(), JsonError> {
        // The element count already closed the bracket in `value_done`.
        Ok(())
    }

    fn variant(&mut self, name: &'static str) -> Result<(), JsonError> {
        self.flush_pending_variant();
        self.pending_variant = Some(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Row {
        policy: String,
        makespan_ms: f64,
        shed: u64,
        on_time: bool,
    }

    #[derive(Serialize, Deserialize)]
    struct Doc {
        bench: String,
        rows: Vec<Row>,
        empty: Vec<u64>,
        tag: Option<u32>,
        missing: Option<u32>,
    }

    #[test]
    fn structs_emit_named_fields() {
        let doc = Doc {
            bench: "e13".into(),
            rows: vec![
                Row {
                    policy: "cancel".into(),
                    makespan_ms: 12.5,
                    shed: 3,
                    on_time: true,
                },
                Row {
                    policy: "off".into(),
                    makespan_ms: 48.0,
                    shed: 0,
                    on_time: false,
                },
            ],
            empty: vec![],
            tag: Some(7),
            missing: None,
        };
        let json = to_json_pretty(&doc);
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.contains("\"bench\": \"e13\""), "{json}");
        assert!(json.contains("\"makespan_ms\": 12.5"), "{json}");
        assert!(json.contains("\"shed\": 3"), "{json}");
        assert!(json.contains("\"on_time\": true"), "{json}");
        assert!(json.contains("\"empty\": []"), "{json}");
        assert!(json.contains("\"tag\": 7"), "{json}");
        assert!(json.contains("\"missing\": null"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        // Two rows → exactly one comma between the row objects.
        assert_eq!(json.matches("\"policy\"").count(), 2);
    }

    /// The trace ring counters ride the derived `Serialize` like every
    /// other stats field — `BENCH_*.json` artifacts that embed
    /// `LocalityStats` report tracing overhead without emitter changes.
    #[test]
    fn locality_stats_emit_trace_counters() {
        let stats = px_core::stats::LocalityStats {
            trace_events_recorded: 42,
            trace_events_dropped: 7,
            ..Default::default()
        };
        let json = to_json_pretty(&stats);
        assert!(json.contains("\"trace_events_recorded\": 42"), "{json}");
        assert!(json.contains("\"trace_events_dropped\": 7"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        #[derive(Serialize)]
        struct S {
            msg: String,
        }
        let json = to_json_pretty(&S {
            msg: "a\"b\\c\nd\te".into(),
        });
        assert!(json.contains(r#""msg": "a\"b\\c\nd\te""#), "{json}");
    }

    #[test]
    fn floats_stay_floats_and_nonfinite_is_null() {
        #[derive(Serialize)]
        struct F {
            a: f64,
            b: f64,
            c: f64,
        }
        let json = to_json_pretty(&F {
            a: 3.0,
            b: 0.125,
            c: f64::NAN,
        });
        assert!(json.contains("\"a\": 3.0"), "{json}");
        assert!(json.contains("\"b\": 0.125"), "{json}");
        assert!(json.contains("\"c\": null"), "{json}");
    }

    #[test]
    fn unit_variants_in_field_position_emit_valid_json() {
        #[derive(Serialize)]
        enum Mode {
            Off,
            On,
        }
        #[derive(Serialize)]
        struct S {
            first: Mode,
            mid: u8,
            last: Mode,
        }
        let json = to_json_pretty(&S {
            first: Mode::Off,
            mid: 9,
            last: Mode::On,
        });
        assert!(json.contains("\"first\": \"Off\""), "{json}");
        assert!(json.contains("\"mid\": 9"), "{json}");
        assert!(json.contains("\"last\": \"On\""), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
    }

    #[test]
    fn enums_and_tuples_emit() {
        #[derive(Serialize)]
        enum E {
            Off,
            Pair(u32, u32),
            Named { x: u8 },
        }
        #[derive(Serialize)]
        struct H {
            modes: Vec<E>,
        }
        let json = to_json_pretty(&H {
            modes: vec![E::Off, E::Pair(1, 2), E::Named { x: 9 }],
        });
        assert!(json.contains("\"Off\""), "{json}");
        assert!(json.contains("{\"Pair\": ["), "{json}");
        assert!(json.contains("{\"Named\": {"), "{json}");
        assert!(json.contains("\"x\": 9"), "{json}");
    }

    #[test]
    fn stats_snapshot_serializes_with_field_names() {
        let snap = px_core::prelude::StatsSnapshot::default();
        let json = to_json_pretty(&snap);
        assert!(json.contains("\"localities\": []"), "{json}");
        assert!(json.contains("\"migrations_manual\": 0"), "{json}");
        assert!(json.contains("\"processes_cancelled\": 0"), "{json}");
    }

    #[test]
    fn wire_bytes_unchanged_by_structural_markers() {
        // The same derive now emits structural markers; the positional
        // wire encoding must be byte-identical to a hand-written layout.
        let r = Row {
            policy: "x".into(),
            makespan_ms: 1.5,
            shed: 2,
            on_time: true,
        };
        let bytes = px_wire::to_bytes(&r).unwrap();
        let mut expected = vec![1u8]; // "x" length varint
        expected.extend_from_slice(b"x");
        expected.extend_from_slice(&1.5f64.to_le_bytes());
        expected.extend_from_slice(&2u64.to_le_bytes());
        expected.push(1);
        assert_eq!(bytes, expected);
    }
}
