//! E3: LCOs vs global barriers (§2.2).
//!
//! The claim: "LCOs eliminate most uses of global barriers greatly freeing
//! the dynamic adaptive flexibility of parallel processing and relaxing
//! the over constraining operation imposed by barriers."
//!
//! Workload: `L` localities each own `K` independent chains of `S`
//! stages; stage grains are lognormal with mean `MEAN_NS` and a swept
//! coefficient of variation. The BSP version barriers after every stage
//! (cost: `Σ_s max_rank(stage work)`); the ParalleX version chains each
//! sequence through local continuations (cost: `max_rank Σ_s(work)`).
//! Identical grains on both sides, same worker counts.

use crate::table::{f2, ms, print_table};
use px_baseline::bsp::supersteps;
use px_baseline::csp::World;
use px_core::net::WireModel;
use px_core::prelude::*;
use px_workloads::synth::{lognormal_work, spin_for_ns};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Localities / ranks (sized to physical cores so the barrier penalty is
/// not masked by OS fair-share scheduling of oversubscribed workers).
pub const LOCALITIES: usize = 2;
/// Chains per locality.
pub const CHAINS: usize = 48;
/// Stages per chain.
pub const STAGES: usize = 12;
/// Mean stage grain, ns.
pub const MEAN_NS: f64 = 40_000.0;

/// Grains indexed `[locality][chain][stage]`.
pub type Grains = Vec<Vec<Vec<u64>>>;

/// Deterministic grains for a CV setting.
pub fn make_grains(cv: f64, seed: u64) -> Grains {
    (0..LOCALITIES)
        .map(|l| {
            (0..CHAINS)
                .map(|c| lognormal_work(STAGES, MEAN_NS, cv, seed ^ ((l * CHAINS + c) as u64) << 8))
                .collect()
        })
        .collect()
}

/// Analytic bounds: (ParalleX bound `max_l Σ`, BSP bound `Σ_s max_l`).
pub fn bounds(grains: &Grains) -> (Duration, Duration) {
    let px = grains
        .iter()
        .map(|loc| loc.iter().flatten().sum::<u64>())
        .max()
        .unwrap();
    let mut bsp = 0u64;
    for s in 0..STAGES {
        bsp += grains
            .iter()
            .map(|loc| loc.iter().map(|chain| chain[s]).sum::<u64>())
            .max()
            .unwrap();
    }
    (Duration::from_nanos(px), Duration::from_nanos(bsp))
}

/// ParalleX: chains run as local continuation sequences; one and-gate
/// collects all chain completions.
pub fn run_parallex(grains: &Grains) -> Duration {
    let rt = RuntimeBuilder::new(Config::small(LOCALITIES, 1))
        .build()
        .unwrap();
    let gate = rt.new_and_gate(LocalityId(0), (LOCALITIES * CHAINS) as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let grains = Arc::new(grains.clone());
    let t0 = Instant::now();
    for l in 0..LOCALITIES {
        let grains = grains.clone();
        rt.spawn_at(LocalityId(l as u16), move |ctx| {
            for c in 0..CHAINS {
                let grains = grains.clone();
                fn step(
                    ctx: &mut Ctx<'_>,
                    grains: Arc<Grains>,
                    l: usize,
                    c: usize,
                    s: usize,
                    gate: Gid,
                ) {
                    spin_for_ns(grains[l][c][s]);
                    if s + 1 < STAGES {
                        ctx.spawn(move |ctx| step(ctx, grains, l, c, s + 1, gate));
                    } else {
                        ctx.trigger_value(gate, px_core::action::Value::unit());
                    }
                }
                ctx.spawn(move |ctx| step(ctx, grains, l, c, 0, gate));
            }
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    rt.shutdown();
    elapsed
}

/// BSP: barrier after every stage.
pub fn run_bsp(grains: &Grains) -> Duration {
    let grains = Arc::new(grains.clone());
    let times = World::run(LOCALITIES, WireModel::instant(), move |mut rank| {
        let id = rank.id();
        let g = grains.clone();
        rank.barrier();
        let t0 = Instant::now();
        supersteps(&mut rank, STAGES, |s, _| {
            for c in 0..CHAINS {
                spin_for_ns(g[id][c][s]);
            }
        });
        t0.elapsed()
    });
    times.into_iter().max().unwrap()
}

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Coefficient of variation of the grains.
    pub cv: f64,
    /// ParalleX measured.
    pub px: Duration,
    /// BSP measured.
    pub bsp: Duration,
    /// Analytic ParalleX bound.
    pub px_bound: Duration,
    /// Analytic BSP bound.
    pub bsp_bound: Duration,
    /// bsp / px.
    pub ratio: f64,
}

/// Sweep CV values.
pub fn sweep(cvs: &[f64]) -> Vec<Row> {
    cvs.iter()
        .map(|&cv| {
            let grains = make_grains(cv, 0x5eed);
            let (px_bound, bsp_bound) = bounds(&grains);
            let px = run_parallex(&grains);
            let bsp = run_bsp(&grains);
            Row {
                cv,
                px,
                bsp,
                px_bound,
                bsp_bound,
                ratio: bsp.as_secs_f64() / px.as_secs_f64(),
            }
        })
        .collect()
}

/// Print the E3 table.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[0.0, 0.5, 1.0, 2.0]);
    println!(
        "\n[E3] {LOCALITIES} localities × {CHAINS} chains × {STAGES} stages, mean grain {} µs",
        MEAN_NS / 1000.0
    );
    print_table(
        "E3 — dataflow LCO chaining vs global barriers under imbalance",
        &[
            "grain CV",
            "ParalleX ms",
            "BSP ms",
            "PX bound ms",
            "BSP bound ms",
            "BSP/PX",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    f2(r.cv),
                    ms(r.px),
                    ms(r.bsp),
                    ms(r.px_bound),
                    ms(r.bsp_bound),
                    f2(r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_penalty_grows_with_imbalance() {
        if !crate::has_cores(LOCALITIES) {
            return; // no physical parallelism: barrier cost is invisible
        }
        let _gate = crate::TIMING_GATE.lock();
        // Retried timing comparison (shared-host jitter).
        let mut last = String::new();
        for _ in 0..3 {
            let rows = sweep(&[0.0, 1.5]);
            let sep = rows[1].bsp_bound > rows[1].px_bound;
            if sep && rows[1].ratio > rows[0].ratio && rows[1].ratio > 1.1 {
                return;
            }
            last = format!(
                "cv0 ratio {:.3}, cv1.5 ratio {:.3} (bounds px {:?} bsp {:?})",
                rows[0].ratio, rows[1].ratio, rows[1].px_bound, rows[1].bsp_bound
            );
        }
        panic!("{last}");
    }

    #[test]
    fn grains_deterministic() {
        assert_eq!(make_grains(1.0, 5), make_grains(1.0, 5));
    }
}
