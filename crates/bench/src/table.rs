//! Minimal fixed-width table printer for experiment output.

/// Print a header + aligned rows; every cell is pre-formatted text.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("  {}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format milliseconds from a `Duration`.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting() {
        let _gate = crate::TIMING_GATE.lock();
        assert_eq!(super::f2(1.234), "1.23");
        assert_eq!(super::f3(0.5), "0.500");
        assert_eq!(super::ms(std::time::Duration::from_micros(1500)), "1.50");
    }
}
