//! `px-bench` binary: run experiments outside the `cargo bench` harness.
//!
//! ```text
//! px-bench e12            # full E12 run (writes BENCH_balance.json)
//! px-bench --smoke e12    # scaled-down E12 (CI smoke; no JSON)
//! px-bench e13            # full E13 run (writes BENCH_tenancy.json)
//! px-bench --smoke e13    # scaled-down E13 (CI smoke; no JSON)
//! px-bench e14            # full E14 run (writes BENCH_dist.json)
//! px-bench --smoke e14    # scaled-down E14 (CI smoke; no JSON)
//! px-bench --smoke e14mesh # 8-rank mesh smoke (CI; no JSON)
//! px-bench e12tcp         # balancer over TCP, 2+4 ranks (table only)
//! px-bench --smoke e12tcp # 2-rank balancer-on vs off (CI; no JSON)
//! ```
//!
//! `--trace` (combinable with `--smoke`; e12/e13/e14) enables sampled
//! causal tracing and prints the slowest traced request's timeline.
//!
//! `--metrics` (combinable with `--smoke`; e14) enables the latency
//! histograms: percentile tables are printed, the rows ride into the
//! BENCH JSON artifact on full runs, and the smoke validates the
//! `metrics_text` exposition format.
//!
//! E14 and E12tcp re-execute this binary as the other ranks of a TCP
//! mesh (`PX_E14_RANK` / `PX_E12TCP_RANK`); the `maybe_child` calls
//! route those invocations. The full E14 run embeds the E12tcp rows in
//! `BENCH_dist.json`.

fn usage() -> ! {
    eprintln!(
        "usage: px-bench [--smoke] [--trace] [--metrics] <experiment>\n\
         experiments: e11, e12, e12tcp, e13, e14, e14mesh"
    );
    std::process::exit(2);
}

fn main() {
    px_bench::e14_distributed::maybe_child();
    px_bench::e12_tcp::maybe_child();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trace") {
        args.retain(|a| a != "--trace");
        // Relaxed: flag set in main before any runtime thread exists.
        px_bench::TRACE.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    if args.iter().any(|a| a == "--metrics") {
        args.retain(|a| a != "--metrics");
        // Relaxed: flag set in main before any runtime thread exists.
        px_bench::METRICS.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let (smoke, name) = match args.as_slice() {
        [name] => (false, name.as_str()),
        [flag, name] if flag == "--smoke" => (true, name.as_str()),
        _ => usage(),
    };
    match (name, smoke) {
        ("e12", true) => {
            px_bench::e12_balance::smoke();
        }
        ("e12", false) => {
            px_bench::e12_balance::run();
        }
        ("e12tcp", true) => {
            px_bench::e12_tcp::smoke();
        }
        ("e12tcp", false) => {
            px_bench::e12_tcp::run();
        }
        ("e13", true) => {
            px_bench::e13_tenancy::smoke();
        }
        ("e13", false) => {
            px_bench::e13_tenancy::run();
        }
        ("e14", true) => {
            px_bench::e14_distributed::smoke();
        }
        ("e14", false) => {
            px_bench::e14_distributed::run();
        }
        ("e14mesh", _) => {
            px_bench::e14_distributed::mesh_smoke();
        }
        ("e11", _) => {
            px_bench::e11_starvation::run();
        }
        _ => usage(),
    }
}
