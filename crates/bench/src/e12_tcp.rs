//! E12-over-TCP: the distributed AGAS directory pays off across real
//! OS processes.
//!
//! The in-process E12 showed the balancer's ~3x on skewed spawns and
//! hot objects; until the home-based distributed directory landed, the
//! balancer was telemetry-only over TCP and `migrate_data` refused to
//! cross ranks. This experiment reruns both E12 shapes on real 2- and
//! 4-rank loopback meshes, balancer-off vs adaptive:
//!
//! * **skewed-spawn** — rank 0 injects `N` equal blocking tasks as
//!   *parcel-bound* work (action parcels addressed at locality roots,
//!   so they execute wherever shedding delivers them — closures never
//!   cross an OS boundary) with Zipf-skewed homes. Only cross-rank work
//!   diffusion fixes this; the ideal gain is bounded by the skew and
//!   the rank count (~1.8x at 2 ranks, ~3x at 4).
//! * **hot-objects** — per hot object, a *serial dependency chain*
//!   bounces caller-rank → object → caller-rank for `hops` rounds. All
//!   objects are born on rank 0; half (2 ranks) to three quarters
//!   (4 ranks) of the chains run from remote callers, so balancer-off
//!   pays two wire crossings per hop on the critical path. Data-to-work
//!   migration pulls each object to its dominant caller and the chain
//!   goes local: the win is *latency elimination*, not load splitting,
//!   and lands well above 2x.
//!
//! The rows ride into `BENCH_dist.json` (see [`crate::e14_distributed`],
//! which owns that artifact); `--smoke e12tcp` runs the 2-rank pair in
//! CI without writing JSON.

use crate::table::{f2, ms, print_table};
use px_core::prelude::*;
use px_workloads::synth::{sleep_for_ns, zipf_assign};
use serde::Serialize;
use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The environment variable that turns a `px-bench` invocation into a
/// serving rank of the e12tcp mesh.
pub const RANK_ENV: &str = "PX_E12TCP_RANK";
const ADDRS_ENV: &str = "PX_E12TCP_ADDRS";
/// `"adaptive"` enables the balancer on the child rank (the mesh must
/// agree: shedding and pulling are rank-local decisions).
const POLICY_ENV: &str = "PX_E12TCP_POLICY";

/// Zipf skew of the spawn homes (same shape as the in-process E12).
pub const SKEW: f64 = 3.0;

/// Experiment sizes (shrunk by `smoke`).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tasks in the skewed-spawn workload.
    pub tasks: usize,
    /// Per-task blocking grain, ns (skewed-spawn).
    pub grain_ns: u64,
    /// Hot objects (= serial chains) in the hot-objects workload.
    pub objects: usize,
    /// Rounds per chain.
    pub hops: u32,
    /// Per-hop blocking grain at the object, ns (small on purpose: the
    /// chain is latency-bound, that is the point).
    pub hot_grain_ns: u64,
}

/// Full-size parameters (the JSON run).
pub const FULL: Params = Params {
    tasks: 1200,
    grain_ns: 250_000,
    objects: 8,
    hops: 250,
    hot_grain_ns: 20_000,
};

/// Smoke-test parameters (CI; loopback-only).
pub const SMOKE: Params = Params {
    tasks: 200,
    grain_ns: 100_000,
    objects: 4,
    hops: 60,
    hot_grain_ns: 20_000,
};

/// The skewed-spawn task: block for the grain wherever the parcel was
/// delivered (its home, or the rank shedding moved it to).
struct Sleep;
impl Action for Sleep {
    const NAME: &'static str = "e12tcp/sleep";
    type Args = u64;
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, grain_ns: u64) {
        sleep_for_ns(grain_ns);
    }
}

/// One object-side hop of a dependency chain: block for the grain at
/// whichever rank currently owns the object, then bounce back to the
/// caller (or trigger the completion gate on the last round).
struct Hop;
impl Action for Hop {
    const NAME: &'static str = "e12tcp/hop";
    // (caller locality, remaining rounds, grain ns, completion gate gid)
    type Args = (u16, u32, u64, u64);
    type Out = ();
    fn execute(
        ctx: &mut Ctx<'_>,
        target: Gid,
        (caller, remaining, grain, gate): (u16, u32, u64, u64),
    ) {
        sleep_for_ns(grain);
        if remaining == 0 {
            ctx.trigger_value(Gid(gate), Value::unit());
        } else {
            ctx.send::<Relay>(
                Gid::locality_root(LocalityId(caller)),
                (target.0, caller, remaining - 1, grain, gate),
                Continuation::none(),
            )
            .unwrap();
        }
    }
}

/// The caller-side half of a chain round: re-address the object *from
/// the caller's rank*. This send is what records access heat at the
/// caller, so the balancer's data-to-work policy pulls the object here.
struct Relay;
impl Action for Relay {
    const NAME: &'static str = "e12tcp/relay";
    // (object gid, caller locality, remaining rounds, grain ns, gate gid)
    type Args = (u64, u16, u32, u64, u64);
    type Out = ();
    fn execute(
        ctx: &mut Ctx<'_>,
        _t: Gid,
        (obj, caller, remaining, grain, gate): (u64, u16, u32, u64, u64),
    ) {
        ctx.send::<Hop>(
            Gid(obj),
            (caller, remaining, grain, gate),
            Continuation::none(),
        )
        .unwrap();
    }
}

fn config(rank: u16, addrs: Vec<String>, adaptive: bool, p: &Params) -> Config {
    let cfg = Config::small(addrs.len(), 1).with_tcp(rank, addrs);
    if !adaptive {
        return cfg;
    }
    let mut balance = BalanceConfig::adaptive();
    // A *serial* chain accrues one heat unit per wire round trip — a
    // couple per 1ms round at loopback RTTs — so the pull trigger must
    // be far more sensitive than the in-process E12's: any remote
    // traffic at all justifies a pull when the scores agree (ping-pong
    // needs two competing callers, and heat is drained per round, so a
    // single stray access cannot oscillate an object).
    balance.gossip_interval = Duration::from_millis(1);
    balance.max_shed_per_round = (p.tasks as u64 / 16).max(32);
    balance.heat_threshold = 1;
    balance.max_pulls_per_round = (p.objects as u64).max(1);
    cfg.with_balance(balance)
}

fn build_rank0(addrs: Vec<String>, adaptive: bool, p: &Params) -> Runtime {
    RuntimeBuilder::new(crate::apply_trace(config(0, addrs, adaptive, p)))
        .register::<Sleep>()
        .register::<Hop>()
        .register::<Relay>()
        .build()
        .expect("rank 0 bootstrap")
}

/// If this process was spawned as an e12tcp mesh peer, serve and exit —
/// call first from `main`. Serves until the parent closes stdin.
pub fn maybe_child() {
    let Ok(rank) = std::env::var(RANK_ENV) else {
        return;
    };
    let rank: u16 = rank.parse().expect("numeric rank");
    let addrs: Vec<String> = std::env::var(ADDRS_ENV)
        .expect("mesh peers need the address list")
        .split(',')
        .map(String::from)
        .collect();
    let adaptive = std::env::var(POLICY_ENV).is_ok_and(|v| v == "adaptive");
    // The caps in `FULL` are generous for every leg; shedding and
    // pulling self-limit through gossip, so the exact parent params do
    // not need to cross the process boundary.
    let rt = RuntimeBuilder::new(config(rank, addrs, adaptive, &FULL))
        .register::<Sleep>()
        .register::<Hop>()
        .register::<Relay>()
        .build()
        .expect("mesh peer bootstrap");
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    rt.shutdown();
    std::process::exit(0);
}

/// Reserve `n` loopback listen addresses.
fn reserve_addrs(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        })
        .collect()
}

/// Re-execute this binary as ranks 1..n with the given balancer policy.
fn spawn_peers(addrs: &[String], adaptive: bool, child_args: &[&str]) -> Vec<std::process::Child> {
    let exe = std::env::current_exe().expect("own path");
    (1..addrs.len())
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.args(child_args)
                .env(RANK_ENV, rank.to_string())
                .env(ADDRS_ENV, addrs.join(","))
                .stdin(Stdio::piped())
                .stdout(Stdio::null());
            if adaptive {
                cmd.env(POLICY_ENV, "adaptive");
            }
            cmd.spawn().expect("spawn mesh peer")
        })
        .collect()
}

/// Close the peers' stdin (their exit signal) and reap them.
fn join_peers(peers: Vec<std::process::Child>) {
    let mut peers = peers;
    for child in &mut peers {
        drop(child.stdin.take());
    }
    for mut child in peers {
        let status = child.wait().expect("join mesh peer");
        assert!(status.success(), "mesh peer failed: {status:?}");
    }
}

/// One measured leg — the `BENCH_dist.json` row schema.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// `"skewed-spawn"` or `"hot-objects"`.
    pub workload: String,
    /// Mesh size (OS processes).
    pub ranks: u64,
    /// `"off"` or `"adaptive"`.
    pub policy: String,
    /// Wall-clock makespan, milliseconds.
    pub makespan_ms: f64,
    /// Makespan(off) / makespan(this row), within the same workload and
    /// mesh size (1.0 for the off rows).
    pub speedup_vs_off: f64,
    /// Tasks shed across ranks by work diffusion (rank 0's count).
    pub tasks_shed: u64,
    /// Balancer-initiated migrations recorded at rank 0.
    pub migrations_balancer: u64,
    /// Remote directory lookups at rank 0 (chases that asked home).
    pub dir_lookups_remote: u64,
    /// Directory repairs applied at rank 0.
    pub dir_repairs: u64,
    /// Parcels forwarded by AGAS chases at rank 0.
    pub parcels_forwarded: u64,
}

fn collect_row(
    workload: &str,
    ranks: usize,
    adaptive: bool,
    makespan: Duration,
    rt: &Runtime,
) -> Row {
    let stats = rt.stats();
    let t = stats.total();
    Row {
        workload: workload.to_string(),
        ranks: ranks as u64,
        policy: if adaptive { "adaptive" } else { "off" }.to_string(),
        makespan_ms: makespan.as_secs_f64() * 1e3,
        speedup_vs_off: 1.0,
        tasks_shed: t.tasks_shed,
        migrations_balancer: stats.migrations_balancer,
        dir_lookups_remote: t.dir_lookups_remote,
        dir_repairs: t.dir_repairs,
        parcels_forwarded: t.parcels_forwarded,
    }
}

/// Skewed-spawn leg: Zipf homes over the mesh, every task a parcel
/// addressed at its home rank's locality root, one completion gate on
/// rank 0.
pub fn run_skewed_spawn(ranks: usize, adaptive: bool, p: &Params, child_args: &[&str]) -> Row {
    let addrs = reserve_addrs(ranks);
    let peers = spawn_peers(&addrs, adaptive, child_args);
    let rt = build_rank0(addrs, adaptive, p);
    let homes = zipf_assign(p.tasks, ranks, SKEW, 0xe12);
    let gate = rt.new_and_gate(LocalityId(0), p.tasks as u64);
    let fut: FutureRef<()> = FutureRef::from_gid(gate);
    let t0 = Instant::now();
    for &home in &homes {
        rt.send_action::<Sleep>(
            Gid::locality_root(LocalityId(home as u16)),
            p.grain_ns,
            Continuation::set(gate),
        )
        .unwrap();
    }
    rt.wait_future(fut).unwrap();
    let makespan = t0.elapsed();
    let row = collect_row("skewed-spawn", ranks, adaptive, makespan, &rt);
    join_peers(peers);
    rt.shutdown();
    row
}

/// Hot-objects leg: all objects born on rank 0, one serial
/// caller↔object chain per object, callers round-robined over the
/// ranks. Balancer-off pays two wire crossings per hop on every remote
/// chain's critical path; adaptive migrates each object to its caller.
pub fn run_hot_objects(ranks: usize, adaptive: bool, p: &Params, child_args: &[&str]) -> Row {
    let addrs = reserve_addrs(ranks);
    let peers = spawn_peers(&addrs, adaptive, child_args);
    let rt = build_rank0(addrs, adaptive, p);
    let objects: Vec<Gid> = (0..p.objects)
        .map(|_| rt.new_data_at(LocalityId(0), vec![0u8; 64]))
        .collect();
    let gate = rt.new_and_gate(LocalityId(0), p.objects as u64);
    let fut: FutureRef<()> = FutureRef::from_gid(gate);
    let t0 = Instant::now();
    for (k, &obj) in objects.iter().enumerate() {
        let caller = (k % ranks) as u16;
        rt.send_action::<Relay>(
            Gid::locality_root(LocalityId(caller)),
            (obj.0, caller, p.hops, p.hot_grain_ns, gate.0),
            Continuation::none(),
        )
        .unwrap();
    }
    rt.wait_future(fut).unwrap();
    let makespan = t0.elapsed();
    let row = collect_row("hot-objects", ranks, adaptive, makespan, &rt);
    join_peers(peers);
    rt.shutdown();
    row
}

fn pair(
    workload: fn(usize, bool, &Params, &[&str]) -> Row,
    ranks: usize,
    p: &Params,
    child_args: &[&str],
) -> [Row; 2] {
    let off = workload(ranks, false, p, child_args);
    let mut adaptive = workload(ranks, true, p, child_args);
    adaptive.speedup_vs_off = off.makespan_ms / adaptive.makespan_ms;
    [off, adaptive]
}

fn print_rows(title: &str, rows: &[Row]) {
    print_table(
        title,
        &[
            "workload",
            "ranks",
            "policy",
            "makespan",
            "speedup",
            "shed",
            "migrations",
            "dir rlu",
            "repairs",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.ranks.to_string(),
                    r.policy.clone(),
                    ms(Duration::from_secs_f64(r.makespan_ms / 1e3)),
                    f2(r.speedup_vs_off),
                    r.tasks_shed.to_string(),
                    r.migrations_balancer.to_string(),
                    r.dir_lookups_remote.to_string(),
                    r.dir_repairs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Run both workloads at each mesh size, balancer-off vs adaptive.
/// Returns all rows (the `BENCH_dist.json` payload — E14 owns the file).
pub fn legs(rank_counts: &[usize], p: &Params, child_args: &[&str]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        println!(
            "\n[E12tcp] {ranks}-rank mesh: {} skewed tasks, {} chains × {} hops",
            p.tasks, p.objects, p.hops
        );
        rows.extend(pair(run_skewed_spawn, ranks, p, child_args));
        rows.extend(pair(run_hot_objects, ranks, p, child_args));
    }
    print_rows(
        "E12tcp — balancer over TCP: adaptive vs off across mesh sizes",
        &rows,
    );
    rows
}

/// Full experiment: both workloads at 2 and 4 ranks. The rows are
/// embedded in `BENCH_dist.json` by the E14 full run; invoked standalone
/// this prints the table only.
pub fn run() -> Vec<Row> {
    legs(&[2, 4], &FULL, &[])
}

/// CI smoke: the 2-rank pair, scaled down, no JSON. Asserts the
/// balancer actually engaged across the process boundary (counters, not
/// wall-clock: CI boxes are noisy).
pub fn smoke() -> Vec<Row> {
    let rows = legs(&[2], &SMOKE, &[]);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.makespan_ms > 0.0, "degenerate measurement: {r:?}");
        if r.policy == "off" {
            assert_eq!(r.tasks_shed, 0, "off run must not shed: {r:?}");
            assert_eq!(r.migrations_balancer, 0, "off run must not migrate: {r:?}");
        }
    }
    let hot_adaptive = &rows[3];
    assert!(
        hot_adaptive.migrations_balancer > 0,
        "adaptive hot-objects run must pull objects across ranks: {hot_adaptive:?}"
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Child entry for the re-executed *test* binary: a no-op unless
    /// `PX_E12TCP_RANK` is set (then it serves its rank and exits there).
    #[test]
    fn e12tcp_child_entry() {
        maybe_child();
    }

    const CHILD: &[&str] = &[
        "e12_tcp::tests::e12tcp_child_entry",
        "--exact",
        "--nocapture",
    ];

    /// The distributed hot-objects leg is the acceptance claim: adaptive
    /// pulls the hot objects to their callers and beats off by ≥2x at
    /// 2 ranks (the chains are latency-bound, so the win is wire RTTs
    /// eliminated, not load split). Retries absorb shared-host jitter.
    #[test]
    fn adaptive_beats_off_2x_on_hot_objects_over_tcp() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tasks: 0,
            grain_ns: 0,
            objects: 4,
            hops: 200,
            hot_grain_ns: 20_000,
        };
        let mut last = String::new();
        for _ in 0..3 {
            let [off, adaptive] = pair(run_hot_objects, 2, &p, CHILD);
            if adaptive.speedup_vs_off >= 2.0 && adaptive.migrations_balancer > 0 {
                return;
            }
            last = format!(
                "off {:.1}ms vs adaptive {:.1}ms (ratio {:.2}, migrations {})",
                off.makespan_ms,
                adaptive.makespan_ms,
                adaptive.speedup_vs_off,
                adaptive.migrations_balancer
            );
        }
        panic!("{last}");
    }

    /// Work diffusion crosses the process boundary: the skewed-spawn leg
    /// sheds parcel-bound tasks to the starving rank and beats off.
    #[test]
    fn skewed_spawn_sheds_parcels_across_ranks() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tasks: 300,
            grain_ns: 150_000,
            objects: 0,
            hops: 0,
            hot_grain_ns: 0,
        };
        let mut last = String::new();
        for _ in 0..3 {
            let [off, adaptive] = pair(run_skewed_spawn, 2, &p, CHILD);
            if adaptive.speedup_vs_off >= 1.2 && adaptive.tasks_shed > 0 {
                return;
            }
            last = format!(
                "off {:.1}ms vs adaptive {:.1}ms (ratio {:.2}, shed {})",
                off.makespan_ms, adaptive.makespan_ms, adaptive.speedup_vs_off, adaptive.tasks_shed
            );
        }
        panic!("{last}");
    }
}
