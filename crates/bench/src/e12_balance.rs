//! E12: adaptive cross-locality load balancing (§2.1 starvation, §2.2
//! work-to-data vs data-to-work).
//!
//! Two imbalanced workloads, each run under four balancer settings
//! (off, `work-to-data`, `data-to-work`, `adaptive`):
//!
//! * **skewed-spawn** — the E11 starvation shape: `N` equal tasks whose
//!   homes are Zipf-skewed over the localities, so one locality drowns
//!   while the rest park. Only *work diffusion* (shedding + spawn
//!   redirect) can fix this: there is no data to migrate.
//! * **hot-objects** — the inverse shape: work is spread evenly but every
//!   task addresses an action at one of `K` data objects all born on
//!   locality 0 (a load-phase artifact), with caller affinity (locality
//!   `i` touches objects `k ≡ i mod L`). Work-to-data faithfully moves
//!   every action to locality 0 — the bottleneck. Only *heat-driven
//!   migration* can fix this: the balancer pulls each object toward its
//!   dominant caller and in-flight parcels chase it through AGAS
//!   forwarding.
//!
//! The `adaptive` policy must win (or tie the specialist) on **both** —
//! that is the tentpole claim, matching the comparative AMT studies in
//! PAPERS.md: runtime-directed balancing is what makes message-driven
//! models beat static placement on irregular workloads.
//!
//! Task grain is a *blocking* wait ([`px_workloads::synth::sleep_for_ns`]):
//! the latency-bound regime where placement dominates makespan. Sleeping
//! workers overlap on any host, so the comparison is meaningful even with
//! fewer physical cores than simulated localities (unlike the spin-grain
//! experiments, which gate on core count).
//!
//! `run()` prints the table and writes `BENCH_balance.json` at the
//! workspace root.

use crate::table::{f2, ms, print_table};
use px_core::prelude::*;
use px_workloads::synth::{sleep_for_ns, zipf_assign};
use std::time::{Duration, Instant};

/// Simulated localities (single-worker each, like E11).
pub const LOCALITIES: usize = 4;
/// Zipf skew of natural homes in the skewed-spawn workload (~85% of the
/// work lands on one locality at s = 3.0 with four bins).
pub const SKEW: f64 = 3.0;
/// Hot data objects in the hot-objects workload.
pub const HOT_OBJECTS: usize = 16;

/// Balancer settings compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Balancer disabled (the seed runtime's behavior).
    Off,
    /// Work diffusion only.
    WorkToData,
    /// Heat-driven migration only.
    DataToWork,
    /// Both, load-gated.
    Adaptive,
}

impl Setting {
    /// All settings, in table order.
    pub const ALL: [Setting; 4] = [
        Setting::Off,
        Setting::WorkToData,
        Setting::DataToWork,
        Setting::Adaptive,
    ];

    /// Table / JSON label.
    pub fn label(self) -> &'static str {
        match self {
            Setting::Off => "off",
            Setting::WorkToData => "work-to-data",
            Setting::DataToWork => "data-to-work",
            Setting::Adaptive => "adaptive",
        }
    }

    fn config(self, tasks: usize) -> Config {
        let base = Config::small(LOCALITIES, 1).with_latency(Duration::from_micros(50));
        let balance = match self {
            Setting::Off => return base,
            Setting::WorkToData => BalanceConfig::work_to_data(),
            Setting::DataToWork => BalanceConfig::data_to_work(),
            Setting::Adaptive => BalanceConfig::adaptive(),
        };
        let mut balance = balance;
        balance.gossip_interval = Duration::from_micros(500);
        // Scale the per-round shed cap with the workload so diffusion can
        // keep up with the injection burst.
        balance.max_shed_per_round = (tasks as u64 / 16).max(32);
        balance.heat_threshold = 8;
        balance.max_pulls_per_round = HOT_OBJECTS as u64;
        base.with_balance(balance)
    }
}

/// Experiment sizes (shrunk by `smoke`).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tasks per workload run.
    pub tasks: usize,
    /// Per-task blocking grain, ns.
    pub grain_ns: u64,
}

/// Full-size parameters (the JSON run).
pub const FULL: Params = Params {
    tasks: 1200,
    grain_ns: 250_000,
};

/// Smoke-test parameters (CI).
pub const SMOKE: Params = Params {
    tasks: 200,
    grain_ns: 100_000,
};

/// One measurement: a workload under one balancer setting.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Balancer setting.
    pub setting: Setting,
    /// Wall-clock makespan.
    pub makespan: Duration,
    /// Tasks shed by work diffusion.
    pub tasks_shed: u64,
    /// Balancer-initiated migrations.
    pub migrations_balancer: u64,
    /// Parcels forwarded by AGAS chases (stale routes after migration).
    pub parcels_forwarded: u64,
    /// Gossip parcels received.
    pub gossip_parcels: u64,
    /// Total parcels received (for the off-run determinism check).
    pub parcels_recv: u64,
}

fn collect_row(setting: Setting, makespan: Duration, stats: &StatsSnapshot) -> Row {
    let t = stats.total();
    Row {
        setting,
        makespan,
        tasks_shed: t.tasks_shed,
        migrations_balancer: stats.migrations_balancer,
        parcels_forwarded: t.parcels_forwarded,
        gossip_parcels: t.gossip_parcels,
        parcels_recv: t.parcels_recv,
    }
}

/// Skewed-spawn workload: Zipf homes, blocking grain, one shared
/// and-gate on locality 0. Tasks that the balancer moves elsewhere pay a
/// trigger parcel back to the gate — the balanced runs carry that cost
/// honestly and win anyway.
pub fn run_skewed_spawn(setting: Setting, p: Params) -> Row {
    let rt = RuntimeBuilder::new(crate::apply_trace(setting.config(p.tasks)))
        .build()
        .unwrap();
    let homes = zipf_assign(p.tasks, LOCALITIES, SKEW, 0xe12);
    let gate = rt.new_and_gate(LocalityId(0), p.tasks as u64);
    let fut: FutureRef<()> = FutureRef::from_gid(gate);
    let grain = p.grain_ns;
    let t0 = Instant::now();
    for &home in &homes {
        rt.spawn_at(LocalityId(home as u16), move |ctx| {
            sleep_for_ns(grain);
            ctx.trigger_value(gate, Value::unit());
        });
    }
    rt.wait_future(fut).unwrap();
    let makespan = t0.elapsed();
    let stats = rt.stats();
    crate::print_slowest_trace(&format!("e12/skewed-spawn/{}", setting.label()), &rt);
    rt.shutdown();
    collect_row(setting, makespan, &stats)
}

/// The hot-objects action: block for the grain at whichever locality
/// currently owns the target object.
struct Touch;
impl Action for Touch {
    const NAME: &'static str = "e12/touch";
    type Args = u64;
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _target: Gid, grain_ns: u64) {
        sleep_for_ns(grain_ns);
    }
}

/// Hot-objects workload: tasks spread evenly, all data born on locality
/// 0, caller affinity `object k ↔ locality k mod L`. Every touch rides a
/// parcel with a continuation contributing to one completion gate.
pub fn run_hot_objects(setting: Setting, p: Params) -> Row {
    let rt = RuntimeBuilder::new(crate::apply_trace(setting.config(p.tasks)))
        .register::<Touch>()
        .build()
        .unwrap();
    let objects: Vec<Gid> = (0..HOT_OBJECTS)
        .map(|_| rt.new_data_at(LocalityId(0), vec![0u8; 64]))
        .collect();
    let gate = rt.new_and_gate(LocalityId(0), p.tasks as u64);
    let fut: FutureRef<()> = FutureRef::from_gid(gate);
    // Which object each task touches: affinity class = its home locality,
    // Zipf-ranked within the class so some objects are hotter than
    // others.
    let ranks = zipf_assign(p.tasks, HOT_OBJECTS / LOCALITIES, 1.2, 0xb001);
    let grain = p.grain_ns;
    let t0 = Instant::now();
    for (i, &rank) in ranks.iter().enumerate() {
        let home = i % LOCALITIES;
        let obj = objects[rank as usize * LOCALITIES + home];
        rt.spawn_at(LocalityId(home as u16), move |ctx| {
            ctx.send::<Touch>(obj, grain, Continuation::set(gate))
                .unwrap();
        });
    }
    rt.wait_future(fut).unwrap();
    let makespan = t0.elapsed();
    let stats = rt.stats();
    crate::print_slowest_trace(&format!("e12/hot-objects/{}", setting.label()), &rt);
    rt.shutdown();
    collect_row(setting, makespan, &stats)
}

/// Run one workload under every setting.
pub fn sweep(workload: fn(Setting, Params) -> Row, p: Params) -> Vec<Row> {
    Setting::ALL.iter().map(|&s| workload(s, p)).collect()
}

fn speedup(rows: &[Row], r: &Row) -> f64 {
    let off = rows[0].makespan.as_secs_f64();
    off / r.makespan.as_secs_f64()
}

fn print_rows(title: &str, rows: &[Row]) {
    print_table(
        title,
        &[
            "policy",
            "makespan",
            "speedup",
            "shed",
            "migrations",
            "forwarded",
            "gossip",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.label().to_string(),
                    ms(r.makespan),
                    f2(speedup(rows, r)),
                    r.tasks_shed.to_string(),
                    r.migrations_balancer.to_string(),
                    r.parcels_forwarded.to_string(),
                    r.gossip_parcels.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// JSON shape of one measured row (field names are the committed-artifact
/// schema; emitted through the derived `Serialize`).
#[derive(serde::Serialize)]
struct RowJson {
    policy: String,
    makespan_ms: f64,
    speedup_vs_off: f64,
    tasks_shed: u64,
    migrations_balancer: u64,
    parcels_forwarded: u64,
    gossip_parcels: u64,
    parcels_recv: u64,
}

#[derive(serde::Serialize)]
struct WorkloadsJson {
    skewed_spawn: Vec<RowJson>,
    hot_objects: Vec<RowJson>,
}

#[derive(serde::Serialize)]
struct BalanceJson {
    bench: String,
    localities: u64,
    tasks: u64,
    grain_ns: u64,
    zipf_skew: f64,
    hot_objects: u64,
    workloads: WorkloadsJson,
}

fn json_rows(rows: &[Row]) -> Vec<RowJson> {
    rows.iter()
        .map(|r| RowJson {
            policy: r.setting.label().to_string(),
            makespan_ms: r.makespan.as_secs_f64() * 1e3,
            speedup_vs_off: speedup(rows, r),
            tasks_shed: r.tasks_shed,
            migrations_balancer: r.migrations_balancer,
            parcels_forwarded: r.parcels_forwarded,
            gossip_parcels: r.gossip_parcels,
            parcels_recv: r.parcels_recv,
        })
        .collect()
}

/// Write `BENCH_balance.json` at the workspace root through the derived
/// `Serialize` impls (see [`crate::json`]).
fn write_json(p: Params, skewed: &[Row], hot: &[Row]) {
    let doc = BalanceJson {
        bench: "e12_balance".into(),
        localities: LOCALITIES as u64,
        tasks: p.tasks as u64,
        grain_ns: p.grain_ns,
        zipf_skew: SKEW,
        hot_objects: HOT_OBJECTS as u64,
        workloads: WorkloadsJson {
            skewed_spawn: json_rows(skewed),
            hot_objects: json_rows(hot),
        },
    };
    let json = crate::json::to_json_pretty(&doc);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_balance.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn run_with(p: Params, write: bool) -> (Vec<Row>, Vec<Row>) {
    println!(
        "\n[E12] {} × {} µs blocking tasks over {LOCALITIES} single-worker localities",
        p.tasks,
        p.grain_ns / 1000
    );
    let skewed = sweep(run_skewed_spawn, p);
    print_rows(
        "E12a — skewed-spawn starvation: work diffusion vs static placement",
        &skewed,
    );
    let hot = sweep(run_hot_objects, p);
    print_rows(
        "E12b — hot objects born on one locality: heat-driven migration",
        &hot,
    );
    if write {
        write_json(p, &skewed, &hot);
    }
    (skewed, hot)
}

/// Full experiment: print both tables and write `BENCH_balance.json`.
pub fn run() -> (Vec<Row>, Vec<Row>) {
    run_with(FULL, true)
}

/// CI smoke: scaled-down run, no JSON (the committed JSON tracks the
/// full-size numbers).
pub fn smoke() -> (Vec<Row>, Vec<Row>) {
    run_with(SMOKE, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: with the adaptive policy, the E11-style
    /// imbalanced workload completes ≥ 1.3× faster than balancer-off on
    /// 4 simulated localities. Blocking grain means this holds regardless
    /// of physical core count; retries absorb shared-host jitter.
    #[test]
    fn adaptive_beats_off_on_skewed_spawn() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tasks: 400,
            grain_ns: 150_000,
        };
        let mut last = String::new();
        for _ in 0..3 {
            let off = run_skewed_spawn(Setting::Off, p);
            let adaptive = run_skewed_spawn(Setting::Adaptive, p);
            let ratio = off.makespan.as_secs_f64() / adaptive.makespan.as_secs_f64();
            if ratio >= 1.3 && adaptive.tasks_shed > 0 {
                return;
            }
            last = format!(
                "off {:?} vs adaptive {:?} (ratio {ratio:.2}, shed {})",
                off.makespan, adaptive.makespan, adaptive.tasks_shed
            );
        }
        panic!("{last}");
    }

    /// Hot-object workload: migration-capable policies must relocate the
    /// hot objects and beat balancer-off.
    #[test]
    fn adaptive_beats_off_on_hot_objects() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tasks: 400,
            grain_ns: 150_000,
        };
        let mut last = String::new();
        for _ in 0..3 {
            let off = run_hot_objects(Setting::Off, p);
            let adaptive = run_hot_objects(Setting::Adaptive, p);
            let ratio = off.makespan.as_secs_f64() / adaptive.makespan.as_secs_f64();
            if ratio >= 1.3 && adaptive.migrations_balancer > 0 {
                return;
            }
            last = format!(
                "off {:?} vs adaptive {:?} (ratio {ratio:.2}, migrations {})",
                off.makespan, adaptive.makespan, adaptive.migrations_balancer
            );
        }
        panic!("{last}");
    }

    /// Balancer-off runs are deterministic in parcel counts: the same
    /// workload twice yields identical `parcels_recv` (the bit-identical
    /// guarantee the `Config::balance: None` default promises).
    #[test]
    fn off_runs_have_identical_parcel_counts() {
        let p = Params {
            tasks: 120,
            grain_ns: 20_000,
        };
        let a = run_skewed_spawn(Setting::Off, p);
        let b = run_skewed_spawn(Setting::Off, p);
        assert_eq!(a.parcels_recv, b.parcels_recv);
        assert_eq!(a.tasks_shed, 0);
        assert_eq!(a.gossip_parcels, 0);
        assert_eq!(a.migrations_balancer, 0);
    }
}
