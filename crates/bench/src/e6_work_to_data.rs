//! E6: moving work to data (§2.2).
//!
//! The claim: ParalleX "moves the work to the data when this is
//! preferable to just moving the data to the work as is conventionally
//! done."
//!
//! Workload: a block of `B` bytes lives at L1; L0 needs a reduction over
//! it (checksum). Two plans, `M` sequential operations each:
//!
//! * **move data** — fetch the block (paying latency + `B`·bandwidth),
//!   reduce locally;
//! * **move work** — send a parcel carrying the operation (tens of
//!   bytes), reduce at the owner, return the 8-byte result.
//!
//! With bandwidth cost on the wire, the crossover sits where
//! `B / bandwidth` exceeds one extra hop of latency; the sweep shows it.

use crate::table::{f2, ms, print_table};
use px_core::prelude::*;
use std::time::{Duration, Instant};

/// Operations per measurement.
pub const OPS: usize = 30;
/// Wire latency.
pub const LATENCY: Duration = Duration::from_micros(15);
/// Wire bandwidth cost, ns per byte (2 ns/B ≈ 0.5 GB/s).
pub const NS_PER_BYTE: u64 = 2;

struct Checksum;
impl Action for Checksum {
    const NAME: &'static str = "e6/checksum";
    type Args = ();
    type Out = u64;
    fn execute(ctx: &mut Ctx<'_>, target: Gid, _args: ()) -> u64 {
        let data = ctx.read_local_data(target).expect("block is local here");
        data.iter().map(|&b| u64::from(b)).sum()
    }
}

fn build_rt() -> Runtime {
    RuntimeBuilder::new(
        Config::small(2, 1)
            .with_latency(LATENCY)
            .with_ns_per_byte(NS_PER_BYTE),
    )
    .register::<Checksum>()
    .build()
    .unwrap()
}

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Block size, bytes.
    pub bytes: usize,
    /// Move-data time for [`OPS`] operations.
    pub move_data: Duration,
    /// Move-work time for [`OPS`] operations.
    pub move_work: Duration,
    /// move_data / move_work (> 1 ⇒ moving work wins).
    pub ratio: f64,
}

/// Measure one block size.
pub fn measure(bytes: usize) -> Row {
    let rt = build_rt();
    let block = rt.new_data_at(LocalityId(1), vec![1u8; bytes]);
    let expect = bytes as u64;

    // Both plans driven identically by a PX-thread at L0.
    let run_plan = |move_work: bool| -> Duration {
        let done = rt.new_future::<u64>(LocalityId(0));
        let done_gid = done.gid();
        let t0 = Instant::now();
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn step(
                ctx: &mut Ctx<'_>,
                block: Gid,
                left: usize,
                move_work: bool,
                done: Gid,
                acc: u64,
            ) {
                if left == 0 {
                    ctx.trigger(done, &acc).unwrap();
                    return;
                }
                if move_work {
                    let fut = ctx.call::<Checksum>(block, ()).unwrap();
                    ctx.when_future(fut, move |ctx, sum: u64| {
                        step(ctx, block, left - 1, move_work, done, acc + sum);
                    });
                } else {
                    let fut = ctx.fetch_data(block);
                    ctx.when_future(fut, move |ctx, data: Vec<u8>| {
                        let sum: u64 = data.iter().map(|&b| u64::from(b)).sum();
                        step(ctx, block, left - 1, move_work, done, acc + sum);
                    });
                }
            }
            step(ctx, block, OPS, move_work, done_gid, 0);
        });
        let total = done.wait(&rt).unwrap();
        assert_eq!(total, expect * OPS as u64, "checksum mismatch");
        t0.elapsed()
    };

    let move_data = run_plan(false);
    let move_work = run_plan(true);
    let row = Row {
        bytes,
        move_data,
        move_work,
        ratio: move_data.as_secs_f64() / move_work.as_secs_f64(),
    };
    rt.shutdown();
    row
}

/// Sweep block sizes.
pub fn sweep(sizes: &[usize]) -> Vec<Row> {
    sizes.iter().map(|&b| measure(b)).collect()
}

/// Print the E6 table.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[1 << 10, 1 << 13, 1 << 16, 1 << 18]);
    println!(
        "\n[E6] {OPS} serial ops on a remote block; wire {} µs + {} ns/B; analytic crossover ≈ {} KiB",
        LATENCY.as_micros(),
        NS_PER_BYTE,
        LATENCY.as_nanos() as u64 / NS_PER_BYTE / 1024,
    );
    print_table(
        "E6 — move data vs move work (parcel) crossover",
        &["block B", "move-data ms", "move-work ms", "data/work"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.bytes.to_string(),
                    ms(r.move_data),
                    ms(r.move_work),
                    f2(r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_favors_work_for_large_blocks() {
        let _gate = crate::TIMING_GATE.lock();
        let small = measure(1 << 10); // 1 KiB: 2 µs transfer < 15 µs hop
        let large = measure(1 << 18); // 256 KiB: 524 µs transfer >> hop
        assert!(
            large.ratio > 1.5,
            "moving work must win for large blocks: ratio {}",
            large.ratio
        );
        assert!(
            small.ratio < large.ratio,
            "ratio must grow with size: {} vs {}",
            small.ratio,
            large.ratio
        );
    }
}
