//! E14: the distributed transport — spawn/await over real sockets.
//!
//! The paper's parcel model is a substrate for *distributed* ensembles
//! of localities; with the TCP backend that claim finally pays wire
//! rent. This experiment runs the same spawn/await workload (action
//! parcels spawn threads at the remote locality, continuation parcels
//! carry results back to local futures) over three transports:
//!
//! * `inproc-instant` — the seed wire, zero injected latency: the
//!   upper bound, every cost is a queue push;
//! * `inproc-50us` — the seed wire with 50 µs injected latency: the
//!   simulation the repo used for "remote" until this experiment;
//! * `tcp-2proc` — two real OS processes over loopback TCP with
//!   batched, checksummed frames (the bench re-executes itself as
//!   rank 1).
//!
//! Two figures per transport: **pipelined throughput** (all parcels in
//! flight at once — what latency *hiding* buys, §2.2) and **serial
//! round-trip time** (one in flight — what latency *costs*). The model
//! prediction: TCP loses badly on serial RTT (real wire + batching
//! hold), but pipelining recovers most of the throughput gap — which is
//! exactly the split-phase story the paper tells.
//!
//! The **mesh legs** scale the same workload to N-rank meshes (rank 0
//! spawns ranks 1..N as real OS processes and round-robins the
//! spawn/await traffic across all of them) and report each rank's OS
//! thread count alongside throughput. With the event-loop transport the
//! thread count is *flat* in mesh size — one `px-tcp-io` thread per
//! rank whether it peers with 1 or 63 others — which is what makes
//! 64-rank meshes on one box feasible at all (the per-peer
//! thread-pair design needed 2(N−1) transport threads per rank).
//!
//! `run()` prints the tables and writes `BENCH_dist.json` (per-peer
//! transport counters and mesh rows included) at the workspace root.

use crate::table::{f2, print_table};
use px_core::prelude::*;
use px_core::stats::TransportStats;
use serde::Serialize;
use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The environment variable that turns a `px-bench` invocation into
/// rank 1 of the E14 mesh.
pub const RANK_ENV: &str = "PX_E14_RANK";
const ADDRS_ENV: &str = "PX_E14_ADDRS";
/// Set on mesh children when the parent runs with `--trace`, so every
/// rank of the mesh records (a cross-rank trace is only as complete as
/// the rings of the ranks it crossed).
const TRACE_ENV: &str = "PX_E14_TRACE";
/// Set on mesh children when the parent runs with `--metrics`, so the
/// cluster pull has per-rank histograms to merge (a rank with metrics
/// off answers the pull with empty histograms).
const METRICS_ENV: &str = "PX_E14_METRICS";

/// Experiment sizes (shrunk by `smoke`).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Parcels in the pipelined throughput phase.
    pub msgs: u64,
    /// Round trips in the serial latency phase.
    pub serial: u64,
}

/// Full-size parameters (the JSON run).
pub const FULL: Params = Params {
    msgs: 20_000,
    serial: 1_000,
};

/// Smoke-test parameters (CI; loopback-only, fine on one core).
pub const SMOKE: Params = Params {
    msgs: 2_000,
    serial: 100,
};

struct Sq;
impl Action for Sq {
    const NAME: &'static str = "e14/square";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, n: u64) -> u64 {
        n * n
    }
}

/// Report the executing process's OS thread count — the mesh legs send
/// this to every peer so `BENCH_dist.json` can show per-rank threads.
struct Threads;
impl Action for Threads {
    const NAME: &'static str = "e14/threads";
    type Args = ();
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, (): ()) -> u64 {
        count_threads()
    }
}

/// OS threads in this process (Linux procfs; 0 elsewhere).
pub fn count_threads() -> u64 {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count() as u64)
        .unwrap_or(0)
}

/// One measurement row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Transport under test.
    pub transport: String,
    /// Pipelined spawn/await throughput, parcels per second.
    pub pipelined_per_s: f64,
    /// Mean serial round-trip, microseconds.
    pub serial_rtt_us: f64,
}

/// One N-rank mesh measurement.
#[derive(Debug, Clone, Serialize)]
pub struct MeshRow {
    /// Mesh size (OS processes, rank 0 included).
    pub ranks: u64,
    /// Pipelined spawn/await throughput across all peers, parcels/s.
    pub pipelined_per_s: f64,
    /// OS thread count of the rank-0 process.
    pub threads_rank0: u64,
    /// Largest OS thread count among ranks 1..N (via the `Threads`
    /// action — measured in-band over the mesh itself).
    pub threads_max_peer: u64,
}

/// The committed JSON artifact.
#[derive(Debug, Clone, Serialize)]
pub struct DistJson {
    /// Bench name (`"e14_distributed"`).
    pub bench: String,
    /// Parcels in the pipelined phase.
    pub msgs: u64,
    /// Round trips in the serial phase.
    pub serial: u64,
    /// All transports.
    pub rows: Vec<Row>,
    /// Throughput ratio: inproc-instant / tcp-2proc (the real cost of
    /// leaving the address space, after pipelining).
    pub tcp_pipelined_penalty: f64,
    /// Per-peer counters of the TCP run (rank 0's view).
    pub tcp_transport: TransportStats,
    /// Cluster-merged latency percentiles of the TCP run, one row per
    /// instrument (empty unless `--metrics`).
    pub metrics: Vec<crate::metrics_report::MetricsRow>,
    /// N-rank mesh scaling (thread counts flat by design).
    pub mesh: Vec<MeshRow>,
    /// E12-over-TCP: the balancer across OS processes, adaptive vs off
    /// at 2 and 4 ranks (see [`crate::e12_tcp`]).
    pub e12_tcp: Vec<crate::e12_tcp::Row>,
}

/// If this process was spawned as a mesh peer (any rank ≥ 1), serve and
/// exit — call first from `main`. Serves until the parent closes stdin.
pub fn maybe_child() {
    let Ok(rank) = std::env::var(RANK_ENV) else {
        return;
    };
    let rank: u16 = rank.parse().expect("numeric rank");
    let addrs: Vec<String> = std::env::var(ADDRS_ENV)
        .expect("mesh peers need the address list")
        .split(',')
        .map(String::from)
        .collect();
    if std::env::var(TRACE_ENV).is_ok() {
        // Relaxed: flag set during single-threaded child startup.
        crate::TRACE.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    if std::env::var(METRICS_ENV).is_ok() {
        // Relaxed: flag set during single-threaded child startup.
        crate::METRICS.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let cfg = crate::apply_metrics(crate::apply_trace(
        Config::small(addrs.len(), 1)
            .with_tcp(rank, addrs)
            .with_max_batch_parcels(16),
    ));
    let rt = RuntimeBuilder::new(cfg)
        .register::<Sq>()
        .register::<Threads>()
        .build()
        .expect("mesh peer bootstrap");
    let mut sink = String::new();
    let _ = std::io::stdin().read_to_string(&mut sink);
    rt.shutdown();
    std::process::exit(0);
}

/// Run the workload against an already-built runtime.
fn measure(rt: &Runtime, transport: &str, p: Params) -> Row {
    // Pipelined: everything in flight, then await.
    let t0 = Instant::now();
    let futs: Vec<(u64, FutureRef<u64>)> = (0..p.msgs)
        .map(|i| {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Sq>(
                Gid::locality_root(LocalityId(1)),
                i,
                Continuation::set(fut.gid()),
            )
            .unwrap();
            (i, fut)
        })
        .collect();
    for (i, fut) in futs {
        assert_eq!(fut.wait(rt).unwrap(), i * i);
    }
    let pipelined = t0.elapsed();

    // Serial: one in flight. Under `--trace` every round trip carries an
    // explicit trace id so the slowest one can be replayed afterwards.
    let mut slowest: Option<(Duration, u64)> = None;
    let t0 = Instant::now();
    for i in 0..p.serial {
        let fut = rt.new_future::<u64>(LocalityId(0));
        let trace = crate::trace_enabled().then(|| rt.new_trace_id()).flatten();
        let r0 = Instant::now();
        let (target, cont) = (
            Gid::locality_root(LocalityId(1)),
            Continuation::set(fut.gid()),
        );
        match trace {
            Some(t) => rt.send_action_traced::<Sq>(target, i, cont, t).unwrap(),
            None => rt.send_action::<Sq>(target, i, cont).unwrap(),
        }
        assert_eq!(fut.wait(rt).unwrap(), i * i);
        if let Some(t) = trace {
            let rtt = r0.elapsed();
            if slowest.is_none_or(|(d, _)| rtt > d) {
                slowest = Some((rtt, t));
            }
        }
    }
    let serial = t0.elapsed();
    if let Some((rtt, t)) = slowest {
        // Over TCP this timeline is rank 0's half of the causal chain
        // (the peer's slice lives in its own process); in-proc it is the
        // whole request.
        println!(
            "[trace] {transport}: slowest traced serial round trip {t:#018x} took {:.1} us:",
            rtt.as_secs_f64() * 1e6
        );
        print!("{}", rt.trace_dump_for(t).render());
    }

    Row {
        transport: transport.to_string(),
        pipelined_per_s: p.msgs as f64 / pipelined.as_secs_f64(),
        serial_rtt_us: serial.as_secs_f64() * 1e6 / p.serial as f64,
    }
}

fn inproc_rt(latency: Duration) -> Runtime {
    let mut cfg = Config::small(2, 1).with_max_batch_parcels(16);
    if !latency.is_zero() {
        cfg = cfg.with_latency(latency);
    }
    RuntimeBuilder::new(crate::apply_metrics(crate::apply_trace(cfg)))
        .register::<Sq>()
        .build()
        .unwrap()
}

/// Reserve `n` loopback listen addresses.
fn reserve_addrs(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        })
        .collect()
}

/// Re-execute this binary as mesh ranks 1..n (they serve until their
/// stdin closes). `child_args` lets a libtest caller route the
/// re-execution to its `maybe_child`-calling test (the `px-bench`
/// binary needs none).
fn spawn_peers(addrs: &[String], child_args: &[&str]) -> Vec<std::process::Child> {
    let exe = std::env::current_exe().expect("own path");
    (1..addrs.len())
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.args(child_args)
                .env(RANK_ENV, rank.to_string())
                .env(ADDRS_ENV, addrs.join(","))
                .stdin(Stdio::piped())
                .stdout(Stdio::null());
            if crate::trace_enabled() {
                cmd.env(TRACE_ENV, "1");
            }
            if crate::metrics_enabled() {
                cmd.env(METRICS_ENV, "1");
            }
            cmd.spawn().expect("spawn mesh peer")
        })
        .collect()
}

/// Close the peers' stdin (their exit signal) and reap them.
fn join_peers(peers: Vec<std::process::Child>) {
    let mut peers = peers;
    for child in &mut peers {
        drop(child.stdin.take());
    }
    for mut child in peers {
        let status = child.wait().expect("join mesh peer");
        assert!(status.success(), "mesh peer failed: {status:?}");
    }
}

/// Run the TCP leg: reserve ports, re-execute ourselves as rank 1,
/// measure, tear down. Returns the row, rank 0's transport stats, and
/// the cluster-merged percentile rows (empty unless `--metrics`).
fn tcp_leg(
    p: Params,
    child_args: &[&str],
) -> (Row, TransportStats, Vec<crate::metrics_report::MetricsRow>) {
    let addrs = reserve_addrs(2);
    let peers = spawn_peers(&addrs, child_args);
    let cfg = crate::apply_metrics(crate::apply_trace(
        Config::small(2, 1)
            .with_tcp(0, addrs)
            .with_max_batch_parcels(16),
    ));
    let rt = RuntimeBuilder::new(cfg)
        .register::<Sq>()
        .build()
        .expect("rank 0 bootstrap");
    let row = measure(&rt, "tcp-2proc", p);
    let stats = rt.stats();
    assert_eq!(
        stats.total().dead_parcels,
        0,
        "healthy distributed run must lose nothing"
    );
    // Pull while the peer is still serving: the merged histograms are
    // the observability story of this experiment, and the pull itself
    // exercises `__sys/metrics_pull` over a real socket.
    let metrics = if crate::metrics_enabled() {
        let cluster = rt
            .cluster_metrics()
            .expect("metrics pull over the control lane");
        let per_rank_total: u64 = cluster.per_rank.iter().map(|(_, s)| s.total_count()).sum();
        assert_eq!(
            cluster.merged.total_count(),
            per_rank_total,
            "merge must be lossless across ranks"
        );
        let rows = crate::metrics_report::metrics_rows(&cluster.merged);
        crate::metrics_report::print_metrics_table("tcp-2proc cluster-merged", &rows);
        crate::metrics_report::check_metrics_text(&rt.metrics_text())
            .expect("exposition page must stay machine-parseable");
        rows
    } else {
        Vec::new()
    };
    join_peers(peers);
    rt.shutdown();
    (row, stats.transport, metrics)
}

/// Run one N-rank mesh leg: rank 0 (this process) plus `ranks - 1`
/// spawned peers, spawn/await traffic round-robined across every peer,
/// thread counts collected in-band via the `Threads` action.
fn mesh_leg(ranks: usize, p: Params, child_args: &[&str]) -> MeshRow {
    let addrs = reserve_addrs(ranks);
    let peers = spawn_peers(&addrs, child_args);
    let cfg = crate::apply_metrics(crate::apply_trace(
        Config::small(ranks, 1)
            .with_tcp(0, addrs)
            .with_max_batch_parcels(16),
    ));
    let rt = RuntimeBuilder::new(cfg)
        .register::<Sq>()
        .register::<Threads>()
        .build()
        .expect("rank 0 bootstrap");

    // Pipelined: every parcel in flight at once, spread over all peers.
    let t0 = Instant::now();
    let futs: Vec<(u64, FutureRef<u64>)> = (0..p.msgs)
        .map(|i| {
            let dest = LocalityId((i % (ranks as u64 - 1) + 1) as u16);
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Sq>(Gid::locality_root(dest), i, Continuation::set(fut.gid()))
                .unwrap();
            (i, fut)
        })
        .collect();
    for (i, fut) in futs {
        assert_eq!(fut.wait(&rt).unwrap(), i * i);
    }
    let pipelined = t0.elapsed();

    // Per-rank thread counts, measured over the mesh itself.
    let threads_max_peer = (1..ranks as u16)
        .map(|r| {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Threads>(
                Gid::locality_root(LocalityId(r)),
                (),
                Continuation::set(fut.gid()),
            )
            .unwrap();
            fut.wait(&rt).unwrap()
        })
        .max()
        .expect("at least one peer");

    let stats = rt.stats();
    assert_eq!(
        stats.total().dead_parcels,
        0,
        "healthy mesh run must lose nothing"
    );
    let row = MeshRow {
        ranks: ranks as u64,
        pipelined_per_s: p.msgs as f64 / pipelined.as_secs_f64(),
        threads_rank0: count_threads(),
        threads_max_peer,
    };
    join_peers(peers);
    rt.shutdown();
    row
}

fn run_with(p: Params, write: bool) -> Vec<Row> {
    println!(
        "\n[E14] spawn/await over transports: {} pipelined + {} serial parcels",
        p.msgs, p.serial
    );
    let mut rows = Vec::new();
    for (name, latency) in [
        ("inproc-instant", Duration::ZERO),
        ("inproc-50us", Duration::from_micros(50)),
    ] {
        let rt = inproc_rt(latency);
        rows.push(measure(&rt, name, p));
        rt.shutdown();
    }
    let (tcp_row, tcp_stats, tcp_metrics) = tcp_leg(p, &[]);
    rows.push(tcp_row);
    print_table(
        "E14 — distributed transport: spawn/await throughput and latency",
        &["transport", "pipelined/s", "serial RTT µs"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.transport.clone(),
                    format!("{:.0}", r.pipelined_per_s),
                    f2(r.serial_rtt_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let penalty = rows[0].pipelined_per_s / rows[2].pipelined_per_s;
    println!("tcp pipelined penalty vs in-proc instant: {}x", f2(penalty));
    if write {
        let mesh = [8usize, 16]
            .iter()
            .map(|&ranks| mesh_leg(ranks, p, &[]))
            .collect::<Vec<_>>();
        print_mesh_table(&mesh);
        let e12_tcp = crate::e12_tcp::run();
        let doc = DistJson {
            bench: "e14_distributed".into(),
            msgs: p.msgs,
            serial: p.serial,
            rows: rows.clone(),
            tcp_pipelined_penalty: penalty,
            tcp_transport: tcp_stats,
            metrics: tcp_metrics,
            mesh,
            e12_tcp,
        };
        let json = crate::json::to_json_pretty(&doc);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist.json");
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    rows
}

fn print_mesh_table(mesh: &[MeshRow]) {
    print_table(
        "E14 — mesh scaling: threads stay flat as ranks grow",
        &["ranks", "pipelined/s", "threads rank0", "threads max peer"],
        &mesh
            .iter()
            .map(|m| {
                vec![
                    m.ranks.to_string(),
                    format!("{:.0}", m.pipelined_per_s),
                    m.threads_rank0.to_string(),
                    m.threads_max_peer.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Full experiment: print the tables and write `BENCH_dist.json`.
pub fn run() -> Vec<Row> {
    run_with(FULL, true)
}

/// CI smoke: scaled down, no JSON.
pub fn smoke() -> Vec<Row> {
    let rows = run_with(SMOKE, false);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(
            r.pipelined_per_s > 0.0 && r.serial_rtt_us > 0.0,
            "degenerate measurement: {r:?}"
        );
    }
    rows
}

/// CI smoke for the mesh legs: an 8-rank mesh end-to-end, with the
/// flat-thread-budget claim sanity-checked in-band.
pub fn mesh_smoke() -> MeshRow {
    let row = mesh_leg(8, SMOKE, &[]);
    print_mesh_table(std::slice::from_ref(&row));
    assert!(row.pipelined_per_s > 0.0, "degenerate mesh measurement");
    assert!(
        row.threads_rank0 > 0 && row.threads_max_peer > 0,
        "thread counts must be observable: {row:?}"
    );
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Child entry for the re-executed *test* binary: a no-op unless
    /// `PX_E14_RANK` is set (then it serves rank 1 and exits there).
    #[test]
    fn e14_child_entry() {
        maybe_child();
    }

    /// The TCP leg completes a healthy spawn/await workload end-to-end
    /// and reports per-peer traffic (the E14 smoke in miniature).
    #[test]
    fn tcp_leg_completes_and_counts() {
        let _gate = crate::TIMING_GATE.lock();
        let (row, stats, _) = tcp_leg(
            Params {
                msgs: 300,
                serial: 20,
            },
            &[
                "e14_distributed::tests::e14_child_entry",
                "--exact",
                "--nocapture",
            ],
        );
        assert!(row.pipelined_per_s > 0.0);
        let peer = stats.peers.iter().find(|p| p.peer == 1).unwrap();
        assert!(peer.msgs_sent > 0 && peer.msgs_recv > 0);
        assert!(peer.frames_sent > 0, "batched run should coalesce");
    }

    /// A 4-rank mesh completes a round-robined workload and reports
    /// observable per-rank thread counts (the mesh leg in miniature).
    #[test]
    fn mesh_leg_spreads_work_and_counts_threads() {
        let _gate = crate::TIMING_GATE.lock();
        let row = mesh_leg(
            4,
            Params {
                msgs: 300,
                serial: 0,
            },
            &[
                "e14_distributed::tests::e14_child_entry",
                "--exact",
                "--nocapture",
            ],
        );
        assert_eq!(row.ranks, 4);
        assert!(row.pipelined_per_s > 0.0);
        assert!(row.threads_rank0 > 0 && row.threads_max_peer > 0);
    }
}
