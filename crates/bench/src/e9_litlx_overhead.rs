//! E9: LITL-X construct overheads (§2.3).
//!
//! LITL-X exists "to prototype a set of promising concepts and to test
//! their impact on system performance and efficiency"; the first such
//! impact is the overhead each construct adds (§2.1: "Overhead … can
//! determine … the minimum granularity of program tasks that can be
//! effectively exploited"). This harness measures per-operation cost of
//! every construct on an instant wire, giving the granularity floor.

use crate::table::print_table;
use px_core::parcel::Continuation;
use px_core::prelude::*;
use px_litlx::atomic::AtomicRegion;
use px_litlx::dataflow::DataflowNode;
use px_litlx::percolate::Directive;
use px_litlx::slots::SyncSlot;
use std::time::{Duration, Instant};

struct Noop;
impl Action for Noop {
    const NAME: &'static str = "e9/noop";
    type Args = ();
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, _a: ()) {}
}

/// One measured construct.
#[derive(Debug, Clone)]
pub struct Row {
    /// Construct name.
    pub construct: &'static str,
    /// Operations measured.
    pub ops: u64,
    /// Cost per operation.
    pub per_op: Duration,
}

fn build_rt() -> Runtime {
    RuntimeBuilder::new(Config::small(2, 1).with_accelerator(LocalityId(1)))
        .register::<Noop>()
        .build()
        .unwrap()
}

fn measure(name: &'static str, ops: u64, f: impl FnOnce()) -> Row {
    let t0 = Instant::now();
    f();
    let elapsed = t0.elapsed();
    Row {
        construct: name,
        ops,
        per_op: elapsed / ops as u32,
    }
}

/// Cost of a local PX-thread spawn (the TNT coarse-thread floor).
pub fn bench_spawn(ops: u64) -> Row {
    let rt = build_rt();
    let gate = rt.new_and_gate(LocalityId(0), ops);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let row = measure("spawn (local thread)", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            for _ in 0..ops {
                ctx.spawn(move |ctx| {
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                });
            }
        });
        rt.wait_future(gate_fut).unwrap();
    });
    rt.shutdown();
    row
}

/// Future create → set → resume cycle (sequential dependency chain).
pub fn bench_future_cycle(ops: u64) -> Row {
    let rt = build_rt();
    let done = rt.new_future::<bool>(LocalityId(0));
    let done_gid = done.gid();
    let row = measure("future set+resume cycle", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn cycle(ctx: &mut Ctx<'_>, left: u64, done: Gid) {
                if left == 0 {
                    ctx.trigger(done, &true).unwrap();
                    return;
                }
                let fut = ctx.new_future::<u64>();
                ctx.when_future(fut, move |ctx, _v| cycle(ctx, left - 1, done));
                ctx.set_future(fut, &left).unwrap();
            }
            cycle(ctx, ops, done_gid);
        });
        done.wait(&rt).unwrap();
    });
    rt.shutdown();
    row
}

/// Sync-slot signal + drain cycle.
pub fn bench_sync_slot(ops: u64) -> Row {
    let rt = build_rt();
    let done = rt.new_future::<bool>(LocalityId(0));
    let done_gid = done.gid();
    let row = measure("sync slot signal+fire", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn cycle(ctx: &mut Ctx<'_>, left: u64, done: Gid) {
                if left == 0 {
                    ctx.trigger(done, &true).unwrap();
                    return;
                }
                let slot = SyncSlot::new(ctx, 1);
                slot.on_complete(ctx, move |ctx, _| cycle(ctx, left - 1, done));
                slot.signal(ctx);
            }
            cycle(ctx, ops, done_gid);
        });
        done.wait(&rt).unwrap();
    });
    rt.shutdown();
    row
}

/// Async invoke of a remote no-op action (parcel + continuation).
pub fn bench_async_invoke(ops: u64) -> Row {
    let rt = build_rt();
    let done = rt.new_future::<bool>(LocalityId(0));
    let done_gid = done.gid();
    let row = measure("async_invoke remote noop", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn cycle(ctx: &mut Ctx<'_>, left: u64, done: Gid) {
                if left == 0 {
                    ctx.trigger(done, &true).unwrap();
                    return;
                }
                let fut = ctx
                    .call::<Noop>(Gid::locality_root(LocalityId(1)), ())
                    .unwrap();
                ctx.when_future(fut, move |ctx, ()| cycle(ctx, left - 1, done));
            }
            cycle(ctx, ops, done_gid);
        });
        done.wait(&rt).unwrap();
    });
    rt.shutdown();
    row
}

/// Atomic region enter/exit cycle.
pub fn bench_atomic_region(ops: u64) -> Row {
    let rt = build_rt();
    let region = AtomicRegion::new(&rt, LocalityId(0));
    let done = rt.new_future::<bool>(LocalityId(0));
    let done_gid = done.gid();
    let row = measure("atomic region enter/exit", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn cycle(ctx: &mut Ctx<'_>, region: AtomicRegion, left: u64, done: Gid) {
                if left == 0 {
                    ctx.trigger(done, &true).unwrap();
                    return;
                }
                region.enter(ctx, move |ctx| {
                    ctx.spawn(move |ctx| cycle(ctx, region, left - 1, done));
                });
            }
            cycle(ctx, region, ops, done_gid);
        });
        done.wait(&rt).unwrap();
    });
    rt.shutdown();
    row
}

/// Two-input dataflow fire cycle.
pub fn bench_dataflow(ops: u64) -> Row {
    let rt = build_rt();
    let done = rt.new_future::<bool>(LocalityId(0));
    let done_gid = done.gid();
    let row = measure("dataflow 2-slot fire", ops, || {
        rt.spawn_at(LocalityId(0), move |ctx| {
            fn cycle(ctx: &mut Ctx<'_>, left: u64, done: Gid) {
                if left == 0 {
                    ctx.trigger(done, &true).unwrap();
                    return;
                }
                let node = DataflowNode::<u64, u64>::new(ctx, 2, |ins| ins[0] + ins[1]);
                node.on_fire(ctx, move |ctx, _| cycle(ctx, left - 1, done));
                node.put(ctx, 0, &1).unwrap();
                node.put(ctx, 1, &2).unwrap();
            }
            cycle(ctx, ops, done_gid);
        });
        done.wait(&rt).unwrap();
    });
    rt.shutdown();
    row
}

/// Percolation directive issue + staged execution.
pub fn bench_percolation(ops: u64) -> Row {
    let rt = build_rt();
    let gate = rt.new_and_gate(LocalityId(0), ops);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let row = measure("percolation directive", ops, || {
        for _ in 0..ops {
            Directive::<Noop>::block(LocalityId(1), ())
                .with_continuation(Continuation::set(gate))
                .issue_from_driver(&rt)
                .unwrap();
        }
        rt.wait_future(gate_fut).unwrap();
    });
    rt.shutdown();
    row
}

/// Run all construct measurements.
pub fn all(ops: u64) -> Vec<Row> {
    vec![
        bench_spawn(ops),
        bench_future_cycle(ops),
        bench_sync_slot(ops),
        bench_async_invoke(ops),
        bench_atomic_region(ops),
        bench_dataflow(ops),
        bench_percolation(ops),
    ]
}

/// Print the E9 table.
pub fn run() -> Vec<Row> {
    let rows = all(20_000);
    println!("\n[E9] instant wire, per-op cost of each LITL-X construct (granularity floor)");
    print_table(
        "E9 — LITL-X construct overheads",
        &["construct", "ops", "ns/op"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.construct.to_string(),
                    r.ops.to_string(),
                    r.per_op.as_nanos().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn overheads_are_micro_not_milli() {
        let _gate = crate::TIMING_GATE.lock();
        // Each construct should cost microseconds at worst on an instant
        // wire — the §2.1 granularity argument fails otherwise.
        for row in super::all(2_000) {
            assert!(
                row.per_op < std::time::Duration::from_micros(200),
                "{} costs {:?}/op",
                row.construct,
                row.per_op
            );
        }
    }
}
