//! E7: the two-modality heterogeneity argument (§3.2, Figure 1).
//!
//! Thin wrapper over [`px_gilgamesh::modality`]: sweep temporal locality
//! θ and report ops/cycle on the three execution structures. The shape
//! the paper's architecture bets on: the dataflow accelerator dominates
//! at high θ, MIND PIM dominates at low θ, and the conventional cached
//! core is never the right answer at either extreme.

use crate::table::{f2, f3, print_table};
use px_gilgamesh::modality::{modality_sweep, ModalityRow};

/// θ values swept.
pub const THETAS: [f64; 7] = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.98];

/// Run the sweep.
pub fn sweep() -> Vec<ModalityRow> {
    modality_sweep(&THETAS, 30_000, 16, 0xf1e2)
}

/// Print the E7 table; returns the rows.
pub fn run() -> Vec<ModalityRow> {
    let rows = sweep();
    println!("\n[E7] 30k accesses/stream, 16 ALU ops per access; models: cached core, MIND PIM, dataflow accelerator");
    print_table(
        "E7 — ops/cycle vs temporal locality θ (two-modality crossover)",
        &["theta", "LRU hit rate", "cached", "MIND", "accel", "winner"],
        &rows
            .iter()
            .map(|r| {
                let winner = if r.accel >= r.mind && r.accel >= r.cached {
                    "accel"
                } else if r.mind >= r.cached {
                    "MIND"
                } else {
                    "cached"
                };
                vec![
                    f2(r.theta),
                    f3(r.hit_rate),
                    f3(r.cached),
                    f3(r.mind),
                    f3(r.accel),
                    winner.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_exists() {
        let _gate = crate::TIMING_GATE.lock();
        let rows = super::sweep();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(first.mind > first.accel, "MIND wins cold");
        assert!(last.accel > last.mind, "accelerator wins hot");
    }
}
