//! E10: the Data Vortex interconnect choice (§3.2).
//!
//! The paper picks Coke Reed's Data Vortex for the system network. This
//! harness sweeps offered load on 16-port instances of the Data Vortex,
//! an ideal output-queued crossbar (lower bound), and a 4×4 torus
//! (conventional electrical alternative), under uniform and hotspot
//! traffic, reporting mean latency and sustained throughput.

use crate::table::{f2, print_table};
use px_datavortex::baselines::{crossbar, torus2d};
use px_datavortex::traffic;
use px_datavortex::vortex::{simulate, VortexConfig};
use px_datavortex::NetStats;

/// Ports in every network compared.
pub const PORTS: usize = 16;
/// Injection window, cycles.
pub const CYCLES: u64 = 3_000;
/// Simulation budget.
pub const MAX_CYCLES: u64 = 400_000;

/// One (load, network) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Offered load (packets/port/cycle).
    pub load: f64,
    /// Data Vortex stats.
    pub vortex: NetStats,
    /// Crossbar stats.
    pub crossbar: NetStats,
    /// Torus stats.
    pub torus: NetStats,
}

fn vcfg() -> VortexConfig {
    VortexConfig {
        levels: 4,
        angles: 5,
    }
}

/// Sweep offered load under uniform traffic.
pub fn sweep(loads: &[f64], seed: u64) -> Vec<Row> {
    loads
        .iter()
        .map(|&load| {
            let inj = traffic::uniform(PORTS, load, CYCLES, seed);
            Row {
                load,
                vortex: simulate(vcfg(), &inj, MAX_CYCLES),
                crossbar: crossbar(PORTS, &inj, 2, MAX_CYCLES),
                torus: torus2d(4, &inj, MAX_CYCLES),
            }
        })
        .collect()
}

/// Hotspot comparison at one load.
pub fn hotspot_row(load: f64, hot: f64, seed: u64) -> Row {
    let inj = traffic::hotspot(PORTS, load, hot, CYCLES, seed);
    Row {
        load,
        vortex: simulate(vcfg(), &inj, MAX_CYCLES),
        crossbar: crossbar(PORTS, &inj, 2, MAX_CYCLES),
        torus: torus2d(4, &inj, MAX_CYCLES),
    }
}

/// Print the E10 tables.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[0.05, 0.1, 0.2, 0.3, 0.45, 0.6], 0xda7a);
    println!("\n[E10] {PORTS}-port networks, {CYCLES}-cycle injection window; latency in cycles");
    print_table(
        "E10a — uniform traffic: mean latency (deflections/queueing per packet)",
        &[
            "load", "vortex", "defl/pkt", "crossbar", "torus", "q-ev/pkt",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    f2(r.load),
                    f2(r.vortex.mean_latency()),
                    f2(r.vortex.deflections as f64 / r.vortex.delivered.max(1) as f64),
                    f2(r.crossbar.mean_latency()),
                    f2(r.torus.mean_latency()),
                    f2(r.torus.deflections as f64 / r.torus.delivered.max(1) as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let hot = hotspot_row(0.3, 0.5, 0xda7a);
    print_table(
        "E10b — hotspot traffic (50% of packets to port 0, load 0.3)",
        &[
            "network",
            "mean latency",
            "delivered frac",
            "throughput pkt/cyc",
        ],
        &[
            vec![
                "vortex".into(),
                f2(hot.vortex.mean_latency()),
                f2(hot.vortex.delivery_rate()),
                f2(hot.vortex.throughput()),
            ],
            vec![
                "crossbar".into(),
                f2(hot.crossbar.mean_latency()),
                f2(hot.crossbar.delivery_rate()),
                f2(hot.crossbar.throughput()),
            ],
            vec![
                "torus".into(),
                f2(hot.torus.mean_latency()),
                f2(hot.torus.delivery_rate()),
                f2(hot.torus.throughput()),
            ],
        ],
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn vortex_latency_flat_then_rises() {
        let _gate = crate::TIMING_GATE.lock();
        let rows = super::sweep(&[0.05, 0.45], 3);
        let lo = &rows[0].vortex;
        let hi = &rows[1].vortex;
        assert_eq!(lo.delivered, lo.injected);
        assert!(hi.mean_latency() >= lo.mean_latency());
        // Deflection routing: latency grows but stays bounded at 0.45 load
        // on uniform traffic (the Vortex selling point).
        assert!(
            hi.mean_latency() < 40.0 * lo.mean_latency().max(1.0),
            "vortex saturated unexpectedly: {} vs {}",
            hi.mean_latency(),
            lo.mean_latency()
        );
    }

    #[test]
    fn crossbar_bounds_vortex() {
        let _gate = crate::TIMING_GATE.lock();
        // The ideal output-queued crossbar lower-bounds any real switch
        // fabric of the same port latency; the torus is excluded from the
        // claim because its average hop distance (~2 on 4×4) can undercut
        // a 2-cycle port at light load.
        let rows = super::sweep(&[0.2], 5);
        assert!(rows[0].crossbar.mean_latency() <= rows[0].vortex.mean_latency());
        // All three deliver everything at this load.
        assert_eq!(rows[0].vortex.delivered, rows[0].vortex.injected);
        assert_eq!(rows[0].torus.delivered, rows[0].torus.injected);
    }
}
