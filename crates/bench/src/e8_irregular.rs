//! E8: irregular, time-varying parallelism — Barnes–Hut trees (§2.1).
//!
//! The requirement: "direct support for lightweight processing of
//! irregular time-varying sparse data structure parallelism such as that
//! for trees (N-body codes)".
//!
//! Distributed Barnes–Hut, both ways:
//!
//! * **ParalleX** — bodies are partitioned over localities; each locality
//!   builds an octree over its subset. A force evaluation for body `b`
//!   sends *work-to-data* parcels carrying `b`'s position to every
//!   locality; partial forces flow back as contributions to a per-body
//!   reduction LCO. No barrier anywhere; per-body dataflow joins.
//! * **CSP** — the classic MPI shape: allgather all bodies, build the
//!   full tree redundantly on every rank, compute the owned slice,
//!   barrier each step.
//!
//! Forces are verified against the sequential direct sum, so both
//! implementations are demonstrably computing the same physics.

use crate::table::{ms, print_table};
use parking_lot::RwLock;
use px_baseline::csp::World;
use px_core::net::WireModel;
use px_core::prelude::*;
use px_workloads::barnes_hut::{direct_forces, make_cluster, Body, Octree};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bodies in the cluster.
pub const BODIES: usize = 384;
/// Barnes–Hut opening angle.
pub const THETA: f64 = 0.5;
/// Wire latency for the distributed runs.
pub const LATENCY: Duration = Duration::from_micros(20);

/// Per-locality octrees. Trees are locality-resident state: entry `i` is
/// written once by locality `i` and only read by actions executing there
/// (the shared `Arc` stands in for the locality object store; storing the
/// arena through `px-wire` every step would only add constant overhead).
pub struct TreeStore {
    trees: Vec<RwLock<Option<LocalTree>>>,
}

/// A locality's bodies plus the octree built over them.
type LocalTree = (Vec<Body>, Octree);

static ACTION_STORE: RwLock<Option<Arc<TreeStore>>> = RwLock::new(None);

struct ForceReq;
impl Action for ForceReq {
    const NAME: &'static str = "e8/force_req";
    type Args = [f64; 3];
    type Out = [f64; 3];
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, pos: [f64; 3]) -> [f64; 3] {
        let store = ACTION_STORE.read().clone().expect("store installed");
        let guard = store.trees[ctx.here().0 as usize].read();
        let (_, tree) = guard.as_ref().expect("tree built");
        tree.force_on(pos, THETA)
    }
}

/// One measurement row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Localities / ranks used.
    pub localities: usize,
    /// ParalleX time per force phase.
    pub px: Duration,
    /// CSP time per force phase.
    pub csp: Duration,
    /// Relative RMS force error vs the direct sum (ParalleX run).
    pub px_err: f64,
}

/// ParalleX distributed force phase. Returns (elapsed, forces).
pub fn run_parallex(locs: usize, bodies: &[Body]) -> (Duration, Vec<[f64; 3]>) {
    let rt = RuntimeBuilder::new(Config::small(locs, 1).with_latency(LATENCY))
        .register::<ForceReq>()
        .build()
        .unwrap();
    // Partition round-robin and build per-locality trees.
    let store = Arc::new(TreeStore {
        trees: (0..locs).map(|_| RwLock::new(None)).collect(),
    });
    *ACTION_STORE.write() = Some(store.clone());
    let mut parts: Vec<Vec<Body>> = vec![Vec::new(); locs];
    let mut owner_of: Vec<(usize, usize)> = Vec::with_capacity(bodies.len());
    for (i, b) in bodies.iter().enumerate() {
        let l = i % locs;
        owner_of.push((l, parts[l].len()));
        parts[l].push(*b);
    }
    for (l, part) in parts.iter().enumerate() {
        let tree = Octree::build(part);
        *store.trees[l].write() = Some((part.clone(), tree));
    }

    // Collect per-body total forces through reduction LCOs.
    let forces = Arc::new(RwLock::new(vec![[0.0f64; 3]; bodies.len()]));
    let gate = rt.new_and_gate(LocalityId(0), bodies.len() as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);

    let t0 = Instant::now();
    for (i, b) in bodies.iter().enumerate() {
        let (l, _) = owner_of[i];
        let pos = b.pos;
        let forces = forces.clone();
        let n_loc = locs;
        rt.spawn_at(LocalityId(l as u16), move |ctx| {
            // Reduction over one partial force from every locality.
            let fold: px_core::lco::ReduceFn = Box::new(|a, b| {
                let x: [f64; 3] = a.decode().unwrap();
                let y: [f64; 3] = b.decode().unwrap();
                px_core::action::Value::encode(&[x[0] + y[0], x[1] + y[1], x[2] + y[2]]).unwrap()
            });
            let red = ctx.new_reduce(n_loc as u64, &[0.0f64; 3], fold).unwrap();
            for j in 0..n_loc {
                ctx.send::<ForceReq>(
                    Gid::locality_root(LocalityId(j as u16)),
                    pos,
                    px_core::parcel::Continuation::contribute(red.gid()),
                )
                .unwrap();
            }
            let forces = forces.clone();
            ctx.when_future(red, move |ctx, total: [f64; 3]| {
                forces.write()[i] = total;
                ctx.trigger_value(gate, px_core::action::Value::unit());
            });
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let out = forces.read().clone();
    *ACTION_STORE.write() = None;
    rt.shutdown();
    (elapsed, out)
}

/// CSP force phase: allgather, redundant full tree, compute own slice.
pub fn run_csp(ranks: usize, bodies: &[Body]) -> Duration {
    let bodies = Arc::new(bodies.to_vec());
    let model = WireModel {
        latency: LATENCY,
        ns_per_byte: 0,
    };
    let times = World::run(ranks, model, move |mut rank| {
        let id = rank.id();
        let n = rank.world_size();
        let mine: Vec<Body> = bodies
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == id)
            .map(|(_, b)| *b)
            .collect();
        rank.barrier();
        let t0 = Instant::now();
        // Allgather bodies.
        for r in 0..n {
            if r != id {
                rank.send_t(r, 1, &mine).unwrap();
            }
        }
        let mut all: Vec<Body> = mine.clone();
        for _ in 0..n - 1 {
            let (_, theirs): (usize, Vec<Body>) = rank.recv_t(None, 1).unwrap();
            all.extend(theirs);
        }
        // Redundant full tree; compute owned forces.
        let tree = Octree::build(&all);
        let mut acc = Vec::with_capacity(mine.len());
        for b in &mine {
            acc.push(tree.force_on(b.pos, THETA));
        }
        rank.barrier();
        t0.elapsed()
    });
    times.into_iter().max().unwrap()
}

/// Relative RMS error against the direct O(N²) sum.
pub fn rms_error(bodies: &[Body], forces: &[[f64; 3]]) -> f64 {
    let direct = direct_forces(bodies);
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, d) in forces.iter().zip(direct.iter()) {
        for k in 0..3 {
            num += (f[k] - d[k]).powi(2);
            den += d[k].powi(2);
        }
    }
    (num / den).sqrt()
}

/// Sweep locality counts.
pub fn sweep(loc_counts: &[usize]) -> Vec<Row> {
    let bodies = make_cluster(BODIES, 2024);
    loc_counts
        .iter()
        .map(|&locs| {
            let (px, forces) = run_parallex(locs, &bodies);
            let csp = run_csp(locs, &bodies);
            Row {
                localities: locs,
                px,
                csp,
                px_err: rms_error(&bodies, &forces),
            }
        })
        .collect()
}

/// Print the E8 table.
pub fn run() -> Vec<Row> {
    let rows = sweep(&[1, 2, 4]);
    println!(
        "\n[E8] Barnes–Hut force phase, {BODIES} bodies, θ = {THETA}, {} µs wire",
        LATENCY.as_micros()
    );
    print_table(
        "E8 — irregular tree workload: ParalleX work-to-data vs CSP allgather",
        &["localities", "ParalleX ms", "CSP ms", "PX force RMS err"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.localities.to_string(),
                    ms(r.px),
                    ms(r.csp),
                    format!("{:.4}", r.px_err),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_forces_match_direct_sum() {
        let _gate = crate::TIMING_GATE.lock();
        let bodies = make_cluster(128, 7);
        let (_, forces) = run_parallex(2, &bodies);
        let err = rms_error(&bodies, &forces);
        assert!(err < 0.05, "distributed BH error too high: {err}");
    }

    #[test]
    fn csp_version_completes() {
        let _gate = crate::TIMING_GATE.lock();
        let bodies = make_cluster(64, 3);
        let t = run_csp(2, &bodies);
        assert!(t > Duration::ZERO);
    }
}
