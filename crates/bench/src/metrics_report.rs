//! `--metrics` reporting: percentile tables, BENCH JSON rows, and the
//! exposition-format checker the CI smoke leg runs.
//!
//! The row builder spells out every [`Instrument`] variant explicitly
//! (no `Instrument::ALL` loop) on purpose: the px-analyze `wire-stats`
//! rule cross-checks this function and px-core's `render_instruments`
//! against the `Instrument` enum, so adding an instrument without
//! carrying it into the bench artifacts fails `cargo run -p px-analyze`
//! instead of silently dropping the new histogram from `BENCH_*.json`.

use crate::table::print_table;
use px_core::prelude::{Instrument, MetricsSnapshot};
use serde::Serialize;

/// One instrument's percentile summary — a `BENCH_*.json` row.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsRow {
    /// Exposition name of the instrument (e.g. `px_queue_wait_ns`).
    pub instrument: String,
    /// Samples recorded.
    pub count: u64,
    /// Mean sample, nanoseconds (0.0 when empty — never NaN).
    pub mean_ns: f64,
    /// p50 bucket upper bound, nanoseconds.
    pub p50_ns: u64,
    /// p90 bucket upper bound, nanoseconds.
    pub p90_ns: u64,
    /// p99 bucket upper bound, nanoseconds.
    pub p99_ns: u64,
    /// p999 bucket upper bound, nanoseconds.
    pub p999_ns: u64,
}

fn row(snap: &MetricsSnapshot, inst: Instrument) -> MetricsRow {
    let h = snap.get(inst);
    MetricsRow {
        instrument: inst.name().to_string(),
        count: h.count,
        mean_ns: h.mean_ns(),
        p50_ns: h.quantile(0.50),
        p90_ns: h.quantile(0.90),
        p99_ns: h.quantile(0.99),
        p999_ns: h.quantile(0.999),
    }
}

/// One row per instrument, in registry order. Explicit variant list —
/// see the module docs for why this is not a loop over `Instrument::ALL`.
pub fn metrics_rows(snap: &MetricsSnapshot) -> Vec<MetricsRow> {
    vec![
        row(snap, Instrument::QueueWait),
        row(snap, Instrument::ExecuteUser),
        row(snap, Instrument::ExecuteSys),
        row(snap, Instrument::SpawnResolve),
        row(snap, Instrument::NetRtt),
        row(snap, Instrument::ControlLane),
        row(snap, Instrument::DirLookup),
    ]
}

/// Print the percentile table for one runtime's (or a merged cluster's)
/// snapshot.
pub fn print_metrics_table(label: &str, rows: &[MetricsRow]) {
    print_table(
        &format!("{label} — latency percentiles (ns, bucket upper bounds)"),
        &["instrument", "count", "mean", "p50", "p90", "p99", "p999"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.instrument.clone(),
                    r.count.to_string(),
                    format!("{:.0}", r.mean_ns),
                    r.p50_ns.to_string(),
                    r.p90_ns.to_string(),
                    r.p99_ns.to_string(),
                    r.p999_ns.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

/// Validate a `Runtime::metrics_text` page: every non-comment line must
/// parse as `name{labels} value` with a finite numeric value, and every
/// instrument must contribute at least one `_bucket` line. Returns the
/// first violation (CI pipes the smoke-leg page through this).
pub fn check_metrics_text(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("no value on line: {line:?}"))?;
        let open = name
            .find('{')
            .ok_or_else(|| format!("no label braces on line: {line:?}"))?;
        if !name.ends_with('}') || open == 0 {
            return Err(format!("malformed `name{{labels}}` on line: {line:?}"));
        }
        let v: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric value on line: {line:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite value on line: {line:?}"));
        }
    }
    for inst in Instrument::ALL {
        let bucket = format!("{}_bucket{{", inst.name());
        if !text.contains(&bucket) {
            return Err(format!("instrument {} has no bucket lines", inst.name()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_every_instrument_and_never_nan() {
        let empty = MetricsSnapshot::default();
        let rows = metrics_rows(&empty);
        assert_eq!(rows.len(), Instrument::ALL.len());
        for (r, inst) in rows.iter().zip(Instrument::ALL) {
            assert_eq!(r.instrument, inst.name());
            assert_eq!(r.count, 0);
            assert!(r.mean_ns.is_finite());
        }
    }

    #[test]
    fn format_checker_accepts_real_pages_and_rejects_drift() {
        // A real page from a live runtime passes.
        let rt = px_core::prelude::RuntimeBuilder::new(
            px_core::prelude::Config::small(1, 1).with_metrics(true),
        )
        .build()
        .unwrap();
        rt.run_blocking(px_core::prelude::LocalityId(0), |_| {});
        let text = rt.metrics_text();
        check_metrics_text(&text).unwrap();
        rt.shutdown();
        // Drift is rejected with a pointed message.
        assert!(check_metrics_text("px_thing 1\n").is_err(), "no braces");
        assert!(check_metrics_text("px_thing{}\n").is_err(), "no value");
        assert!(check_metrics_text("px_thing{} NaN\n").is_err(), "NaN");
        assert!(
            check_metrics_text("px_ok{} 1\n").is_err(),
            "missing instrument buckets"
        );
    }
}
